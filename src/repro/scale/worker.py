"""Worker process: immutable-index query serving over one socket.

Each worker owns nothing but an :class:`~repro.scale.snapshot.IndexHolder`
and a single ``AF_UNIX`` connection to the front.  The protocol is the
front's own line-delimited JSON, one request in flight at a time (the
front dispatches at most one request per worker connection), so no
request-id framing is needed: every request line is answered by
exactly one response line, in order.

Between requests -- and whenever the connection is idle past the poll
interval -- the worker polls the snapshot catalog and swaps to a newly
published generation.  The swap is the :class:`IndexHolder` build-then-
assign dance, so queries racing a swap are answered from the old index
or the new one, never a partial build.

With an observability directory (the plane's ``--obs-dir``) each
worker additionally runs its own telemetry spine (:class:`WorkerObs`):
per-request child spans (decode / LPM / enrich) under the front's
``trace_id`` into a bounded ``spans-`` segment ring, its local metric
registry exported on the scraper cadence into worker-tagged
time-series segments, and a crash flight recorder -- an mmap ring of
the last N request lines that survives ``SIGKILL``
(:mod:`repro.obs.flight`).  All of it is strictly additive: the
response bytes are built from the parsed request alone (the front's
``_trace`` envelope is popped first), so traced answers stay
byte-identical to untraced ones.

The worker exits when the front closes the connection (graceful drain)
or disappears (EOF): workers never outlive their plane.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Dict, Optional, Union

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.runtime.faults import fault_point, mark_worker_process
from repro.scale.snapshot import IndexHolder, SnapshotCatalog

#: How long a freshly spawned worker waits for the front to connect.
ACCEPT_TIMEOUT_S = 30.0


def _dumps(payload: Dict) -> bytes:
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode()


def worker_metrics(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """The worker-local metric set (merged by the front on ``stats``)."""
    registry = registry or MetricsRegistry()
    registry.counter(
        "scale_worker_requests_total",
        "requests answered by this worker",
        exist_ok=True,
    )
    registry.counter(
        "scale_worker_queries_total",
        "individual queries answered by this worker",
        exist_ok=True,
    )
    registry.counter(
        "scale_worker_swaps_total",
        "generation swaps performed by this worker",
        exist_ok=True,
    )
    registry.gauge(
        "scale_worker_generation",
        "snapshot generation this worker serves",
        exist_ok=True,
    )
    registry.histogram(
        "scale_worker_query_latency_seconds",
        "per-query index lookup latency",
        bounds=DEFAULT_LATENCY_BUCKETS,
        exist_ok=True,
    )
    return registry


class WorkerObs:
    """One worker's distributed-telemetry bundle (span log, metric
    export, flight recorder) rooted under the plane's obs directory.

    Layout: spans and metric segments share ``<obs>/worker-<slot>/``
    (distinct ring prefixes); the flight ring is the sibling file
    ``<obs>/worker-<slot>.fr`` so the front can harvest it after the
    worker process is gone.
    """

    def __init__(
        self,
        obs_dir: Union[str, Path],
        slot: int,
        trace_id: str,
        registry: MetricsRegistry,
        scrape_interval_s: float = 0.5,
        flight_records: int = 128,
    ) -> None:
        from repro.obs.flight import FlightRecorder
        from repro.obs.resources import ResourceSampler
        from repro.obs.timeseries import MetricScraper, TimeSeriesStore
        from repro.obs.trace import SpanLog

        root = Path(obs_dir)
        name = f"worker-{slot}"
        self.slot = slot
        self.trace_id = trace_id
        self.spans = SpanLog(root / name, source=name)
        self.flight = FlightRecorder(
            root / f"{name}.fr", slots=flight_records
        )
        self.scraper = MetricScraper(
            TimeSeriesStore(root / name),
            registry=registry,
            interval_s=scrape_interval_s,
            source=name,
        )
        # Worker-side resource telemetry: every exported sample carries
        # this process's RSS/CPU/GC/fd readings, so the front's
        # federation enricher surfaces them as
        # ``process_rss_bytes{worker="<slot>"}`` and the rss-growth
        # rule can page on the one leaking worker.
        self.resources = ResourceSampler(registry=registry)
        self.resources.attach(self.scraper)

    def start(self) -> None:
        self.scraper.start()

    def stop(self) -> None:
        try:
            self.scraper.stop(final_scrape=True)
        except Exception:  # noqa: BLE001 -- teardown best effort
            pass
        try:
            self.resources.uninstall()
        except Exception:  # noqa: BLE001 -- teardown best effort
            pass
        self.flight.close()


class QueryWorker:
    """The request handler behind :func:`worker_main` (testable inline)."""

    def __init__(
        self,
        catalog: SnapshotCatalog,
        threshold: float,
        min_api_hits: int,
        refresh_every: int = 512,
        slot: int = 0,
        obs: Optional[WorkerObs] = None,
        slow_query_s: float = 0.0,
    ) -> None:
        self.holder = IndexHolder(
            catalog, threshold=threshold, min_api_hits=min_api_hits
        )
        self.refresh_every = max(1, refresh_every)
        self.metrics = worker_metrics()
        self.requests = 0
        self.slot = slot
        self.obs = obs
        #: Drill knob: sleep this long inside every timed lookup, so a
        #: deliberately sick replica shows up in its own latency
        #: histogram (the ``worker-latency-skew`` rule's food).
        self.slow_query_s = slow_query_s

    def maybe_refresh(self, force: bool = False) -> bool:
        if not force and self.requests % self.refresh_every:
            return False
        swapped = self.holder.poll()
        if swapped:
            self.metrics.get("scale_worker_swaps_total").inc()
            self.metrics.get("scale_worker_generation").set(
                float(self.holder.generation)
            )
        return swapped

    def handle_request(
        self, request: Dict, timings: Optional[Dict] = None
    ) -> Dict:
        """Answer one decoded request; never raises."""
        try:
            fault_point("scale.worker", index=self.requests)
            self.requests += 1
            self.metrics.get("scale_worker_requests_total").inc()
            self.maybe_refresh()
            op = request.get("op")
            if op == "query":
                return self._handle_query(request, timings)
            if op == "stats":
                return self.stats()
            if op == "ping":
                return {"ok": True, "pong": True, "pid": os.getpid()}
            if op == "refresh":
                self.maybe_refresh(force=True)
                return {"ok": True, "generation": self.holder.generation}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:  # noqa: BLE001 -- the loop must survive
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _handle_query(
        self, request: Dict, timings: Optional[Dict] = None
    ) -> Dict:
        queries = request.get("qs")
        single = request.get("q")
        if queries is None and single is None:
            return {"ok": False, "error": "query op needs 'q' or 'qs'"}
        if queries is not None and not isinstance(queries, list):
            return {"ok": False, "error": "'qs' must be a list"}
        active = self.holder.current()
        if active is None:
            self.maybe_refresh(force=True)
            active = self.holder.current()
        if active is None:
            return {
                "ok": False,
                "error": "no snapshot generation published yet",
            }
        _info, _table, index = active
        latency = self.metrics.get("scale_worker_query_latency_seconds")
        counter = self.metrics.get("scale_worker_queries_total")
        slow = self.slow_query_s

        def answer(text) -> Dict:
            started = time.perf_counter()
            if slow:
                time.sleep(slow)
            result = index.query(str(text))
            latency.observe(time.perf_counter() - started)
            counter.inc()
            return result.to_dict()

        if timings is not None:
            # Tracing must cost nothing per query: the LPM total for
            # this line is the latency histogram's sum delta (the
            # untraced path already feeds it), and the remainder of the
            # batch wall time is enrichment.  Same closure either way,
            # so tracing-on answers cannot drift.
            lpm_before = latency.total
            queries_before = counter.value
            batch_started = time.perf_counter()

        if queries is not None:
            response = {
                "ok": True, "results": [answer(item) for item in queries]
            }
        else:
            response = {"ok": True, "result": answer(single)}

        if timings is not None:
            batch_elapsed = time.perf_counter() - batch_started
            lpm = latency.total - lpm_before
            timings["lpm"] = lpm
            timings["enrich"] = max(0.0, batch_elapsed - lpm)
            timings["queries"] = int(counter.value - queries_before)
        return response

    def stats(self) -> Dict:
        active = self.holder.current()
        return {
            "ok": True,
            "worker": {
                "pid": os.getpid(),
                "generation": self.holder.generation,
                "index_entries": len(active[2]) if active is not None else 0,
                "requests": self.requests,
                "queries": self.metrics.get(
                    "scale_worker_queries_total"
                ).value,
            },
            "metrics": self.metrics.as_dict(),
        }

    def handle_line(self, line: bytes) -> bytes:
        decode_started = time.perf_counter()
        try:
            request = json.loads(line)
        except ValueError as exc:
            return _dumps({"ok": False, "error": f"bad JSON: {exc}"})
        if not isinstance(request, dict):
            return _dumps({"ok": False, "error": "request must be a JSON object"})
        # The front's trace envelope never reaches handle_request: the
        # response is built from the remaining fields alone, keeping
        # traced answers byte-identical to untraced ones.
        trace = request.pop("_trace", None)
        obs = self.obs
        if obs is None:
            return _dumps(self.handle_request(request))
        decoded = time.perf_counter()
        generation = self.holder.generation
        rid = trace.get("rid", "") if isinstance(trace, dict) else ""
        token = obs.flight.begin(line, rid, generation)
        timings = {"lpm": 0.0, "enrich": 0.0, "queries": 0}
        response = self.handle_request(request, timings=timings)
        ok = bool(response.get("ok"))
        obs.flight.end(token, ok=ok)
        self._record_spans(
            trace, request, decode_started, decoded, timings, ok
        )
        return _dumps(response)

    def _record_spans(
        self,
        trace: Optional[Dict],
        request: Dict,
        decode_started: float,
        decoded: float,
        timings: Dict,
        ok: bool,
    ) -> None:
        """Persist this request's span tree (never raises into serving)."""
        obs = self.obs
        trace = trace if isinstance(trace, dict) else {}
        trace_id = trace.get("tid") or obs.trace_id
        rid = trace.get("rid")
        try:
            ended = time.perf_counter()
            # Build the whole tree, then persist it in ONE segment
            # write: per-span file opens were the dominant tracing cost
            # on the serving hot path.
            parent = obs.spans.build(
                "worker.request",
                trace_id,
                started=decode_started,
                duration=ended - decode_started,
                parent_id=trace.get("psid"),
                request_id=rid,
                slot=self.slot,
                generation=self.holder.generation,
                op=request.get("op"),
                ok=ok,
            )
            tree = [
                parent,
                obs.spans.build(
                    "worker.decode",
                    trace_id,
                    started=decode_started,
                    duration=decoded - decode_started,
                    parent_id=parent["sid"],
                    request_id=rid,
                ),
            ]
            if timings["queries"]:
                # Aggregate children: total LPM lookup time, then total
                # result enrichment, across the line's queries.
                tree.append(
                    obs.spans.build(
                        "worker.lpm",
                        trace_id,
                        started=decoded,
                        duration=timings["lpm"],
                        parent_id=parent["sid"],
                        request_id=rid,
                        queries=timings["queries"],
                    )
                )
                tree.append(
                    obs.spans.build(
                        "worker.enrich",
                        trace_id,
                        started=decoded + timings["lpm"],
                        duration=timings["enrich"],
                        parent_id=parent["sid"],
                        request_id=rid,
                        queries=timings["queries"],
                    )
                )
            obs.spans.write(tree)
        except Exception:  # noqa: BLE001 -- telemetry must not fail requests
            pass


def worker_main(
    socket_path: str,
    catalog_dir: str,
    threshold: float,
    min_api_hits: int,
    poll_interval_s: float = 0.05,
    refresh_every: int = 512,
    startup_timeout_s: float = 60.0,
    slot: int = 0,
    obs_dir: Optional[str] = None,
    trace_id: Optional[str] = None,
    obs_scrape_interval_s: float = 0.5,
    flight_records: int = 128,
    slow_query_s: float = 0.0,
) -> None:
    """Process entry point: serve one front connection until EOF."""
    mark_worker_process()
    catalog = SnapshotCatalog(catalog_dir)
    worker = QueryWorker(
        catalog,
        threshold=threshold,
        min_api_hits=min_api_hits,
        refresh_every=refresh_every,
        slot=slot,
        slow_query_s=slow_query_s,
    )
    obs: Optional[WorkerObs] = None
    if obs_dir is not None:
        obs = WorkerObs(
            obs_dir,
            slot=slot,
            trace_id=trace_id or "",
            registry=worker.metrics,
            scrape_interval_s=obs_scrape_interval_s,
            flight_records=flight_records,
        )
        worker.obs = obs
        obs.start()
    # Map the first generation before accepting traffic so the very
    # first query is already answered from a complete index.
    try:
        catalog.wait_for_generation(timeout_s=startup_timeout_s)
        worker.maybe_refresh(force=True)
    except TimeoutError:
        pass  # serve "no generation" errors rather than dying silently

    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        listener.bind(socket_path)
        listener.listen(1)
        listener.settimeout(ACCEPT_TIMEOUT_S)
        try:
            connection, _addr = listener.accept()
        except socket.timeout:
            return  # front never came; exit quietly
        with connection:
            connection.settimeout(poll_interval_s)
            buffer = b""
            while True:
                newline = buffer.find(b"\n")
                if newline >= 0:
                    line, buffer = buffer[:newline], buffer[newline + 1:]
                    if line.strip():
                        connection.sendall(worker.handle_line(line))
                    continue
                try:
                    chunk = connection.recv(65536)
                except socket.timeout:
                    worker.maybe_refresh(force=True)
                    continue
                if not chunk:
                    return  # front closed: drain complete
                buffer += chunk
    finally:
        if obs is not None:
            obs.stop()
        listener.close()
        try:
            os.unlink(socket_path)
        except OSError:
            pass
