"""The online serving layer: queryable classification as a service.

The paper's census answers point questions -- *is this address
cellular?* -- and this package turns the streaming engine
(:mod:`repro.stream`) into a long-running answerer:

- :mod:`repro.serve.index` -- the LPM query engine: per-family radix
  tries over compiled classification state (ratio, threshold label,
  confidence tier, AS verdict, demand share);
- :mod:`repro.serve.service` -- the serving front end: line-delimited
  JSON request/response over stdin/stdout or an AF_UNIX socket, with
  periodic atomic snapshots for crash-resume;
- :mod:`repro.serve.metrics` -- counters, gauges, and fixed-bucket
  latency histograms exported as JSON (the ``stats`` op and the
  SIGUSR1 dump).

``cellspot serve`` and ``cellspot query`` (:mod:`repro.cli`) are thin
wrappers over :class:`~repro.serve.service.CellSpotService`.
"""

from repro.serve.index import ClassificationIndex, IndexEntry, QueryResult
from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    service_metrics,
)
from repro.serve.service import (
    CellSpotService,
    ServiceConfig,
    install_sigusr1_stats,
)

__all__ = [
    "CellSpotService",
    "ClassificationIndex",
    "Counter",
    "Gauge",
    "Histogram",
    "IndexEntry",
    "MetricsRegistry",
    "QueryResult",
    "ServiceConfig",
    "install_sigusr1_stats",
    "service_metrics",
]
