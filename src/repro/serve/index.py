"""The queryable classification index (longest-prefix match).

Consumers of the census (CDN mapping, per-AS policy engines) ask point
questions -- *"is this client address cellular, with what
confidence?"* -- not for a monthly table.  :class:`ClassificationIndex`
compiles a :class:`~repro.core.ratios.RatioTable` (live from the
stream engine or from a batch run) into per-family
:class:`~repro.net.trie.PrefixTrie` radix tries, giving O(prefix-bits)
lookups that return everything the paper knows about the covering
subnet:

- the cellular ratio and its supporting counts,
- the label at the operating threshold (paper: 0.5),
- the Wilson-interval confidence tier
  (:mod:`repro.core.confidence`: cellular / fixed / uncertain),
- the owning AS with its dedicated/mixed verdict when demand data is
  available (:mod:`repro.core.mixed`),
- the subnet's demand share in DU and as a fraction of global demand.

Address queries use longest-prefix match; CIDR queries use
most-specific *covering* prefix (``match_prefix``), so a /16 query is
answered by the /8 entry that actually contains it, never by a /24
fragment inside it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

from repro.core.asn_classifier import ASFilterConfig, identify_cellular_ases
from repro.core.classifier import DEFAULT_THRESHOLD, SubnetClassifier
from repro.core.confidence import ConfidentClassifier, Verdict
from repro.core.mixed import DEDICATED_CFD_CUTOFF, operator_profiles
from repro.core.ratios import RatioTable
from repro.datasets.demand_dataset import DemandDataset, du_to_fraction
from repro.net.addr import AddressError, parse_ip
from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie


@dataclass(frozen=True)
class IndexEntry:
    """Everything the index knows about one subnet."""

    subnet: Prefix
    asn: int
    country: str
    hits: float
    api_hits: float
    cellular_hits: float
    ratio: float
    cellular: bool
    confidence: Verdict
    interval_low: float
    interval_high: float
    demand_du: Optional[float]
    as_verdict: Optional[str]


@dataclass(frozen=True)
class QueryResult:
    """One answered (or unanswerable) query."""

    query: str
    matched: bool
    error: Optional[str] = None
    entry: Optional[IndexEntry] = None

    def to_dict(self) -> Dict:
        payload: Dict[str, object] = {"query": self.query, "ok": self.error is None}
        if self.error is not None:
            payload["error"] = self.error
            return payload
        payload["matched"] = self.matched
        if not self.matched or self.entry is None:
            return payload
        entry = self.entry
        payload.update(
            {
                "subnet": str(entry.subnet),
                "asn": entry.asn,
                "country": entry.country,
                "ratio": round(entry.ratio, 6),
                "cellular": entry.cellular,
                "confidence": entry.confidence.value,
                "interval": [
                    round(entry.interval_low, 6),
                    round(entry.interval_high, 6),
                ],
                "hits": entry.hits,
                "api_hits": entry.api_hits,
            }
        )
        if entry.demand_du is not None:
            payload["demand_du"] = round(entry.demand_du, 6)
            payload["demand_share"] = round(
                du_to_fraction(entry.demand_du), 9
            )
        if entry.as_verdict is not None:
            payload["as_verdict"] = entry.as_verdict
        return payload


class ClassificationIndex:
    """Per-family LPM tries over compiled classification state."""

    def __init__(
        self,
        tries: Dict[int, PrefixTrie],
        threshold: float,
        entry_count: int,
    ) -> None:
        self._tries = tries
        self.threshold = threshold
        self.entry_count = entry_count

    def __len__(self) -> int:
        return self.entry_count

    # ---- construction ----------------------------------------------------

    @classmethod
    def build(
        cls,
        ratios: RatioTable,
        demand: Optional[DemandDataset] = None,
        threshold: float = DEFAULT_THRESHOLD,
        min_api_hits: int = 1,
        as_classes=None,
        filter_config: Optional[ASFilterConfig] = None,
        hits_by_asn: Optional[Mapping[int, float]] = None,
        dedicated_cutoff: float = DEDICATED_CFD_CUTOFF,
    ) -> "ClassificationIndex":
        """Compile a ratio table (plus optional demand) into tries.

        With ``demand`` (and ``hits_by_asn`` -- live AS hit totals
        from the stream engine), the paper's AS pipeline runs too and
        every entry carries its AS's dedicated/mixed verdict; without
        it, entries carry subnet-level facts only.
        """
        classifier = SubnetClassifier(
            threshold=threshold, min_api_hits=min_api_hits
        )
        confident = ConfidentClassifier(threshold=threshold)

        as_verdicts: Dict[int, str] = {}
        if demand is not None and hits_by_asn is not None:
            classification = classifier.classify(ratios)
            as_result = identify_cellular_ases(
                classification,
                demand,
                as_classes=as_classes,
                config=filter_config,
                hits_by_asn=hits_by_asn,
            )
            for asn, profile in operator_profiles(
                as_result, cutoff=dedicated_cutoff
            ).items():
                as_verdicts[asn] = profile.operator_class.value
            for asn, reason in as_result.excluded.items():
                as_verdicts[asn] = f"excluded:{reason.value}"

        tries: Dict[int, PrefixTrie] = {4: PrefixTrie(4), 6: PrefixTrie(6)}
        count = 0
        for record in ratios:
            label = confident.label(record)
            entry = IndexEntry(
                subnet=record.subnet,
                asn=record.asn,
                country=record.country,
                hits=record.hits,
                api_hits=record.api_hits,
                cellular_hits=record.cellular_hits,
                ratio=record.ratio,
                cellular=classifier.is_cellular(record),
                confidence=label.verdict,
                interval_low=label.interval_low,
                interval_high=label.interval_high,
                demand_du=(
                    demand.du_of(record.subnet) if demand is not None else None
                ),
                as_verdict=as_verdicts.get(record.asn),
            )
            tries[record.subnet.family].insert(record.subnet, entry)
            count += 1
        return cls(tries=tries, threshold=threshold, entry_count=count)

    # ---- queries ---------------------------------------------------------

    def lookup_address(self, family: int, address: int) -> Optional[IndexEntry]:
        """Longest-prefix match of one integer address."""
        trie = self._tries.get(family)
        if trie is None:
            return None
        found = trie.longest_match(family, address)
        return found[1] if found is not None else None

    def lookup_prefix(self, prefix: Prefix) -> Optional[IndexEntry]:
        """Most-specific stored prefix covering all of ``prefix``."""
        trie = self._tries.get(prefix.family)
        if trie is None:
            return None
        found = trie.match_prefix(prefix)
        return found[1] if found is not None else None

    def query(self, text: str) -> QueryResult:
        """Answer one textual query: an IP address or a CIDR block."""
        text = text.strip()
        if not text:
            return QueryResult(query=text, matched=False, error="empty query")
        try:
            if "/" in text:
                entry = self.lookup_prefix(Prefix.parse(text))
            else:
                family, address = parse_ip(text)
                entry = self.lookup_address(family, address)
        except (AddressError, ValueError) as exc:
            return QueryResult(query=text, matched=False, error=str(exc))
        return QueryResult(query=text, matched=entry is not None, entry=entry)

    def batch(self, queries: Iterable[str]) -> List[QueryResult]:
        """Answer many queries in order (the batch-query API)."""
        return [self.query(text) for text in queries]
