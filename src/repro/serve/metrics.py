"""Serving-layer metrics (deprecation shim + the serving metric set).

.. deprecated::
    The metric primitives (:class:`Counter`, :class:`Gauge`,
    :class:`Histogram`, :class:`MetricsRegistry`,
    ``DEFAULT_LATENCY_BUCKETS``) moved to :mod:`repro.obs.metrics` --
    the unified observability layer shared by the batch, parallel,
    stream, and serve paths -- and are re-exported here unchanged so
    existing imports keep working.  New code should import from
    :mod:`repro.obs.metrics` directly.

What legitimately still lives here is :func:`service_metrics`: the
serving layer's standard metric set.  It can now register onto a
caller-supplied registry (idempotently), which is how ``cellspot
serve``/``query`` put the serve counters on the same process-global
registry every other layer records into -- one ``--metrics-out`` dump
covers the whole process.
"""

from __future__ import annotations

import time
import warnings
from typing import Optional

from repro.obs.metrics import (  # noqa: F401 -- compatibility re-exports
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

# One warning per process, at first import (module execution runs once;
# later imports hit sys.modules).  stacklevel=2 points at the importer,
# not this shim.  The filter key is pinned by tests/test_serve_metrics.
warnings.warn(
    "repro.serve.metrics is a compatibility shim: the metric primitives "
    "(Counter, Gauge, Histogram, MetricsRegistry, "
    "DEFAULT_LATENCY_BUCKETS) live in repro.obs.metrics; import them "
    "from there.  service_metrics() remains canonical here.",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "service_metrics",
]


def service_metrics(
    clock=time.monotonic, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """The serving layer's standard metric set, pre-registered.

    With no ``registry`` a fresh one is created (test isolation, ad
    hoc services).  Passing one -- typically
    :func:`repro.obs.metrics.global_registry` -- registers the serving
    set onto it idempotently (``exist_ok``), so serve metrics land in
    the same export as the batch/stream instrumentation; ``clock`` is
    ignored in that case (the shared registry keeps its own).
    """
    if registry is None:
        registry = MetricsRegistry(clock=clock)
    registry.counter(
        "events_ingested_total", "beacon events folded into window state",
        exist_ok=True,
    )
    registry.counter(
        "events_quarantined_total", "malformed events rejected by policy",
        exist_ok=True,
    )
    registry.counter(
        "window_advances_total", "windows closed into aggregate",
        exist_ok=True,
    )
    registry.counter(
        "queries_total", "classification queries answered", exist_ok=True
    )
    registry.counter(
        "query_errors_total", "malformed or failed requests", exist_ok=True
    )
    registry.counter(
        "snapshots_written_total", "state snapshots persisted", exist_ok=True
    )
    registry.counter(
        "index_rebuilds_total", "LPM index rebuilds", exist_ok=True
    )
    registry.counter(
        "requests_shed_total",
        "requests refused by admission control or deadline",
        exist_ok=True,
    )
    registry.counter(
        "degraded_answers_total",
        "queries answered stale from the last good index",
        exist_ok=True,
    )
    registry.counter(
        "index_rebuild_failures_total",
        "index rebuild attempts that raised",
        exist_ok=True,
    )
    registry.counter(
        "snapshot_failures_total",
        "snapshot writes that failed (serving continued)",
        exist_ok=True,
    )
    registry.gauge(
        "tracked_subnets", "subnets with live window state", exist_ok=True
    )
    registry.gauge(
        "breaker_open",
        "1 while the index-rebuild circuit breaker is open",
        exist_ok=True,
    )
    registry.gauge(
        "degraded_mode",
        "1 while queries are served stale from the last good index",
        exist_ok=True,
    )
    registry.gauge(
        "pending_requests",
        "requests queued awaiting the serve loop",
        exist_ok=True,
    )
    registry.gauge(
        "ingest_events_per_s", "lifetime ingest rate", exist_ok=True
    )
    registry.histogram(
        "query_latency_seconds", "per-query service latency", exist_ok=True
    )
    registry.histogram(
        "ingest_batch_seconds", "latency of ingest batches between requests",
        bounds=(0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
        exist_ok=True,
    )
    return registry
