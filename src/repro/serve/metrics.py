"""Service metrics: counters, gauges, fixed-bucket histograms.

The online subsystem needs observability that batch commands never
did: how fast are events arriving, how often do windows advance, what
does query latency look like, how much input is being quarantined.
This module is a small, dependency-free metrics layer:

- :class:`Counter` -- monotonically increasing totals;
- :class:`Gauge` -- last-written values (queue depths, rates);
- :class:`Histogram` -- fixed-bucket distributions with conservative
  quantile estimates (a quantile is reported as the upper bound of
  the bucket it lands in, never an optimistic interpolation);
- :class:`MetricsRegistry` -- the named collection, exported as JSON
  for the ``stats`` query op and the SIGUSR1 dump.

Everything is plain Python and single-threaded by design: the serve
loop owns the registry, and exports are immutable dict snapshots.
"""

from __future__ import annotations

import bisect
import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 50us .. 1s, then overflow.
DEFAULT_LATENCY_BUCKETS = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def as_dict(self) -> Dict:
        return {"type": "counter", "value": self.value, "help": self.help}


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> Dict:
        return {"type": "gauge", "value": self.value, "help": self.help}


class Histogram:
    """Fixed-bucket distribution (cumulative counts, like Prometheus).

    ``bounds`` are the inclusive upper edges of each bucket; values
    above the last bound land in the implicit overflow bucket.
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "total")

    def __init__(
        self,
        name: str,
        help_text: str = "",
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be sorted and non-empty")
        self.name = name
        self.help = help_text
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Conservative quantile: the upper bound of the target bucket.

        Returns ``None`` when empty; ``float('inf')`` when the
        quantile falls in the overflow bucket (beyond the last bound).
        """
        if not 0 < q <= 1:
            raise ValueError("quantile must be in (0, 1]")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for index, bucket in enumerate(self.bucket_counts):
            cumulative += bucket
            if cumulative >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return float("inf")
        return float("inf")

    def as_dict(self) -> Dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "buckets": {
                str(bound): count
                for bound, count in zip(self.bounds, self.bucket_counts)
            },
            "overflow": self.bucket_counts[-1],
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "help": self.help,
        }


class MetricsRegistry:
    """Named metrics plus a start timestamp for rate derivations."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self.started_at = clock()
        self._metrics: Dict[str, object] = {}

    def _register(self, metric):
        if metric.name in self._metrics:
            raise ValueError(f"duplicate metric name: {metric.name}")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(Counter(name, help_text))

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(Gauge(name, help_text))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help_text, bounds))

    def get(self, name: str):
        return self._metrics[name]

    @property
    def uptime_s(self) -> float:
        return self._clock() - self.started_at

    def rate(self, counter_name: str) -> float:
        """Per-second rate of a counter over the registry's lifetime."""
        uptime = self.uptime_s
        counter = self._metrics[counter_name]
        if uptime <= 0:
            return 0.0
        return counter.value / uptime

    def as_dict(self) -> Dict:
        payload = {
            name: metric.as_dict()
            for name, metric in sorted(self._metrics.items())
        }
        payload["_uptime_s"] = self.uptime_s
        return payload

    def render_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


def service_metrics(clock=time.monotonic) -> MetricsRegistry:
    """The serving layer's standard metric set, pre-registered."""
    registry = MetricsRegistry(clock=clock)
    registry.counter(
        "events_ingested_total", "beacon events folded into window state"
    )
    registry.counter(
        "events_quarantined_total", "malformed events rejected by policy"
    )
    registry.counter("window_advances_total", "windows closed into aggregate")
    registry.counter("queries_total", "classification queries answered")
    registry.counter("query_errors_total", "malformed or failed requests")
    registry.counter("snapshots_written_total", "state snapshots persisted")
    registry.counter("index_rebuilds_total", "LPM index rebuilds")
    registry.gauge("tracked_subnets", "subnets with live window state")
    registry.gauge("ingest_events_per_s", "lifetime ingest rate")
    registry.histogram(
        "query_latency_seconds", "per-query service latency"
    )
    registry.histogram(
        "ingest_batch_seconds", "latency of ingest batches between requests",
        bounds=(0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
    )
    return registry
