"""The online cell-spotting service.

:class:`CellSpotService` wires a :class:`~repro.stream.StreamEngine`
to a :class:`~repro.serve.index.ClassificationIndex` behind a
line-delimited JSON request/response protocol, served over
stdin/stdout or a local ``AF_UNIX`` socket.

Protocol (one JSON object per line)::

    {"op": "query",   "q": "192.0.2.17"}          -> one classification
    {"op": "query",   "qs": ["192.0.2.17", ...]}  -> batch answers
    {"op": "stats"}                                -> metrics + engine state
    {"op": "health"}                               -> engine + drift + alerts
    {"op": "alerts"}                               -> alert rule states
    {"op": "refresh"}                              -> force index rebuild
    {"op": "snapshot"}                             -> force a state snapshot
    {"op": "shutdown"}                             -> snapshot, ack, stop

Every response carries ``{"ok": true|false}``; malformed requests are
answered (never crash the loop) and counted in
``query_errors_total``.

**Freshness model.**  The LPM index is a compiled artifact; rebuilding
it per event would melt the ingest path.  It is rebuilt when a window
closes (configurable stride), on ``refresh``, and lazily on the first
query after new events -- so queries always reflect at worst the
state as of the last completed ingest batch.

**Crash safety.**  Snapshots are written atomically every
``snapshot_every_events`` ingested events and at shutdown; a killed
server restarts from its snapshot and skips exactly the consumed
prefix of the event stream (see
:func:`repro.stream.sources.skip_events`), so no window count is
duplicated or lost.

``SIGUSR1`` dumps the metrics JSON to stderr without disturbing the
request stream (installed by the CLI front end, main thread only).

**Overload and degradation.**  The service degrades explicitly, never
silently:

- *Admission control* -- with ``max_pending`` set, requests beyond the
  bounded queue are shed with ``{"ok": false, "error": "overloaded",
  "overloaded": true}`` (in request order), counted in
  ``requests_shed_total``.
- *Deadlines* -- with ``deadline_s`` set, batch-query items past the
  request's budget are answered ``overloaded`` instead of holding the
  line occupied.
- *Circuit breaker + degraded mode* -- ``breaker_failures``
  consecutive index-rebuild failures open a breaker; while it is open
  (and until ``breaker_reset_s`` allows a probe) queries are answered
  from the last good index with a top-level ``"stale": true`` marker
  and counted in ``degraded_answers_total``.  A successful rebuild
  closes the breaker and clears the marker.
- *Snapshot failures* inside the serve loop degrade (counted in
  ``snapshot_failures_total``) instead of killing the server; only the
  explicit ``snapshot`` op reports them as errors.

:meth:`CellSpotService.request_shutdown` is the SIGTERM hook: the
serve loops finish already-accepted requests, write a final snapshot,
and return cleanly.
"""

from __future__ import annotations

import json
import logging
import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Callable, Dict, Iterator, Optional, Union

from repro.cdn.logs import BeaconHit
from repro.core.asn_classifier import ASFilterConfig
from repro.core.classifier import DEFAULT_THRESHOLD
from repro.datasets.demand_dataset import DemandDataset
from repro.runtime.faults import fault_point
from repro.runtime.logging import get_logger, log_event
from repro.serve.index import ClassificationIndex
from repro.serve.metrics import MetricsRegistry, service_metrics
from repro.stream.engine import StreamEngine

_LOG = get_logger("serve.service")


@dataclass(frozen=True)
class ServiceConfig:
    """Serving knobs."""

    threshold: float = DEFAULT_THRESHOLD
    min_api_hits: int = 1
    #: Snapshot every N ingested events (None = only on shutdown).
    snapshot_every_events: Optional[int] = 50_000
    #: Events pulled from the source between requests.
    ingest_batch: int = 5_000
    #: Rebuild the index every N window advances (>=1).
    rebuild_every_windows: int = 1
    #: Admission bound: requests queued beyond this are shed with an
    #: explicit ``overloaded`` response (None = legacy unbounded).
    max_pending: Optional[int] = None
    #: Per-request wall budget; batch items past it are shed (None =
    #: no deadline).
    deadline_s: Optional[float] = None
    #: Consecutive index-rebuild failures that open the breaker.
    breaker_failures: int = 3
    #: Seconds an open breaker waits before allowing a probe rebuild.
    breaker_reset_s: float = 30.0

    def __post_init__(self) -> None:
        if self.snapshot_every_events is not None and (
            self.snapshot_every_events < 1
        ):
            raise ValueError("snapshot_every_events must be >= 1")
        if self.ingest_batch < 1:
            raise ValueError("ingest_batch must be >= 1")
        if self.rebuild_every_windows < 1:
            raise ValueError("rebuild_every_windows must be >= 1")
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if self.breaker_reset_s < 0:
            raise ValueError("breaker_reset_s must be >= 0")


class CircuitBreaker:
    """Consecutive-failure breaker guarding an expensive operation.

    Closed (normal) until ``failures`` consecutive
    :meth:`record_failure` calls open it; while open, :meth:`allow`
    refuses until ``reset_s`` has elapsed, then admits a single probe.
    Any success closes it again.  The clock is injectable so tests can
    step time instead of sleeping.
    """

    def __init__(
        self,
        failures: int = 3,
        reset_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failures = failures
        self.reset_s = reset_s
        self._clock = clock
        self._consecutive = 0
        self._opened_at: Optional[float] = None

    @property
    def is_open(self) -> bool:
        return self._opened_at is not None

    def allow(self) -> bool:
        """True when the guarded operation may be attempted now."""
        if self._opened_at is None:
            return True
        return self._clock() - self._opened_at >= self.reset_s

    def record_failure(self) -> None:
        self._consecutive += 1
        if self._consecutive >= self.failures:
            self._opened_at = self._clock()

    def record_success(self) -> None:
        self._consecutive = 0
        self._opened_at = None


class CellSpotService:
    """Streaming state + query index + metrics behind one request API."""

    def __init__(
        self,
        engine: StreamEngine,
        demand: Optional[DemandDataset] = None,
        as_classes=None,
        filter_config: Optional[ASFilterConfig] = None,
        config: Optional[ServiceConfig] = None,
        snapshot_path: Optional[Union[str, Path]] = None,
        metrics: Optional[MetricsRegistry] = None,
        alert_engine=None,
        drift_monitor=None,
        ratio_spool_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.engine = engine
        self.demand = demand
        self.as_classes = as_classes
        self.filter_config = filter_config
        self.config = config or ServiceConfig()
        self.snapshot_path = (
            Path(snapshot_path) if snapshot_path is not None else None
        )
        self.metrics = metrics or service_metrics()
        #: Optional :class:`repro.obs.alerts.AlertEngine` (the
        #: ``health`` / ``alerts`` ops surface its rule states).
        self.alert_engine = alert_engine
        #: Optional :class:`repro.obs.health.CensusDriftMonitor`,
        #: attached to the engine's window-close boundary.
        self.drift_monitor = drift_monitor
        if drift_monitor is not None:
            engine.attach_monitor(drift_monitor)
        #: When set, index rebuilds spool the ratio table through an
        #: mmap snapshot (:mod:`repro.scale.snapshot`) and build from
        #: the read-only mapping: the rebuild's working set is shared
        #: pages instead of a second in-heap record copy, and each
        #: published generation doubles as a handoff point for the
        #: horizontal serving plane's workers.
        self._ratio_spool = None
        self._spool_table = None
        if ratio_spool_dir is not None:
            from repro.scale.snapshot import SnapshotCatalog

            self._ratio_spool = SnapshotCatalog(ratio_spool_dir)
        self._index: Optional[ClassificationIndex] = None
        self._index_events = -1  # events_consumed at last build
        self._windows_at_build = -1
        self._events_since_snapshot = 0
        self.shutdown_requested = False
        #: Set by :meth:`request_shutdown` (SIGTERM): serve loops drain
        #: already-accepted requests before snapshotting and exiting.
        self._drain_on_shutdown = False
        #: True while queries are answered stale from the last good
        #: index because rebuilds keep failing (breaker open).
        self.degraded = False
        self._breaker = CircuitBreaker(
            failures=self.config.breaker_failures,
            reset_s=self.config.breaker_reset_s,
        )
        self._requests_handled = 0
        # A resumed engine may already hold consumed events.
        self.metrics.get("tracked_subnets").set(engine.subnet_count())

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop after draining accepted work.

        Signal-handler safe (sets flags only); the loop notices on its
        next tick, answers what was already queued, writes a final
        snapshot, and returns.
        """
        self.shutdown_requested = True
        self._drain_on_shutdown = True

    # ---- ingestion -------------------------------------------------------

    def ingest_from(
        self,
        events: Iterator[BeaconHit],
        max_events: Optional[int] = None,
    ) -> int:
        """Pull up to ``max_events`` (default: one batch) from the source.

        Returns how many events were folded in; 0 means the source is
        (currently) exhausted.
        """
        budget = self.config.ingest_batch if max_events is None else max_events
        fault_point("serve.ingest", index=self.engine.events_consumed)
        ingested = 0
        windows_before = self.engine.windows_advanced
        started = time.perf_counter()
        while ingested < budget:
            try:
                hit = next(events)
            except StopIteration:
                break
            self.engine.ingest(hit)
            ingested += 1
        if ingested:
            elapsed = time.perf_counter() - started
            self.metrics.get("events_ingested_total").inc(ingested)
            self.metrics.get("ingest_batch_seconds").observe(elapsed)
            closed = self.engine.windows_advanced - windows_before
            if closed:
                self.metrics.get("window_advances_total").inc(closed)
            self.metrics.get("tracked_subnets").set(self.engine.subnet_count())
            self.metrics.get("ingest_events_per_s").set(
                self.metrics.rate("events_ingested_total")
            )
            self._events_since_snapshot += ingested
            every = self.config.snapshot_every_events
            if (
                every is not None
                and self.snapshot_path is not None
                and self._events_since_snapshot >= every
            ):
                # A failed periodic snapshot degrades; it must not
                # take ingestion (and with it, serving) down.
                self.write_snapshot(raise_errors=False)
        return ingested

    def drain(self, events: Iterator[BeaconHit]) -> int:
        """Ingest the whole source (one-shot / catch-up mode)."""
        total = 0
        while True:
            pulled = self.ingest_from(events, max_events=self.config.ingest_batch)
            if pulled == 0:
                return total
            total += pulled

    def write_snapshot(self, raise_errors: bool = True) -> Optional[Path]:
        """Persist engine state; ``raise_errors=False`` degrades instead.

        Serve-loop call sites pass ``False``: a full disk must cost
        durability (counted in ``snapshot_failures_total``), not
        availability.  The explicit ``snapshot`` op keeps ``True`` so
        the caller hears about the failure.
        """
        if self.snapshot_path is None:
            return None
        try:
            path = self.engine.save_snapshot(self.snapshot_path)
        except Exception as exc:  # noqa: BLE001 -- policy decided by caller
            if raise_errors:
                raise
            self.metrics.get("snapshot_failures_total").inc()
            log_event(
                _LOG, logging.ERROR, "snapshot.failed",
                error=f"{type(exc).__name__}: {exc}",
            )
            return None
        self.metrics.get("snapshots_written_total").inc()
        self._events_since_snapshot = 0
        return path

    # ---- index management ------------------------------------------------

    def _index_stale(self) -> bool:
        if self._index is None:
            return True
        if self.engine.events_consumed == self._index_events:
            return False
        advanced = self.engine.windows_advanced - self._windows_at_build
        return advanced >= self.config.rebuild_every_windows or (
            # No window has closed yet but data arrived: rebuild once
            # so early queries are not answered from an empty index.
            self._index_events <= 0
        )

    def _enter_degraded(self) -> None:
        if not self.degraded:
            self.degraded = True
            self.metrics.get("degraded_mode").set(1.0)
            log_event(
                _LOG, logging.WARNING, "serve.degraded",
                index_events=self._index_events,
            )

    def _leave_degraded(self) -> None:
        if self.degraded:
            self.degraded = False
            self.metrics.get("degraded_mode").set(0.0)
            log_event(_LOG, logging.INFO, "serve.recovered")

    def _rebuild_table(self):
        """The ratio table a rebuild compiles, spooled through mmap
        when a spool directory is configured.

        The spool publishes the table as the next snapshot generation
        (write-then-rename, see
        :class:`repro.scale.snapshot.SnapshotCatalog`) and maps it
        back read-only, so the build iterates shared pages instead of
        a second heap copy -- and external consumers (the serving
        plane's workers, ``cellspot loadgen``) can map the very same
        generation.  Decayed window policies hold fractional counts
        that the int64 snapshot format refuses, so only exact
        (``decay == 1.0``) engines spool; others fall back to the
        in-heap table.  Spool failures propagate into the caller's
        circuit-breaker path like any other rebuild failure.
        """
        table = self.engine.ratio_table(self.config.min_api_hits)
        if self._ratio_spool is None or not self.engine.policy.is_exact:
            return table
        from repro.columnar.mmaptable import open_mmap

        info = self._ratio_spool.publish(
            table,
            meta={
                "events": self.engine.events_consumed,
                "windows": self.engine.windows_advanced,
                "month": self.engine.month,
            },
        )
        mapped = open_mmap(info.table_path)
        # Index entries copy record fields out of the mapping, so the
        # superseded generation's pages are safe to release now.
        if self._spool_table is not None:
            self._spool_table.close()
        self._spool_table = mapped
        self._ratio_spool.prune(keep=2)
        log_event(
            _LOG, logging.INFO, "index.spooled",
            generation=info.number, path=str(info.table_path),
        )
        return mapped

    def index(self, force: bool = False) -> ClassificationIndex:
        """The current LPM index, rebuilt if stale (or ``force``).

        Rebuilds run behind a circuit breaker: while it is open (too
        many consecutive rebuild failures), the last good index is
        served in degraded mode instead of hammering the failing
        build.  Only when there is no index at all does the failure
        propagate -- there is nothing stale to answer from.
        """
        if not (force or self._index_stale()):
            return self._index
        if not self._breaker.allow():
            if self._index is not None:
                self._enter_degraded()
                return self._index
            raise RuntimeError(
                "index unavailable: rebuild circuit breaker is open "
                "and no previous index exists"
            )
        try:
            fault_point("serve.refresh")
            built = ClassificationIndex.build(
                self._rebuild_table(),
                demand=self.demand,
                threshold=self.config.threshold,
                min_api_hits=self.config.min_api_hits,
                as_classes=self.as_classes,
                filter_config=self.filter_config,
                hits_by_asn=(
                    self.engine.hits_by_asn()
                    if self.demand is not None
                    else None
                ),
            )
        except Exception as exc:  # noqa: BLE001 -- degrade, don't crash
            self._breaker.record_failure()
            self.metrics.get("index_rebuild_failures_total").inc()
            self.metrics.get("breaker_open").set(
                1.0 if self._breaker.is_open else 0.0
            )
            log_event(
                _LOG, logging.ERROR, "index.rebuild_failed",
                error=f"{type(exc).__name__}: {exc}",
                breaker_open=self._breaker.is_open,
            )
            if self._index is not None:
                self._enter_degraded()
                return self._index
            raise
        self._breaker.record_success()
        self.metrics.get("breaker_open").set(0.0)
        self._leave_degraded()
        self._index = built
        self._index_events = self.engine.events_consumed
        self._windows_at_build = self.engine.windows_advanced
        self.metrics.get("index_rebuilds_total").inc()
        log_event(
            _LOG, logging.INFO, "index.rebuilt",
            entries=len(self._index),
            events=self.engine.events_consumed,
        )
        return self._index

    # ---- request handling ------------------------------------------------

    def stats(self) -> Dict:
        return {
            "ok": True,
            "engine": {
                "month": self.engine.month,
                "events_consumed": self.engine.events_consumed,
                "windows_advanced": self.engine.windows_advanced,
                "window_fill": self.engine.state.window_fill,
                "subnets": self.engine.subnet_count(),
                "policy": {
                    "window_events": self.engine.policy.window_events,
                    "decay": self.engine.policy.decay,
                },
            },
            "index_entries": (
                len(self._index) if self._index is not None else 0
            ),
            "metrics": self.metrics.as_dict(),
        }

    def health(self) -> Dict:
        """The continuous-observability payload (``cellspot top`` food).

        Engine progress, derived rates, census drift scores, and live
        alert rule states -- everything the dashboard renders in one
        response, cheap enough to poll every second (no index rebuild,
        no ratio-table materialization).
        """
        import time as time_module

        latency = self.metrics.get("query_latency_seconds")
        payload = {
            "ok": True,
            "ts": time_module.time(),
            "engine": {
                "month": self.engine.month,
                "events_consumed": self.engine.events_consumed,
                "windows_advanced": self.engine.windows_advanced,
                "window_fill": self.engine.state.window_fill,
                "subnets": self.engine.subnet_count(),
            },
            "rates": {
                "events_per_s": self.metrics.rate("events_ingested_total"),
                "queries_per_s": self.metrics.rate("queries_total"),
                "query_p99_s": latency.quantile(0.99),
            },
            "index_entries": (
                len(self._index) if self._index is not None else 0
            ),
            "drift": (
                self.drift_monitor.summary()
                if self.drift_monitor is not None
                else {}
            ),
            "alerts": (
                self.alert_engine.snapshot()
                if self.alert_engine is not None
                else []
            ),
        }
        if self.alert_engine is not None:
            payload["alert_counts"] = self.alert_engine.counts()
        return payload

    def alerts(self) -> Dict:
        """Alert rule states plus recent transitions."""
        if self.alert_engine is None:
            return {"ok": True, "rules": [], "events": [],
                    "note": "no alert engine configured"}
        return {
            "ok": True,
            "rules": self.alert_engine.snapshot(),
            "events": self.alert_engine.events[-100:],
            "trace_id": self.alert_engine.trace_id,
        }

    def handle_request(self, request: Dict) -> Dict:
        """Answer one request dict; never raises."""
        try:
            fault_point("serve.request", index=self._requests_handled)
            self._requests_handled += 1
            op = request.get("op")
            if op == "query":
                return self._handle_query(request)
            if op == "stats":
                return self.stats()
            if op == "health":
                return self.health()
            if op == "alerts":
                return self.alerts()
            if op == "refresh":
                index = self.index(force=True)
                return {"ok": True, "index_entries": len(index)}
            if op == "snapshot":
                path = self.write_snapshot()
                if path is None:
                    return {"ok": False, "error": "no snapshot path configured"}
                return {"ok": True, "snapshot": str(path)}
            if op == "shutdown":
                self.shutdown_requested = True
                path = self.write_snapshot()
                return {
                    "ok": True,
                    "shutdown": True,
                    "snapshot": str(path) if path else None,
                }
            self.metrics.get("query_errors_total").inc()
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:  # noqa: BLE001 -- the loop must survive
            self.metrics.get("query_errors_total").inc()
            log_event(
                _LOG, logging.ERROR, "request.failed",
                error=f"{type(exc).__name__}: {exc}",
            )
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _handle_query(self, request: Dict) -> Dict:
        queries = request.get("qs")
        single = request.get("q")
        if queries is None and single is None:
            self.metrics.get("query_errors_total").inc()
            return {"ok": False, "error": "query op needs 'q' or 'qs'"}
        if queries is not None and not isinstance(queries, list):
            self.metrics.get("query_errors_total").inc()
            return {"ok": False, "error": "'qs' must be a list"}
        index = self.index()
        latency = self.metrics.get("query_latency_seconds")
        counter = self.metrics.get("queries_total")
        deadline = (
            time.perf_counter() + self.config.deadline_s
            if self.config.deadline_s is not None
            else None
        )

        def answer(text) -> Dict:
            started = time.perf_counter()
            result = index.query(str(text))
            latency.observe(time.perf_counter() - started)
            counter.inc()
            if result.error is not None:
                self.metrics.get("query_errors_total").inc()
            return result.to_dict()

        def over_deadline() -> bool:
            return deadline is not None and time.perf_counter() > deadline

        def finish(response: Dict) -> Dict:
            if self.degraded:
                # Explicit staleness: degraded answers come from the
                # last good index, and the client must know.
                response["stale"] = True
                self.metrics.get("degraded_answers_total").inc()
            return response

        if queries is not None:
            results = []
            for item in queries:
                if over_deadline():
                    self.metrics.get("requests_shed_total").inc()
                    results.append(
                        {"ok": False, "error": "overloaded",
                         "overloaded": True}
                    )
                    continue
                results.append(answer(item))
            return finish({"ok": True, "results": results})
        return finish({"ok": True, "result": answer(single)})

    def handle_line(self, line: str) -> Dict:
        """Parse one protocol line and answer it; never raises."""
        stripped = line.strip()
        if not stripped:
            self.metrics.get("query_errors_total").inc()
            return {"ok": False, "error": "empty request line"}
        try:
            request = json.loads(stripped)
        except ValueError as exc:
            self.metrics.get("query_errors_total").inc()
            return {"ok": False, "error": f"bad JSON: {exc}"}
        if not isinstance(request, dict):
            self.metrics.get("query_errors_total").inc()
            return {"ok": False, "error": "request must be a JSON object"}
        return self.handle_request(request)

    # ---- serve loops -----------------------------------------------------

    def serve_lines(
        self,
        requests: IO[str],
        responses: IO[str],
        events: Optional[Iterator[BeaconHit]] = None,
    ) -> int:
        """Serve line-delimited JSON until EOF or a ``shutdown`` op.

        Before each request (and once at startup) up to one ingest
        batch is pulled from ``events``, so ingestion makes progress
        while the request stream is quiet.  Returns the number of
        requests answered.

        A reader thread feeds requests through a queue so the loop
        stays responsive while the handler is busy; with
        ``max_pending`` set, requests arriving beyond the bound are
        shed -- in request order -- with an explicit ``overloaded``
        response instead of queueing without limit.  SIGTERM
        (:meth:`request_shutdown`) drains already-queued requests,
        snapshots, and returns.
        """
        answered = 0
        pending: "queue.Queue" = queue.Queue()
        admit_lock = threading.Lock()
        admitted = 0
        pending_gauge = self.metrics.get("pending_requests")
        eof_seen = False

        def feed() -> None:
            nonlocal admitted
            for line in requests:
                with admit_lock:
                    bound = self.config.max_pending
                    if bound is not None and admitted >= bound:
                        # Shed markers ride the same queue so the
                        # refusal lands in request order.
                        pending.put(("shed", line))
                        continue
                    admitted += 1
                    pending_gauge.set(float(admitted))
                pending.put(("line", line))
            pending.put(("eof", None))

        reader = threading.Thread(target=feed, daemon=True)
        reader.start()
        if events is not None:
            self.ingest_from(events)
        while True:
            try:
                kind, line = pending.get(timeout=0.05)
            except queue.Empty:
                if self.shutdown_requested:
                    break
                if events is not None:
                    self.ingest_from(events)
                continue
            if kind == "eof":
                eof_seen = True
                break
            if kind == "shed":
                self.metrics.get("requests_shed_total").inc()
                response = {
                    "ok": False, "error": "overloaded", "overloaded": True,
                }
            else:
                with admit_lock:
                    admitted -= 1
                    pending_gauge.set(float(admitted))
                if events is not None:
                    self.ingest_from(events)
                response = self.handle_line(line)
            responses.write(json.dumps(response, separators=(",", ":")))
            responses.write("\n")
            responses.flush()
            answered += 1
            if self.shutdown_requested and not self._drain_on_shutdown:
                # The shutdown *op* stops immediately (it already
                # snapshotted); queued lines are intentionally dropped.
                break
        if self.shutdown_requested and self._drain_on_shutdown:
            # SIGTERM: the work was accepted, so finish it, then leave
            # resumable state behind.
            while True:
                try:
                    kind, line = pending.get_nowait()
                except queue.Empty:
                    break
                if kind != "line":
                    continue
                response = self.handle_line(line)
                responses.write(json.dumps(response, separators=(",", ":")))
                responses.write("\n")
                responses.flush()
                answered += 1
            self.write_snapshot(raise_errors=False)
        elif eof_seen and not self.shutdown_requested:
            # EOF without an explicit shutdown: drain and snapshot so a
            # piped session still leaves resumable state behind.
            if events is not None:
                self.drain(events)
            self.write_snapshot()
        log_event(
            _LOG, logging.INFO, "serve.done",
            requests=answered, events=self.engine.events_consumed,
        )
        return answered

    def serve_socket(
        self,
        socket_path: Union[str, Path],
        events: Optional[Iterator[BeaconHit]] = None,
        max_connections: Optional[int] = None,
    ) -> int:
        """Serve the same protocol over a local ``AF_UNIX`` socket.

        Each connection carries any number of request lines; the
        server is single-threaded (connections are handled in arrival
        order) and stops after a ``shutdown`` op or
        ``max_connections``.  Returns the number of requests answered.

        A leftover socket file from a crashed server is probed with a
        connect: refused means nobody is listening, so the stale file
        is removed and the bind proceeds; a live listener raises
        ``OSError`` instead of silently hijacking the path.  SIGTERM
        (:meth:`request_shutdown`) is noticed between lines -- reads
        carry a short timeout -- and ends with a final snapshot.
        """
        import socket as socket_module

        socket_path = Path(socket_path)
        if socket_path.exists():
            if _socket_is_live(socket_path):
                raise OSError(
                    f"socket {socket_path} is in use by a live server"
                )
            log_event(
                _LOG, logging.WARNING, "serve.socket.stale_removed",
                path=socket_path,
            )
            socket_path.unlink()
        server = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        answered = 0
        connections = 0
        try:
            server.bind(str(socket_path))
            server.listen(8)
            server.settimeout(0.1)
            log_event(
                _LOG, logging.INFO, "serve.socket", path=socket_path
            )
            while not self.shutdown_requested:
                if events is not None:
                    self.ingest_from(events)
                try:
                    connection, _addr = server.accept()
                except socket_module.timeout:
                    continue
                with connection:
                    # Bounded reads: a silent client must not make the
                    # server deaf to shutdown requests.  (A partial
                    # line racing the timeout can be dropped -- fine
                    # for this prompt-response, line-delimited
                    # protocol; clients write whole lines.)
                    connection.settimeout(0.5)
                    reader = connection.makefile("r")
                    writer = connection.makefile("w")
                    while not self.shutdown_requested:
                        try:
                            line = reader.readline()
                        except socket_module.timeout:
                            if events is not None:
                                self.ingest_from(events)
                            continue
                        except OSError:
                            break  # client went away mid-line
                        if not line:
                            break  # client EOF
                        response = self.handle_line(line)
                        writer.write(
                            json.dumps(response, separators=(",", ":"))
                        )
                        writer.write("\n")
                        writer.flush()
                        answered += 1
                connections += 1
                if (
                    max_connections is not None
                    and connections >= max_connections
                ):
                    break
            self.write_snapshot(raise_errors=False)
        finally:
            server.close()
            if socket_path.exists():
                socket_path.unlink()
        return answered


def _socket_is_live(socket_path: Path, timeout_s: float = 0.2) -> bool:
    """True when something is accepting connections on ``socket_path``.

    A crashed server leaves its socket file behind (unlink-on-exit
    never ran); connecting to such a corpse fails with
    ``ECONNREFUSED``, which is how we tell a stale file from a live
    server we must not evict.
    """
    import socket as socket_module

    probe = socket_module.socket(
        socket_module.AF_UNIX, socket_module.SOCK_STREAM
    )
    probe.settimeout(timeout_s)
    try:
        probe.connect(str(socket_path))
    except OSError:
        return False
    else:
        return True
    finally:
        probe.close()


def install_sigusr1_registry(registry, stream=None) -> bool:
    """Dump a metrics registry's JSON to ``stream`` (stderr) on ``SIGUSR1``.

    Returns False when signals are unavailable (non-main thread,
    platforms without SIGUSR1) -- the caller works without it.  Shared
    by the single-process service and the serving-plane front so both
    answer the same operator reflex with the same atomic dump.
    """
    import signal
    import sys

    if not hasattr(signal, "SIGUSR1"):
        return False
    target = stream if stream is not None else sys.stderr

    def _dump(_signum, _frame):
        target.write(registry.render_json(indent=2))
        target.write("\n")
        target.flush()

    try:
        signal.signal(signal.SIGUSR1, _dump)
    except ValueError:  # not the main thread
        return False
    return True


def install_sigusr1_stats(service: CellSpotService, stream=None) -> bool:
    """Dump the service's metrics JSON to ``stream`` on ``SIGUSR1``."""
    return install_sigusr1_registry(service.metrics, stream=stream)
