"""Small statistics toolkit shared by the generator and the analyses.

- :mod:`repro.stats.cdf` -- empirical (optionally weighted) CDFs, the
  workhorse behind every "CDF of ..." figure in the paper.
- :mod:`repro.stats.sampling` -- deterministic heavy-tail samplers
  (Zipf, lognormal, bounded Pareto) used by the demand model.
- :mod:`repro.stats.confusion` -- binary confusion matrices with
  precision / recall / F1, supporting both counts and demand weights
  (Table 3 reports both).
- :mod:`repro.stats.concentration` -- top-k shares, Gini coefficient,
  and rank-demand curves (Figures 7 and 8).
"""

from repro.stats.cdf import EmpiricalCDF
from repro.stats.concentration import (
    gini_coefficient,
    rank_share_curve,
    top_k_share,
)
from repro.stats.confusion import BinaryConfusion
from repro.stats.sampling import (
    binomial,
    bounded_pareto,
    lognormal_weights,
    poisson,
    zipf_weights,
)

__all__ = [
    "BinaryConfusion",
    "EmpiricalCDF",
    "binomial",
    "poisson",
    "bounded_pareto",
    "gini_coefficient",
    "lognormal_weights",
    "rank_share_curve",
    "top_k_share",
    "zipf_weights",
]
