"""Empirical cumulative distribution functions, optionally weighted.

Every distribution figure in the paper (Figures 2, 4, 5, 6, 9) is an
empirical CDF, several of them *demand-weighted* (each subnet counts by
its Demand Units rather than once).  :class:`EmpiricalCDF` covers both.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Sequence, Tuple


class EmpiricalCDF:
    """An empirical CDF over real values with optional per-value weights.

    ``F(x)`` is the weight fraction of samples with value <= x.  Values
    are stored sorted; evaluation is a binary search.
    """

    def __init__(
        self,
        values: Iterable[float],
        weights: Optional[Iterable[float]] = None,
    ) -> None:
        values = list(values)
        if weights is None:
            weights = [1.0] * len(values)
        else:
            weights = list(weights)
        if len(values) != len(weights):
            raise ValueError("values and weights must have equal length")
        if not values:
            raise ValueError("empty CDF")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("total weight must be positive")
        pairs = sorted(zip(values, weights))
        self._values: List[float] = []
        self._cumulative: List[float] = []
        running = 0.0
        for value, weight in pairs:
            running += weight
            if self._values and self._values[-1] == value:
                self._cumulative[-1] = running
            else:
                self._values.append(value)
                self._cumulative.append(running)
        self._total = total

    def __len__(self) -> int:
        return len(self._values)

    @property
    def total_weight(self) -> float:
        return self._total

    @property
    def min(self) -> float:
        return self._values[0]

    @property
    def max(self) -> float:
        return self._values[-1]

    def evaluate(self, x: float) -> float:
        """F(x): fraction of total weight at values <= x."""
        index = bisect.bisect_right(self._values, x)
        if index == 0:
            return 0.0
        return self._cumulative[index - 1] / self._total

    __call__ = evaluate

    def fraction_below(self, x: float) -> float:
        """Fraction of weight at values strictly < x."""
        index = bisect.bisect_left(self._values, x)
        if index == 0:
            return 0.0
        return self._cumulative[index - 1] / self._total

    def fraction_above(self, x: float) -> float:
        """Fraction of weight at values strictly > x."""
        return 1.0 - self.evaluate(x)

    def fraction_between(self, low: float, high: float) -> float:
        """Fraction of weight at values in the closed interval [low, high]."""
        if high < low:
            raise ValueError("high must be >= low")
        return self.evaluate(high) - self.fraction_below(low)

    def quantile(self, q: float) -> float:
        """Smallest value x with F(x) >= q, for q in (0, 1]."""
        if not 0 < q <= 1:
            raise ValueError("quantile level must be in (0, 1]")
        target = q * self._total
        # First cumulative weight >= target.
        low, high = 0, len(self._cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative[mid] < target - 1e-12:
                low = mid + 1
            else:
                high = mid
        return self._values[low]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def points(self) -> Sequence[Tuple[float, float]]:
        """The CDF as ``(value, F(value))`` steps — ready to plot/print."""
        return [
            (value, cum / self._total)
            for value, cum in zip(self._values, self._cumulative)
        ]

    def sampled_points(self, count: int) -> Sequence[Tuple[float, float]]:
        """At most ``count`` evenly spaced steps of the CDF (for display)."""
        if count <= 0:
            raise ValueError("count must be positive")
        steps = self.points()
        if len(steps) <= count:
            return list(steps)
        stride = (len(steps) - 1) / (count - 1) if count > 1 else 1
        indices = sorted({round(i * stride) for i in range(count)})
        return [steps[i] for i in indices]
