"""Concentration measures for rank-demand analyses.

Sections 6.2 and 7 repeatedly quantify how concentrated demand is:
"the top 10 cellular ASes account for 38% of global demand", "24 out of
514 active cellular /24s account for 99.5% of cellular demand", "the
top 5 countries account for 55.7%".  These helpers compute exactly
those statistics from weight collections.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def top_k_share(weights: Iterable[float], k: int) -> float:
    """Fraction of total weight held by the k largest weights.

    >>> top_k_share([5, 3, 1, 1], 2)
    0.8
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    ordered = sorted((float(w) for w in weights), reverse=True)
    if any(w < 0 for w in ordered):
        raise ValueError("weights must be non-negative")
    total = sum(ordered)
    if total <= 0:
        raise ValueError("total weight must be positive")
    return sum(ordered[:k]) / total


def smallest_covering(weights: Iterable[float], fraction: float) -> int:
    """Minimum number of largest weights needed to cover ``fraction``.

    Used for statements like "25 /24 subnets capture 99.3% of cellular
    demand": ``smallest_covering(subnet_demands, 0.993)``.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    ordered = sorted((float(w) for w in weights), reverse=True)
    total = sum(ordered)
    if total <= 0:
        raise ValueError("total weight must be positive")
    target = fraction * total
    running = 0.0
    for count, weight in enumerate(ordered, start=1):
        running += weight
        if running >= target - 1e-12:
            return count
    return len(ordered)


def rank_share_curve(weights: Iterable[float]) -> List[Tuple[int, float]]:
    """``(rank, share_of_total)`` sorted descending — Figures 7 and 8."""
    ordered = sorted((float(w) for w in weights), reverse=True)
    total = sum(ordered)
    if total <= 0:
        raise ValueError("total weight must be positive")
    return [(rank, weight / total) for rank, weight in enumerate(ordered, 1)]


def cumulative_share_curve(weights: Iterable[float]) -> List[Tuple[int, float]]:
    """``(rank, cumulative_share)`` sorted descending."""
    curve = rank_share_curve(weights)
    running = 0.0
    result = []
    for rank, share in curve:
        running += share
        result.append((rank, min(running, 1.0)))
    return result


def gini_coefficient(weights: Sequence[float]) -> float:
    """Gini coefficient of a weight vector, in [0, 1).

    0 = perfectly even; values near 1 = extreme concentration.  Used by
    the ablation benches to summarize how concentrated cellular demand
    is compared to fixed-line demand.
    """
    ordered = sorted(float(w) for w in weights)
    if any(w < 0 for w in ordered):
        raise ValueError("weights must be non-negative")
    n = len(ordered)
    if n == 0:
        raise ValueError("weights must be non-empty")
    total = sum(ordered)
    if total <= 0:
        return 0.0
    cumulative = 0.0
    weighted_sum = 0.0
    for index, weight in enumerate(ordered, start=1):
        cumulative += weight
        weighted_sum += cumulative
    # Standard formula: G = (n + 1 - 2 * sum(cum_i)/total) / n,
    # clamped against floating-point dust on uniform inputs.
    return max(0.0, (n + 1 - 2 * weighted_sum / total) / n)
