"""Binary confusion matrices with count and weight accumulation.

Table 3 of the paper reports classification accuracy twice per carrier:
once counting CIDRs and once weighting each CIDR by its traffic demand.
:class:`BinaryConfusion` supports both by accepting a weight per
observation (default 1.0 = plain counting).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BinaryConfusion:
    """Accumulator for a binary classifier's outcomes.

    The "positive" class is *cellular* throughout this library: a true
    positive is a cellular subnet labeled cellular, a false positive a
    fixed-line subnet labeled cellular (section 4.2).
    """

    tp: float = 0.0
    fp: float = 0.0
    tn: float = 0.0
    fn: float = 0.0

    def observe(self, truth: bool, predicted: bool, weight: float = 1.0) -> None:
        """Record one observation with the given weight."""
        if weight < 0:
            raise ValueError("weight must be non-negative")
        if truth and predicted:
            self.tp += weight
        elif truth and not predicted:
            self.fn += weight
        elif not truth and predicted:
            self.fp += weight
        else:
            self.tn += weight

    def merge(self, other: "BinaryConfusion") -> "BinaryConfusion":
        """Element-wise sum of two confusion matrices."""
        return BinaryConfusion(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            tn=self.tn + other.tn,
            fn=self.fn + other.fn,
        )

    @property
    def total(self) -> float:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def precision(self) -> float:
        """tp / (tp + fp); 0 when nothing was labeled positive."""
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator > 0 else 0.0

    @property
    def recall(self) -> float:
        """tp / (tp + fn); 0 when there are no true positives to find."""
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator > 0 else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (the paper's accuracy metric)."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    @property
    def accuracy(self) -> float:
        """(tp + tn) / total; 0 on an empty matrix."""
        return (self.tp + self.tn) / self.total if self.total > 0 else 0.0

    @property
    def false_positive_rate(self) -> float:
        """fp / (fp + tn); 0 when there are no negatives."""
        denominator = self.fp + self.tn
        return self.fp / denominator if denominator > 0 else 0.0

    def as_dict(self) -> dict:
        """Flat dict of cells and derived metrics (for table rendering)."""
        return {
            "tp": self.tp,
            "fp": self.fp,
            "tn": self.tn,
            "fn": self.fn,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "accuracy": self.accuracy,
        }
