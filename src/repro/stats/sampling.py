"""Deterministic heavy-tail samplers for the demand model.

The paper's demand observations are heavy-tailed at every level: a few
countries dominate global cellular demand (Figure 11), a few ASes
dominate their countries (Figure 7), and a handful of CGN /24s carry
nearly all of an operator's cellular traffic (Figure 8).  These helpers
produce normalized weight vectors with those shapes from a seeded
``random.Random`` so worlds are reproducible.
"""

from __future__ import annotations

import math
import random
from typing import List


def zipf_weights(count: int, exponent: float = 1.0) -> List[float]:
    """Normalized Zipf weights ``1/rank**exponent`` for ranks 1..count.

    >>> weights = zipf_weights(3, exponent=1.0)
    >>> round(weights[0] / weights[2], 2)
    3.0
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    raw = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [value / total for value in raw]


def lognormal_weights(
    rng: random.Random, count: int, sigma: float = 1.5
) -> List[float]:
    """Normalized lognormal weights; larger sigma = heavier skew."""
    if count <= 0:
        raise ValueError("count must be positive")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    raw = [rng.lognormvariate(0.0, sigma) for _ in range(count)]
    total = sum(raw)
    return [value / total for value in raw]


def bounded_pareto(
    rng: random.Random, alpha: float, low: float, high: float
) -> float:
    """One draw from a Pareto distribution truncated to [low, high].

    Uses inverse-transform sampling on the truncated CDF.
    """
    if not 0 < low < high:
        raise ValueError("need 0 < low < high")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    u = rng.random()
    low_pow = low ** alpha
    high_pow = high ** alpha
    denominator = 1.0 - u * (1.0 - low_pow / high_pow)
    return low / (denominator ** (1.0 / alpha))


def dirichlet_like(
    rng: random.Random, base: List[float], concentration: float = 50.0
) -> List[float]:
    """Jitter a normalized weight vector while keeping it normalized.

    Approximates a Dirichlet draw centred on ``base`` using independent
    gamma draws; ``concentration`` controls how tightly samples hug the
    base (higher = tighter).  Used to perturb calibrated country/AS
    shares so repeated worlds are not identical.
    """
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    if not base:
        raise ValueError("base must be non-empty")
    total = sum(base)
    if total <= 0:
        raise ValueError("base weights must sum to a positive value")
    draws = []
    for weight in base:
        shape = max(weight / total, 1e-9) * concentration
        draws.append(rng.gammavariate(shape, 1.0))
    draw_total = sum(draws)
    if draw_total <= 0:  # pathological but possible with tiny shapes
        return [weight / total for weight in base]
    return [value / draw_total for value in draws]


def binomial(rng: random.Random, n: int, p: float) -> int:
    """One Binomial(n, p) draw.

    Exact Bernoulli summation for small n; Poisson approximation for
    rare events; normal approximation for large n -- the generator
    draws one of these per (subnet, browser), so this must not loop
    over millions of trials.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0 <= p <= 1:
        raise ValueError("p must be in [0, 1]")
    if n == 0 or p == 0.0:
        return 0
    if p == 1.0:
        return n
    mean = n * p
    variance = mean * (1.0 - p)
    if n <= 64:
        return sum(1 for _ in range(n) if rng.random() < p)
    if mean <= 12.0:
        # Rare events: Poisson(mean), clipped to n.
        return min(_poisson(rng, mean), n)
    if variance <= 12.0:
        # Rare non-events, mirrored.
        return n - min(_poisson(rng, n - mean), n)
    draw = round(rng.gauss(mean, math.sqrt(variance)))
    return min(max(draw, 0), n)


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's algorithm; fine for the small means used here."""
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def poisson(rng: random.Random, mean: float) -> int:
    """One Poisson(mean) draw, normal-approximated for large means."""
    if mean < 0:
        raise ValueError("mean must be non-negative")
    if mean == 0:
        return 0
    if mean > 64.0:
        return max(0, round(rng.gauss(mean, math.sqrt(mean))))
    return _poisson(rng, mean)


def split_integer(rng: random.Random, total: int, weights: List[float]) -> List[int]:
    """Split integer ``total`` into parts proportional to ``weights``.

    Largest-remainder rounding, so the parts always sum to ``total``
    and every positive weight gets its fair floor first.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if not weights:
        raise ValueError("weights must be non-empty")
    weight_sum = sum(weights)
    if weight_sum <= 0:
        raise ValueError("weights must sum to a positive value")
    exact = [total * weight / weight_sum for weight in weights]
    parts = [int(math.floor(value)) for value in exact]
    remainder = total - sum(parts)
    fractional = sorted(
        range(len(weights)),
        key=lambda index: (exact[index] - parts[index], rng.random()),
        reverse=True,
    )
    for index in fractional[:remainder]:
        parts[index] += 1
    return parts
