"""Streaming ingestion: the census signal as a live stream.

The paper's census is a batch artifact, but its core quantity --
per-/24 and /48 cellular ratios from RUM beacons -- arrives naturally
as a stream.  This package ingests beacon events incrementally and
maintains windowed per-subnet counters whose drained total is
*provably equal* to a batch run over the same events:

- :mod:`repro.stream.windows` -- tumbling / exponentially-decayed
  window state with deterministic, event-count-driven semantics;
- :mod:`repro.stream.engine` -- the ingestion engine: event folding,
  live :class:`~repro.core.ratios.RatioTable` views, atomic snapshots
  for crash-resume;
- :mod:`repro.stream.sources` -- event sources (finite JSONL, tailed
  JSONL, world generator) under the runtime's ingestion policies.

The serving layer (:mod:`repro.serve`) builds its queryable index on
top of this engine.
"""

from repro.stream.engine import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    StreamEngine,
)
from repro.stream.sources import (
    follow_jsonl,
    generated_events,
    jsonl_events,
    skip_events,
)
from repro.stream.windows import (
    SubnetWindowCounts,
    WindowedSubnetState,
    WindowPolicy,
)

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "StreamEngine",
    "SubnetWindowCounts",
    "WindowPolicy",
    "WindowedSubnetState",
    "follow_jsonl",
    "generated_events",
    "jsonl_events",
    "skip_events",
]
