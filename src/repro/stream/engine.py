"""The streaming ingestion engine.

:class:`StreamEngine` consumes beacon events one at a time and
maintains :class:`~repro.stream.windows.WindowedSubnetState`; at any
moment it can emit the same :class:`~repro.core.ratios.RatioTable`
algebra the batch pipeline produces, so every downstream consumer
(classifier, AS filter, confidence intervals, the serving index) works
unchanged on live state.

**Stream == batch.**  Under an exact window policy (``decay == 1``),
draining a finite event stream leaves integer counters identical to
``BeaconDataset.from_hits`` over the same events, so
:meth:`StreamEngine.ratio_table` is *bit-identical* to
``RatioTable.from_beacons`` of a batch run -- the differential test in
``tests/test_stream_differential.py`` pins this for seeds {0, 1}.

**Crash safety.**  :meth:`save_snapshot` writes the full window state
plus the consumed-event offset through
:func:`repro.runtime.checkpoint.atomic_writer`; a ``kill -9`` leaves
either the previous snapshot or the new one, never a torn file.
:meth:`load_snapshot` plus :func:`repro.stream.sources.skip_events`
resumes with no duplicated and no lost counts.
"""

from __future__ import annotations

import json
import logging
import time
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from repro.cdn.logs import BeaconHit
from repro.core.classifier import (
    DEFAULT_THRESHOLD,
    ClassificationResult,
    SubnetClassifier,
)
from repro.core.ratios import RatioRecord, RatioTable
from repro.obs.metrics import MeterCache, instrument
from repro.runtime.checkpoint import atomic_writer
from repro.runtime.faults import fault_point
from repro.runtime.logging import get_logger, log_event
from repro.stream.windows import WindowedSubnetState, WindowPolicy

#: Bump when the snapshot layout changes; mismatched snapshots are
#: rejected instead of misread.
SNAPSHOT_FORMAT_VERSION = 1

_LOG = get_logger("stream.engine")

#: Stream-engine telemetry (``repro.obs``), recorded at window-close /
#: snapshot granularity -- never per event.  ``ingest`` is the hottest
#: loop in the online path; folded events are tallied on the engine
#: and flushed to the global counter only when a window closes or a
#: snapshot is cut, so steady-state ingest pays a plain integer add.
_STREAM_METER = MeterCache(
    lambda: (
        instrument(
            "counter", "stream_events_total",
            "beacon events folded into windowed state",
        ),
        instrument(
            "counter", "stream_window_advances_total",
            "windows closed into the aggregate",
        ),
        instrument(
            "gauge", "stream_tracked_subnets",
            "subnets with live window state",
        ),
        instrument(
            "histogram", "stream_snapshot_seconds",
            "wall time of atomic snapshot writes",
        ),
        instrument(
            "gauge", "stream_window_lag_events",
            "open-window fill at the last metrics flush (a window "
            "that stops closing shows a climbing lag here)",
        ),
    )
)


class SnapshotError(RuntimeError):
    """A snapshot file is unreadable or from an incompatible engine."""


class StreamEngine:
    """Incremental beacon ingestion with windowed per-subnet state."""

    def __init__(
        self,
        policy: Optional[WindowPolicy] = None,
        month: Optional[str] = None,
    ) -> None:
        self.state = WindowedSubnetState(policy)
        #: Collection month, pinned by the first event when not given.
        self.month = month
        #: Accepted events folded into state (the resume offset).
        self.events_consumed = 0
        #: Events already flushed to the global counter (obs batching).
        self._events_flushed = 0
        #: Optional census drift monitor (attach_monitor).
        self.monitor = None
        #: Optional :class:`repro.obs.resources.LeakDrill` -- retains
        #: ballast at each window close so the rss-growth alert can be
        #: exercised end to end (process state, like ``monitor``).
        self.leak_drill = None

    @property
    def policy(self) -> WindowPolicy:
        return self.state.policy

    def attach_monitor(self, monitor) -> None:
        """Hook a census drift monitor at the window-close boundary.

        ``monitor`` is a :class:`repro.obs.health.CensusDriftMonitor`
        (anything with ``on_window_close(window_seq, window_counts)``).
        Scoring happens only when a window closes -- never per event --
        so the ingest hot path is untouched.  Monitors are process
        state, not window state: a snapshot-resumed engine needs the
        monitor re-attached.
        """
        self.monitor = monitor
        self.state.on_advance = (
            None if monitor is None else monitor.on_window_close
        )

    @property
    def windows_advanced(self) -> int:
        return self.state.windows_closed

    # ---- ingestion -------------------------------------------------------

    def ingest(self, hit: BeaconHit) -> bool:
        """Fold one event in; returns True when a window just closed."""
        if self.month is None:
            self.month = hit.month
        elif hit.month != self.month:
            raise ValueError(
                f"event from {hit.month} in a {self.month} stream"
            )
        closed = self.state.observe(
            subnet=hit.subnet,
            asn=hit.asn,
            country=hit.country,
            api_enabled=hit.api_enabled,
            cellular_labeled=hit.is_cellular_labeled,
        )
        self.events_consumed += 1
        if closed:
            if self.leak_drill is not None:
                self.leak_drill.on_window_close()
            self._flush_metrics(window_closed=True)
            log_event(
                _LOG, logging.DEBUG, "window.advance",
                windows=self.state.windows_closed,
                events=self.events_consumed,
                subnets=self.state.subnet_count(),
            )
        return closed

    def _flush_metrics(self, window_closed: bool = False) -> None:
        """Fold batched event counts + live gauges into the registry."""
        events, advances, subnets, _snapshot, lag = _STREAM_METER.resolve()
        pending = self.events_consumed - self._events_flushed
        if pending > 0:
            events.inc(pending)
            self._events_flushed = self.events_consumed
        if window_closed:
            advances.inc()
        subnets.set(self.state.subnet_count())
        lag.set(self.state.window_fill)

    def ingest_many(self, events: Iterable[BeaconHit]) -> int:
        """Drain an event iterable; returns how many were folded in."""
        count = 0
        for hit in events:
            self.ingest(hit)
            count += 1
        return count

    # ---- live views ------------------------------------------------------

    def ratio_table(self, min_api_hits: int = 1) -> RatioTable:
        """The live :class:`RatioTable` (aggregate + open window).

        Same record filter as ``RatioTable.from_beacons``: subnets
        with fewer than ``min_api_hits`` API hits are dropped.
        """
        if min_api_hits < 1:
            raise ValueError("min_api_hits must be >= 1")
        return RatioTable(
            RatioRecord(
                subnet=subnet,
                asn=counts.asn,
                country=counts.country,
                api_hits=counts.api_hits,
                cellular_hits=counts.cellular_hits,
                hits=counts.hits,
            )
            for subnet, counts in self.state.combined()
            if counts.api_hits >= min_api_hits
        )

    def classification(
        self,
        threshold: float = DEFAULT_THRESHOLD,
        min_api_hits: int = 1,
    ) -> ClassificationResult:
        """Threshold labels over the live ratio table."""
        classifier = SubnetClassifier(
            threshold=threshold, min_api_hits=min_api_hits
        )
        return classifier.classify(self.ratio_table(min_api_hits))

    def hits_by_asn(self) -> Dict[int, float]:
        return self.state.hits_by_asn()

    def subnet_count(self) -> int:
        return self.state.subnet_count()

    # ---- snapshots -------------------------------------------------------

    def to_snapshot(self) -> Dict:
        return {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "month": self.month,
            "events_consumed": self.events_consumed,
            "state": self.state.to_snapshot(),
        }

    def save_snapshot(self, path: Union[str, Path]) -> Path:
        """Atomically persist engine state (kill-9 safe)."""
        path = Path(path)
        started = time.perf_counter()
        with atomic_writer(path) as stream:
            json.dump(self.to_snapshot(), stream, separators=(",", ":"))
        # Chaos hook: tear the file *after* the atomic rename, modeling
        # media corruption that load_snapshot must detect (not crash on).
        fault_point("stream.snapshot", path=path)
        _STREAM_METER.resolve()[3].observe(time.perf_counter() - started)
        self._flush_metrics()
        log_event(
            _LOG, logging.INFO, "snapshot.saved",
            path=path, events=self.events_consumed,
            windows=self.windows_advanced,
        )
        return path

    @classmethod
    def from_snapshot(cls, raw: Dict) -> "StreamEngine":
        version = raw.get("format_version")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot format {version!r} != {SNAPSHOT_FORMAT_VERSION}"
            )
        engine = cls.__new__(cls)
        engine.state = WindowedSubnetState.from_snapshot(raw["state"])
        engine.month = raw["month"]
        engine.events_consumed = raw["events_consumed"]
        # Monitors and leak drills are process state, not snapshot
        # state; re-attach (attach_monitor / leak_drill) after resume.
        engine.monitor = None
        engine.leak_drill = None
        # Events restored from a snapshot were counted by the process
        # that consumed them; this process's counter starts at the
        # resume offset so totals reflect work done *here*.
        engine._events_flushed = engine.events_consumed
        return engine

    @classmethod
    def load_snapshot(cls, path: Union[str, Path]) -> "StreamEngine":
        path = Path(path)
        try:
            raw = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise SnapshotError(f"unreadable snapshot {path}: {exc}") from exc
        if not isinstance(raw, dict):
            raise SnapshotError(f"snapshot {path} is not a JSON object")
        try:
            engine = cls.from_snapshot(raw)
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed snapshot {path}: {exc}") from exc
        log_event(
            _LOG, logging.INFO, "snapshot.loaded",
            path=path, events=engine.events_consumed,
            windows=engine.windows_advanced,
        )
        return engine

    @classmethod
    def resume_or_start(
        cls,
        snapshot_path: Optional[Union[str, Path]],
        policy: Optional[WindowPolicy] = None,
    ) -> "StreamEngine":
        """Load the snapshot when present, else a fresh engine.

        A resumed engine keeps the *snapshot's* window policy: mixing
        policies mid-stream would silently change semantics, so a
        caller-supplied policy that disagrees raises.
        """
        if snapshot_path is not None and Path(snapshot_path).exists():
            engine = cls.load_snapshot(snapshot_path)
            if policy is not None and policy != engine.policy:
                raise SnapshotError(
                    f"snapshot window policy {engine.policy} != requested "
                    f"{policy}; delete the snapshot to change policy"
                )
            return engine
        return cls(policy=policy)
