"""Beacon event sources for the streaming engine.

Three ways events arrive, all yielding
:class:`~repro.cdn.logs.BeaconHit` records:

- :func:`jsonl_events` -- a finite JSONL stream (file or stdin);
- :func:`follow_jsonl` -- tail a growing JSONL file (``tail -f``
  semantics with a bounded idle budget so tests and drains terminate);
- :func:`generated_events` -- the synthetic world's hit-level
  generator, for self-contained demos and benchmarks.

Malformed lines are governed by the same
:class:`~repro.runtime.policies.IngestPolicy` machinery as batch
ingestion -- strict / skip / quarantine with error budgets -- so the
online path degrades exactly like the offline one.

:func:`skip_events` implements resume-after-crash: a snapshot records
how many events were consumed, and the restarted source discards
exactly that many *accepted* events before handing over new ones.
Rejected lines do not count -- quarantine decisions are deterministic,
so both runs reject the same lines and the offset stays aligned.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import IO, Iterable, Iterator, Optional, Union

from repro.cdn.logs import BeaconHit, read_jsonl
from repro.runtime.policies import IngestPolicy


def jsonl_events(
    stream: IO[str],
    policy: Optional[IngestPolicy] = None,
    start_line: int = 1,
) -> Iterator[BeaconHit]:
    """Parse a finite JSONL stream of beacon hits under ``policy``."""
    return read_jsonl(
        stream, BeaconHit, policy=policy, start_line=start_line
    )


def follow_jsonl(
    path: Union[str, Path],
    policy: Optional[IngestPolicy] = None,
    poll_interval_s: float = 0.05,
    idle_polls: Optional[int] = 20,
) -> Iterator[BeaconHit]:
    """Tail a growing JSONL file of beacon hits.

    On end-of-file the reader sleeps ``poll_interval_s`` and retries;
    after ``idle_polls`` consecutive empty polls it stops (pass
    ``None`` to follow forever).  Partial trailing lines (a writer
    mid-append) are left in the file until a newline completes them.
    """
    if policy is None:
        policy = IngestPolicy.strict()
    path = Path(path)
    line_no = 0
    idle = 0
    try:
        with path.open() as stream:
            buffer = ""
            while True:
                chunk = stream.readline()
                if chunk:
                    buffer += chunk
                    if not buffer.endswith("\n"):
                        continue  # incomplete line; wait for the rest
                    line, buffer = buffer, ""
                    idle = 0
                    line_no += 1
                    stripped = line.strip()
                    if not stripped:
                        continue
                    try:
                        record = BeaconHit.from_json(stripped)
                    except Exception as exc:  # noqa: BLE001 -- policy decides
                        from repro.runtime.policies import line_error

                        policy.reject(
                            line_error(line_no, "BeaconHit", stripped, exc),
                            line,
                        )
                        continue
                    policy.accept()
                    yield record
                else:
                    idle += 1
                    if idle_polls is not None and idle >= idle_polls:
                        policy.finish()
                        return
                    time.sleep(poll_interval_s)
    finally:
        # Covers early generator close (drains, tests): fold the tail
        # batch of accepted-line counts into the global counters.
        policy.flush_metrics()


def generated_events(
    world, config=None
) -> Iterator[BeaconHit]:
    """Hit-level events from the synthetic world (demo / bench source)."""
    from repro.cdn.beacon import BeaconGenerator

    return BeaconGenerator(world, config).iter_hits()


def skip_events(
    events: Iterable[BeaconHit], count: int
) -> Iterator[BeaconHit]:
    """Drop the first ``count`` accepted events (snapshot resume)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    iterator = iter(events)
    skipped = 0
    for _ in range(count):
        try:
            next(iterator)
        except StopIteration:
            raise ValueError(
                f"cannot resume: stream ended after {skipped} events, "
                f"snapshot consumed {count}"
            ) from None
        skipped += 1
    return iterator
