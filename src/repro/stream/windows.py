"""Windowed per-subnet counter state for the streaming engine.

The batch pipeline sees one month of beacons at once; the online
engine sees them one at a time.  State is organised as an *open
window* of integer per-subnet counters plus a *closed aggregate* that
absorbs each window when it closes:

    aggregate <- aggregate * decay + window

- ``decay == 1.0`` is a **tumbling accumulate**: integer counters add
  exactly, so a drained stream holds precisely the counts a batch run
  over the same events would -- the stream/batch differential test
  rests on this.
- ``decay < 1.0`` is an **exponentially decayed** view: each window
  advance multiplies history by ``decay``, so old evidence fades with
  a half-life of ``ln(0.5)/ln(decay)`` windows.  Counters become
  floats, deliberately and visibly.

Windows advance on *event count* (every ``window_events`` ingested
events), never on wall clock: replaying the same event sequence yields
bit-identical state on any machine at any speed -- the deterministic,
seed-stable semantics the differential and crash-resume tests need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.prefix import Prefix

#: Number -- int under tumbling accumulation, float once decayed.
Count = float


@dataclass
class SubnetWindowCounts:
    """Mutable per-subnet counters (mirrors ``SubnetBeaconCounts``).

    Metadata (``asn``, ``country``) is pinned by the first event for
    the subnet, exactly like ``BeaconDataset.observe_hit``.
    """

    asn: int
    country: str
    hits: Count = 0
    api_hits: Count = 0
    cellular_hits: Count = 0

    def observe(self, api_enabled: bool, cellular_labeled: bool) -> None:
        self.hits += 1
        if api_enabled:
            self.api_hits += 1
            if cellular_labeled:
                self.cellular_hits += 1
        elif cellular_labeled:
            raise ValueError("cellular label without API data")

    def scaled(self, factor: float) -> "SubnetWindowCounts":
        return SubnetWindowCounts(
            asn=self.asn,
            country=self.country,
            hits=self.hits * factor,
            api_hits=self.api_hits * factor,
            cellular_hits=self.cellular_hits * factor,
        )

    def add(self, other: "SubnetWindowCounts") -> None:
        """Fold ``other`` in; metadata must agree (first writer wins)."""
        if (self.asn, self.country) != (other.asn, other.country):
            raise ValueError(
                f"conflicting subnet metadata: AS{self.asn}/{self.country} "
                f"vs AS{other.asn}/{other.country}"
            )
        self.hits += other.hits
        self.api_hits += other.api_hits
        self.cellular_hits += other.cellular_hits

    def as_row(self) -> List:
        return [self.asn, self.country, self.hits, self.api_hits,
                self.cellular_hits]


@dataclass(frozen=True)
class WindowPolicy:
    """Deterministic window semantics.

    ``window_events`` -- events per window (the tumbling size).
    ``decay`` -- multiplier applied to the closed aggregate at each
    window advance; 1.0 accumulates exactly (stream == batch).
    """

    window_events: int = 10_000
    decay: float = 1.0

    def __post_init__(self) -> None:
        if self.window_events < 1:
            raise ValueError("window_events must be >= 1")
        if not 0 < self.decay <= 1:
            raise ValueError("decay must be in (0, 1]")

    @property
    def is_exact(self) -> bool:
        """True when a drained stream equals the batch aggregate."""
        return self.decay == 1.0


class WindowedSubnetState:
    """Open window + decayed aggregate over per-subnet counters."""

    def __init__(self, policy: Optional[WindowPolicy] = None) -> None:
        self.policy = policy or WindowPolicy()
        #: Events in the currently open window.
        self.window_fill = 0
        #: Total windows closed so far.
        self.windows_closed = 0
        self._window: Dict[Prefix, SubnetWindowCounts] = {}
        self._aggregate: Dict[Prefix, SubnetWindowCounts] = {}
        #: Optional observer called at the top of :meth:`advance` with
        #: ``(window_seq, window_counts)`` -- the *closing* window's raw
        #: counters before they are folded into the (possibly decayed)
        #: aggregate.  The census drift monitor
        #: (:class:`repro.obs.health.CensusDriftMonitor`) hangs here.
        self.on_advance = None

    # ---- ingestion -------------------------------------------------------

    def observe(
        self,
        subnet: Prefix,
        asn: int,
        country: str,
        api_enabled: bool,
        cellular_labeled: bool,
    ) -> bool:
        """Fold one event in; returns True when a window just closed."""
        counts = self._window.get(subnet)
        if counts is None:
            counts = SubnetWindowCounts(asn=asn, country=country)
            self._window[subnet] = counts
        counts.observe(api_enabled, cellular_labeled)
        self.window_fill += 1
        if self.window_fill >= self.policy.window_events:
            self.advance()
            return True
        return False

    def advance(self) -> None:
        """Close the open window into the aggregate (decay applies)."""
        if self.on_advance is not None:
            # Observe-before-fold: the monitor sees the closing
            # window's fresh evidence, untouched by decay or history.
            self.on_advance(self.windows_closed + 1, self._window)
        decay = self.policy.decay
        if decay != 1.0:
            for subnet in list(self._aggregate):
                self._aggregate[subnet] = self._aggregate[subnet].scaled(decay)
        for subnet, counts in self._window.items():
            current = self._aggregate.get(subnet)
            if current is None:
                # Copy: the window dict is cleared and reused.
                self._aggregate[subnet] = SubnetWindowCounts(
                    asn=counts.asn,
                    country=counts.country,
                    hits=counts.hits,
                    api_hits=counts.api_hits,
                    cellular_hits=counts.cellular_hits,
                )
            else:
                current.add(counts)
        self._window.clear()
        self.window_fill = 0
        self.windows_closed += 1

    # ---- views -----------------------------------------------------------

    def combined(self) -> Iterator[Tuple[Prefix, SubnetWindowCounts]]:
        """Aggregate plus open window, one summed row per subnet.

        Rows come out in canonical subnet order (family, value,
        length) so downstream tables are deterministic regardless of
        event arrival order.
        """
        merged: Dict[Prefix, SubnetWindowCounts] = {}
        for source in (self._aggregate, self._window):
            for subnet, counts in source.items():
                current = merged.get(subnet)
                if current is None:
                    merged[subnet] = SubnetWindowCounts(
                        asn=counts.asn,
                        country=counts.country,
                        hits=counts.hits,
                        api_hits=counts.api_hits,
                        cellular_hits=counts.cellular_hits,
                    )
                else:
                    current.add(counts)
        for subnet in sorted(
            merged, key=lambda s: (s.family, s.value, s.length)
        ):
            yield subnet, merged[subnet]

    def subnet_count(self) -> int:
        keys = set(self._aggregate)
        keys.update(self._window)
        return len(keys)

    def hits_by_asn(self) -> Dict[int, Count]:
        """Live per-AS hit totals (AS filter rule 2 input)."""
        totals: Dict[int, Count] = {}
        for _subnet, counts in self.combined():
            totals[counts.asn] = totals.get(counts.asn, 0) + counts.hits
        return totals

    # ---- snapshot round-trip ---------------------------------------------

    def to_snapshot(self) -> Dict:
        """JSON-shaped state (exact: ints stay ints under decay=1)."""

        def rows(table: Dict[Prefix, SubnetWindowCounts]) -> List[List]:
            return [
                [s.family, s.value, s.length] + table[s].as_row()
                for s in sorted(
                    table, key=lambda s: (s.family, s.value, s.length)
                )
            ]

        return {
            "policy": {
                "window_events": self.policy.window_events,
                "decay": self.policy.decay,
            },
            "window_fill": self.window_fill,
            "windows_closed": self.windows_closed,
            "window": rows(self._window),
            "aggregate": rows(self._aggregate),
        }

    @classmethod
    def from_snapshot(cls, raw: Dict) -> "WindowedSubnetState":
        policy = WindowPolicy(
            window_events=raw["policy"]["window_events"],
            decay=raw["policy"]["decay"],
        )
        state = cls(policy)
        state.window_fill = raw["window_fill"]
        state.windows_closed = raw["windows_closed"]

        def fill(
            rows: List[List], table: Dict[Prefix, SubnetWindowCounts]
        ) -> None:
            for family, value, length, asn, country, hits, api, cell in rows:
                table[Prefix(family, value, length)] = SubnetWindowCounts(
                    asn=asn, country=country, hits=hits,
                    api_hits=api, cellular_hits=cell,
                )

        fill(raw["window"], state._window)
        fill(raw["aggregate"], state._aggregate)
        return state
