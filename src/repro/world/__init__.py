"""Synthetic global Internet: the world the CDN substrate observes.

The paper measures the real Internet through Akamai's platform.  We
cannot, so this package generates a parameterized world whose
*distributional* properties are calibrated from the paper's published
aggregates (DESIGN.md section 6):

- :mod:`repro.world.geo` -- continents, countries, ITU-style subscriber
  counts, and coordinates for the DNS distance analyses.
- :mod:`repro.world.profiles` -- the per-country calibration table
  (demand shares, cellular fractions, AS counts, IPv6 deployment,
  public-DNS adoption).
- :mod:`repro.world.topology` -- AS generation: dedicated and mixed
  carriers, fixed-line ISPs, transit/content/cloud/proxy networks, and
  background ASes filling out the registry.
- :mod:`repro.world.allocation` -- prefix allocation: per-AS address
  blocks, active /24 and /48 subnets with hidden truth labels and
  heavy-tailed demand weights (CGN concentration).
- :mod:`repro.world.population` -- device/browser population and the
  Network Information API adoption timeline (Figure 1).
- :mod:`repro.world.build` -- ties it together into a :class:`World`.

Everything downstream (beacons, demand logs, DNS) is generated *from*
the world; the identification pipeline then has to recover the planted
structure without peeking at truth labels.
"""

from repro.world.build import World, WorldParams, build_world
from repro.world.geo import (
    CONTINENT_NAMES,
    Continent,
    Country,
    Geography,
    default_geography,
    haversine_km,
)
from repro.world.profiles import CountryProfile, default_profiles

__all__ = [
    "CONTINENT_NAMES",
    "Continent",
    "Country",
    "CountryProfile",
    "Geography",
    "World",
    "WorldParams",
    "build_world",
    "default_geography",
    "default_profiles",
    "haversine_km",
]
