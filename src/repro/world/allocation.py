"""Prefix allocation: turning AS plans into concrete /24 and /48 subnets.

Every subnet carries the hidden truth label (cellular / fixed-line), a
demand weight (fraction of global demand), and the beacon behaviour
parameters that drive the Network Information API noise model:

- ``cellular_label_rate`` -- probability an API-enabled beacon hit from
  the subnet reports ``cellular``.  In truly cellular subnets this is
  1 minus the tethering/hotspot rate (section 3.1's dominant noise
  source); in fixed subnets it is the small interface-change noise.
- ``beacon_coverage`` -- probability the subnet emits beacons at all;
  the BEACON dataset only covers 73% of DEMAND subnets but 92% of
  demand (section 3.2), so low-demand subnets lose coverage first.
  Terminating-proxy subnets have demand but no beacons (section 6.1).

Demand concentration follows the paper's observations: a handful of
CGN /24s carry ~99% of a carrier's cellular demand (Figure 8), while
fixed-line demand decays gradually; dedicated carriers also hold many
near-zero-demand subnets (Figure 6a).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.asn import ASType
from repro.net.prefix import Prefix
from repro.stats.sampling import split_integer, zipf_weights
from repro.world.geo import Continent, Geography
from repro.world.profiles import (
    ACTIVE_SLASH24_BY_CONTINENT,
    ACTIVE_SLASH48_BY_CONTINENT,
    CELLULAR_SLASH24_BY_CONTINENT,
    CELLULAR_SLASH48_BY_CONTINENT,
    CountryProfile,
)
from repro.world.topology import ASPlan, Topology


@dataclass(frozen=True)
class AllocationModel:
    """Knobs of the cellular/fixed demand-and-noise model.

    Defaults reproduce the paper's observations; alternative instances
    express counterfactuals (``no_cgn`` flattens cellular demand, for
    ablating how much of the paper's concentration findings are CGN
    artifacts).
    """

    #: Fraction of a carrier's cellular subnets that are hot CGN blocks.
    hot_fraction: float = 0.08
    #: Share of cellular demand carried by the hot set.
    hot_share_dedicated: float = 0.95
    hot_share_mixed: float = 0.993
    hot_zipf_exponent: float = 1.6
    #: Tethering-diluted label range of hot blocks (Figure 6a).
    hot_label_low: float = 0.75
    hot_label_high: float = 0.93
    #: Near-pure label range of the cold tail.
    cold_label_low: float = 0.93
    cold_label_high: float = 1.0
    #: Probability a cold block carries zero demand / emits no beacons.
    cold_zero_demand: float = 0.5
    cold_no_coverage: float = 0.35
    #: Zipf exponent of fixed-line subnet demand (flat decay).
    fixed_zipf_exponent: float = 0.55

    def __post_init__(self) -> None:
        if not 0 < self.hot_fraction <= 1:
            raise ValueError("hot_fraction must be in (0, 1]")
        for name in ("hot_share_dedicated", "hot_share_mixed",
                     "cold_zero_demand", "cold_no_coverage"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1]")
        for low, high in (
            (self.hot_label_low, self.hot_label_high),
            (self.cold_label_low, self.cold_label_high),
        ):
            if not 0 <= low <= high <= 1:
                raise ValueError("label ranges must satisfy 0<=low<=high<=1")
        if self.hot_label_low < 0.5:
            raise ValueError(
                "hot labels below 0.5 would break the majority rule"
            )

    @classmethod
    def no_cgn(cls) -> "AllocationModel":
        """Counterfactual: cellular demand as flat as fixed-line demand."""
        return cls(
            hot_fraction=1.0,
            hot_share_dedicated=1.0,
            hot_share_mixed=1.0,
            hot_zipf_exponent=0.55,
        )


@dataclass(frozen=True)
class SubnetPlan:
    """One active /24 or /48 with hidden truth and beacon behaviour."""

    prefix: Prefix
    asn: int
    country: str
    is_cellular: bool
    demand_weight: float
    cellular_label_rate: float
    beacon_coverage: float = 1.0
    proxy_like: bool = False

    @property
    def family(self) -> int:
        return self.prefix.family


@dataclass
class AllocationPlan:
    """All allocated subnets plus lookup indices."""

    subnets: List[SubnetPlan] = field(default_factory=list)
    by_prefix: Dict[Prefix, SubnetPlan] = field(default_factory=dict)
    by_asn: Dict[int, List[SubnetPlan]] = field(default_factory=dict)

    def add(self, plan: SubnetPlan) -> None:
        if plan.prefix in self.by_prefix:
            raise ValueError(f"duplicate subnet {plan.prefix}")
        self.subnets.append(plan)
        self.by_prefix[plan.prefix] = plan
        self.by_asn.setdefault(plan.asn, []).append(plan)

    def of_family(self, family: int) -> List[SubnetPlan]:
        return [s for s in self.subnets if s.family == family]

    def cellular_subnets(self, family: Optional[int] = None) -> List[SubnetPlan]:
        return [
            s
            for s in self.subnets
            if s.is_cellular and (family is None or s.family == family)
        ]

    def total_demand(self) -> float:
        return sum(s.demand_weight for s in self.subnets)


class _AddressAllocator:
    """Hands out non-overlapping per-AS blocks of /24s and /48s."""

    def __init__(self) -> None:
        # IPv4 /16 blocks starting at 1.0.0.0; IPv6 /32s under 2a00::/12.
        self._next_slash16 = 1 << 24
        self._next_slash32 = 0x2A00 << 112

    def take_slash24s(self, count: int) -> List[Prefix]:
        """Allocate ``count`` consecutive /24s from fresh /16 blocks."""
        blocks_needed = max(1, math.ceil(count / 256))
        base = self._next_slash16
        self._next_slash16 += blocks_needed << 16
        return [Prefix(4, base + (index << 8), 24) for index in range(count)]

    def take_slash48s(self, count: int) -> List[Prefix]:
        """Allocate ``count`` consecutive /48s from fresh /32 blocks."""
        blocks_needed = max(1, math.ceil(count / 65536))
        base = self._next_slash32
        self._next_slash32 += blocks_needed << 96
        return [Prefix(6, base + (index << 80), 48) for index in range(count)]


def build_allocation(
    geography: Geography,
    profiles: Dict[str, CountryProfile],
    topology: Topology,
    scale: float = 0.01,
    seed: int = 0,
    model: Optional[AllocationModel] = None,
) -> AllocationPlan:
    """Allocate all active subnets of the world at the given scale.

    ``scale`` multiplies the full-scale continent subnet totals; 1.0
    reproduces the paper's absolute counts (4.8M active /24s), the
    default 0.01 keeps worlds laptop-sized while preserving fractions.
    """
    if not 0 < scale <= 1:
        raise ValueError("scale must be in (0, 1]")
    model = model or AllocationModel()
    plan = AllocationPlan()
    allocator = _AddressAllocator()
    rng = random.Random(f"{seed}:allocation")

    cell24 = _country_counts(
        geography, profiles, CELLULAR_SLASH24_BY_CONTINENT, scale,
        weight=lambda c, p: geography.get(c).subscribers_m,
    )
    fixed24 = _country_counts(
        geography, profiles,
        _subtract(ACTIVE_SLASH24_BY_CONTINENT, CELLULAR_SLASH24_BY_CONTINENT),
        scale,
        weight=lambda c, p: max(p.demand_share, 0.01),
    )
    cell48 = _country_counts(
        geography, profiles, CELLULAR_SLASH48_BY_CONTINENT, scale,
        weight=lambda c, p: p.ipv6_as_count * math.sqrt(
            geography.get(c).subscribers_m + 1.0
        ),
    )
    fixed48 = _country_counts(
        geography, profiles,
        _subtract(ACTIVE_SLASH48_BY_CONTINENT, CELLULAR_SLASH48_BY_CONTINENT),
        scale,
        weight=lambda c, p: max(p.demand_share, 0.01),
    )

    for iso2 in sorted(profiles):
        country_rng = random.Random(f"{seed}:allocation:{iso2}")
        _allocate_country(
            plan,
            allocator,
            country_rng,
            topology,
            iso2,
            cell24.get(iso2, 0),
            fixed24.get(iso2, 0),
            cell48.get(iso2, 0),
            fixed48.get(iso2, 0),
            model,
        )

    _allocate_special_ases(plan, allocator, rng, topology, scale)
    _allocate_background(plan, allocator, rng, topology)
    return plan


def _subtract(totals: Dict, minus: Dict) -> Dict:
    return {key: max(totals[key] - minus.get(key, 0), 0) for key in totals}


def _country_counts(
    geography: Geography,
    profiles: Dict[str, CountryProfile],
    continent_totals: Dict[Continent, int],
    scale: float,
    weight,
) -> Dict[str, int]:
    """Split scaled continent subnet totals across profiled countries."""
    counts: Dict[str, int] = {}
    rng = random.Random("country-counts")
    for continent, total in continent_totals.items():
        scaled_total = round(total * scale)
        members = [
            iso2
            for iso2, profile in profiles.items()
            if iso2 in geography
            and geography.get(iso2).continent is continent
        ]
        if not members or scaled_total <= 0:
            continue
        weights = [max(weight(iso2, profiles[iso2]), 1e-9) for iso2 in members]
        parts = split_integer(rng, scaled_total, weights)
        for iso2, part in zip(members, parts):
            counts[iso2] = part
    return counts


def _allocate_country(
    plan: AllocationPlan,
    allocator: _AddressAllocator,
    rng: random.Random,
    topology: Topology,
    iso2: str,
    n_cell24: int,
    n_fixed24: int,
    n_cell48: int,
    n_fixed48: int,
    model: AllocationModel,
) -> None:
    country_plans = topology.plans_in_country(iso2)
    cellular = [p for p in country_plans if p.record.is_cellular]
    fixed_isps = [
        p for p in country_plans if p.record.as_type is ASType.FIXED_ACCESS
    ]
    mixed = [
        p for p in cellular if p.record.as_type is ASType.CELLULAR_MIXED
    ]

    # Decide IPv6 subnet counts up front so the IPv4 pass knows which
    # carriers really carry IPv6 traffic (demand is split only then).
    cell48_parts: Dict[int, int] = {}
    ipv6_cellular = [p for p in cellular if p.ipv6_deployed]
    if ipv6_cellular:
        weights = [max(p.cellular_demand, 1e-12) for p in ipv6_cellular]
        for carrier, count in zip(
            ipv6_cellular, split_integer(rng, max(n_cell48, 0), weights)
        ):
            # Every IPv6-deployed carrier announces at least one /48,
            # even when a small continent's scaled quota rounds away.
            cell48_parts[carrier.asn] = max(count, 1)

    fixed48_parts: Dict[int, int] = {}
    ipv6_fixed = [p for p in fixed_isps if p.ipv6_deployed]
    if not ipv6_fixed and fixed_isps and n_fixed48 > 0:
        # Nobody rolled IPv6: the country's /48s still exist somewhere,
        # so hand them to the largest fixed ISP.
        ipv6_fixed = [max(fixed_isps, key=lambda p: p.fixed_demand)]
    if ipv6_fixed and n_fixed48 > 0:
        weights = [max(p.fixed_demand, 1e-12) for p in ipv6_fixed]
        for holder, count in zip(
            ipv6_fixed, split_integer(rng, n_fixed48, weights)
        ):
            fixed48_parts[holder.asn] = count

    if cellular:
        # Even when a small country's scaled quota rounds to zero,
        # every carrier holds at least two active cellular /24s.
        weights = [
            max(p.cellular_demand, 1e-12) ** 0.6 for p in cellular
        ]
        parts = split_integer(rng, max(n_cell24, 0), weights)
        for carrier, count in zip(cellular, parts):
            _allocate_cellular_subnets(
                plan, allocator, rng, carrier, max(count, 2), family=4,
                has_ipv6=cell48_parts.get(carrier.asn, 0) > 0, model=model,
            )

    if n_fixed24 > 0 and (fixed_isps or mixed):
        recipients = fixed_isps + mixed
        weights = [max(p.fixed_demand, 1e-12) for p in recipients]
        parts = split_integer(rng, n_fixed24, weights)
        for holder, count in zip(recipients, parts):
            # Mixed carriers always hold substantial fixed-line space:
            # their cellular subnets are a thin slice of the AS
            # (Figures 5 and 6b), even for small operators.
            floor = 6 if holder.record.is_cellular else 1
            _allocate_fixed_subnets(
                plan, allocator, rng, holder, max(count, floor), family=4,
                has_ipv6=fixed48_parts.get(holder.asn, 0) > 0, model=model,
            )

    for carrier in ipv6_cellular:
        count = cell48_parts.get(carrier.asn, 0)
        if count > 0:
            _allocate_cellular_subnets(
                plan, allocator, rng, carrier, count, family=6,
                has_ipv6=True, model=model,
            )
    for holder in ipv6_fixed:
        count = fixed48_parts.get(holder.asn, 0)
        if count > 0:
            _allocate_fixed_subnets(
                plan, allocator, rng, holder, count, family=6,
                has_ipv6=True, model=model,
            )


#: Fraction of demand carried over IPv6 when deployed.  Cellular IPv6
#: carries less of its carriers' demand than fixed-line IPv6 does:
#: globally only 6.4% of IPv6 demand sits in high-cellular-ratio
#: subnets (Figure 2) even though U.S. carriers deploy IPv6 widely.
_IPV6_CELLULAR_DEMAND_SHARE = 0.10
_IPV6_FIXED_DEMAND_SHARE = 0.32


def _demand_split(
    carrier: ASPlan, family: int, cellular: bool, has_ipv6: bool
) -> float:
    """Demand of the carrier attributable to this family and class.

    ``has_ipv6`` must reflect whether the carrier actually received /48
    subnets, so no demand is diverted to a family that has no blocks.
    """
    base = carrier.cellular_demand if cellular else carrier.fixed_demand
    if not has_ipv6:
        return base if family == 4 else 0.0
    share = (
        _IPV6_CELLULAR_DEMAND_SHARE if cellular else _IPV6_FIXED_DEMAND_SHARE
    )
    if family == 6:
        return base * share
    return base * (1.0 - share)


def _allocate_cellular_subnets(
    plan: AllocationPlan,
    allocator: _AddressAllocator,
    rng: random.Random,
    carrier: ASPlan,
    count: int,
    family: int,
    has_ipv6: bool = False,
    model: AllocationModel = AllocationModel(),
) -> None:
    """Allocate a carrier's cellular subnets with CGN demand concentration.

    A small "hot" set (CGN egress blocks) carries ~99% of the carrier's
    cellular demand with moderate tethering noise (ratio 0.7-0.95);
    the long cold tail is nearly pure cellular but nearly demandless
    (Figure 6a); and dedicated carriers additionally hold low-demand
    non-cellular infrastructure blocks.
    """
    prefixes = (
        allocator.take_slash24s(count)
        if family == 4
        else allocator.take_slash48s(count)
    )
    demand = _demand_split(carrier, family, cellular=True, has_ipv6=has_ipv6)
    n_hot = max(1, round(model.hot_fraction * count))
    # Mixed operators concentrate essentially all cellular demand in
    # their CGN blocks (99.3% in 25 subnets, Figure 8); dedicated
    # carriers leave a ~5% tail on their cold blocks, which is why
    # about half of their near-pure subnets still show *some* demand
    # (Figure 6a).
    dedicated = carrier.record.as_type is ASType.CELLULAR_DEDICATED
    hot_share = (
        model.hot_share_dedicated if dedicated else model.hot_share_mixed
    )
    hot_weights = zipf_weights(n_hot, exponent=model.hot_zipf_exponent)
    n_cold = count - n_hot
    cold_weights = zipf_weights(n_cold, exponent=1.0) if n_cold else []

    for index, prefix in enumerate(prefixes):
        if index < n_hot:
            subnet_demand = demand * hot_share * hot_weights[index]
            # CGN egresses are diluted by tethering.
            label_rate = rng.uniform(model.hot_label_low, model.hot_label_high)
            coverage = 1.0 if rng.random() > 0.02 else 0.0
        else:
            subnet_demand = demand * (1 - hot_share) * cold_weights[index - n_hot]
            if rng.random() < model.cold_zero_demand:
                subnet_demand = 0.0
            label_rate = rng.uniform(model.cold_label_low, model.cold_label_high)
            coverage = 1.0 if rng.random() > model.cold_no_coverage else 0.0
        plan.add(
            SubnetPlan(
                prefix=prefix,
                asn=carrier.asn,
                country=carrier.record.country,
                is_cellular=True,
                demand_weight=subnet_demand,
                cellular_label_rate=label_rate,
                beacon_coverage=coverage,
            )
        )

    if family == 4:
        _allocate_inactive_cellular(plan, allocator, rng, carrier, count)
    if (
        family == 4
        and carrier.record.as_type is ASType.CELLULAR_DEDICATED
    ):
        _allocate_dedicated_extras(plan, allocator, rng, carrier, count)


def _allocate_inactive_cellular(
    plan: AllocationPlan,
    allocator: _AddressAllocator,
    rng: random.Random,
    carrier: ASPlan,
    active_count: int,
) -> None:
    """Ground-truth-only cellular blocks that never appear in any log.

    Carriers list far more cellular address space than is active --
    the paper's Carrier A provided ~5.1k cellular CIDRs of which only
    ~500 were ever observed, which is why its CIDR-count recall floors
    at 0.10 (Table 3).  Mixed carriers hold large inactive reserves;
    dedicated ones run their space hot.
    """
    if carrier.record.as_type is ASType.CELLULAR_MIXED:
        factor = rng.choice([0.5, 1.5, 3.0, 6.0])
    else:
        factor = 0.05
    count = round(active_count * factor)
    if count <= 0:
        return
    for prefix in allocator.take_slash24s(count):
        plan.add(
            SubnetPlan(
                prefix=prefix,
                asn=carrier.asn,
                country=carrier.record.country,
                is_cellular=True,
                demand_weight=0.0,
                cellular_label_rate=1.0,
                beacon_coverage=0.0,
            )
        )


def _allocate_dedicated_extras(
    plan: AllocationPlan,
    allocator: _AddressAllocator,
    rng: random.Random,
    carrier: ASPlan,
    cellular_count: int,
) -> None:
    """Dedicated-carrier non-cellular blocks (Figure 6a's 40% ratio-0 tail,
    plus terminating-proxy subnets carrying the AS's fixed demand)."""
    n_infra = max(1, round(0.66 * cellular_count))
    prefixes = allocator.take_slash24s(n_infra)
    proxy_count = 2 if carrier.has_terminating_proxy else 0
    proxy_demand = carrier.fixed_demand
    infra_weights = zipf_weights(n_infra, exponent=1.0)
    for index, prefix in enumerate(prefixes):
        if index < proxy_count:
            subnet_demand = proxy_demand / proxy_count
            coverage = 0.0  # proxies run no client Javascript
            proxy_like = True
        else:
            subnet_demand = 0.0 if rng.random() < 0.8 else (
                carrier.fixed_demand * 0.01 * infra_weights[index]
            )
            coverage = 1.0 if rng.random() > 0.5 else 0.0
            proxy_like = False
        plan.add(
            SubnetPlan(
                prefix=prefix,
                asn=carrier.asn,
                country=carrier.record.country,
                is_cellular=False,
                demand_weight=subnet_demand,
                cellular_label_rate=rng.uniform(0.0, 0.004),
                beacon_coverage=coverage,
                proxy_like=proxy_like,
            )
        )


def _allocate_fixed_subnets(
    plan: AllocationPlan,
    allocator: _AddressAllocator,
    rng: random.Random,
    holder: ASPlan,
    count: int,
    family: int,
    has_ipv6: bool = False,
    model: AllocationModel = AllocationModel(),
) -> None:
    """Fixed-line subnets: gradual demand decay, low cellular noise."""
    prefixes = (
        allocator.take_slash24s(count)
        if family == 4
        else allocator.take_slash48s(count)
    )
    demand = _demand_split(holder, family, cellular=False, has_ipv6=has_ipv6)
    # Fixed-line demand decays far more gradually than cellular demand
    # (Figure 8): no CGN concentration, so the top fixed subnet holds
    # only a few percent of the class's demand.
    weights = zipf_weights(count, exponent=model.fixed_zipf_exponent)
    for prefix, weight in zip(prefixes, weights):
        subnet_demand = demand * weight
        if rng.random() < 0.08:
            subnet_demand = 0.0
        plan.add(
            SubnetPlan(
                prefix=prefix,
                asn=holder.asn,
                country=holder.record.country,
                is_cellular=False,
                demand_weight=subnet_demand,
                cellular_label_rate=rng.uniform(0.0, 0.005),
                beacon_coverage=1.0 if rng.random() > 0.2 else 0.0,
            )
        )


def _allocate_special_ases(
    plan: AllocationPlan,
    allocator: _AddressAllocator,
    rng: random.Random,
    topology: Topology,
    scale: float,
) -> None:
    """Proxy / cloud / content ASes.

    Proxy and cloud ASes emit beacons whose connection labels reflect
    the *client-side* cellular link (section 5's false-positive
    mechanism); content ASes look ordinary.
    """
    for carrier in topology.plans.values():
        as_type = carrier.record.as_type
        if as_type not in (ASType.PROXY, ASType.CLOUD, ASType.CONTENT):
            continue
        count = max(3, round(600 * scale))
        prefixes = allocator.take_slash24s(count)
        weights = zipf_weights(count, exponent=1.1)
        for prefix, weight in zip(prefixes, weights):
            label_rate = (
                rng.uniform(0.55, 0.95)
                if carrier.emits_cellular_beacons
                else rng.uniform(0.0, 0.01)
            )
            plan.add(
                SubnetPlan(
                    prefix=prefix,
                    asn=carrier.asn,
                    country=carrier.record.country,
                    is_cellular=False,
                    demand_weight=carrier.fixed_demand * weight,
                    cellular_label_rate=label_rate,
                    beacon_coverage=1.0,
                )
            )


def _allocate_background(
    plan: AllocationPlan,
    allocator: _AddressAllocator,
    rng: random.Random,
    topology: Topology,
) -> None:
    """Background ASes: 1-3 subnets each, some with stray cellular labels.

    Two planted false-positive populations mirror Table 5's filter
    victims: "tether" enterprises (a hotspot-fed subnet with
    majority-cellular labels at negligible demand -- removed by rule
    1's 0.1 DU floor) and "m2m" enterprises (real demand from non-web
    devices, so almost no beacons -- removed by rule 2's hit floor).
    """
    for carrier in topology.plans.values():
        if carrier.record.as_type not in (ASType.ENTERPRISE, ASType.TRANSIT):
            continue
        count = rng.randint(1, 3)
        prefixes = allocator.take_slash24s(count)
        weights = zipf_weights(count, exponent=1.0)
        stray_kind = None
        if carrier.record.as_type is ASType.ENTERPRISE:
            roll = rng.random()
            if roll < 0.16:
                stray_kind = "tether"
            elif roll < 0.22:
                stray_kind = "m2m"
        for index, (prefix, weight) in enumerate(zip(prefixes, weights)):
            is_stray = stray_kind is not None and index == 0
            demand = carrier.fixed_demand * weight
            label_rate = rng.uniform(0.0, 0.01)
            coverage = 1.0 if rng.random() > 0.3 else 0.0
            if is_stray and stray_kind == "tether":
                label_rate = rng.uniform(0.55, 0.9)
                coverage = 1.0
                demand = demand * 0.3
            elif is_stray and stray_kind == "m2m":
                label_rate = rng.uniform(0.55, 0.9)
                coverage = 0.1
                demand = rng.uniform(1.5e-6, 6e-6)  # 0.15-0.6 DU
            plan.add(
                SubnetPlan(
                    prefix=prefix,
                    asn=carrier.asn,
                    country=carrier.record.country,
                    is_cellular=False,
                    demand_weight=demand,
                    cellular_label_rate=label_rate,
                    beacon_coverage=coverage,
                )
            )
