"""World self-audit: executable invariants over a generated world.

Generators drift as they grow knobs; the audit makes the world's
contract explicit and cheap to check.  Tests run it on every fixture
world and ``cellspot world --audit`` exposes it to operators tuning
custom profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.net.asn import ASType
from repro.world.build import World


@dataclass(frozen=True)
class AuditFinding:
    """One violated invariant."""

    check: str
    detail: str


def audit_world(world: World) -> List[AuditFinding]:
    """Run every invariant; an empty list means a healthy world."""
    findings: List[AuditFinding] = []
    findings.extend(_check_demand_conservation(world))
    findings.extend(_check_subnet_ownership(world))
    findings.extend(_check_label_rates(world))
    findings.extend(_check_carrier_minimums(world))
    findings.extend(_check_class_consistency(world))
    return findings


def _check_demand_conservation(world: World) -> List[AuditFinding]:
    total = world.allocation.total_demand()
    if not 0.8 <= total <= 1.1:
        return [
            AuditFinding(
                "demand-conservation",
                f"total planned demand {total:.4f} outside [0.8, 1.1]",
            )
        ]
    return []


def _check_subnet_ownership(world: World) -> List[AuditFinding]:
    findings = []
    registry = world.topology.registry
    for subnet in world.subnets():
        if registry.find(subnet.asn) is None:
            findings.append(
                AuditFinding(
                    "subnet-ownership",
                    f"{subnet.prefix} assigned to unknown AS{subnet.asn}",
                )
            )
        if subnet.country not in world.profiles:
            findings.append(
                AuditFinding(
                    "subnet-country",
                    f"{subnet.prefix} in unprofiled country {subnet.country}",
                )
            )
    return findings


def _check_label_rates(world: World) -> List[AuditFinding]:
    findings = []
    for subnet in world.subnets():
        rate = subnet.cellular_label_rate
        if not 0.0 <= rate <= 1.0:
            findings.append(
                AuditFinding(
                    "label-rate-range",
                    f"{subnet.prefix} has label rate {rate}",
                )
            )
        elif subnet.is_cellular and rate < 0.5:
            findings.append(
                AuditFinding(
                    "cellular-label-floor",
                    f"cellular {subnet.prefix} would classify fixed "
                    f"(rate {rate:.2f})",
                )
            )
        if not 0.0 <= subnet.beacon_coverage <= 1.0:
            findings.append(
                AuditFinding(
                    "coverage-range",
                    f"{subnet.prefix} has coverage {subnet.beacon_coverage}",
                )
            )
    return findings


def _check_carrier_minimums(world: World) -> List[AuditFinding]:
    findings = []
    for plan in world.topology.cellular_plans():
        subnets = world.allocation.by_asn.get(plan.record.asn, [])
        cellular = [s for s in subnets if s.is_cellular]
        if len(cellular) < 2:
            findings.append(
                AuditFinding(
                    "carrier-minimum",
                    f"carrier AS{plan.record.asn} holds "
                    f"{len(cellular)} cellular subnets (< 2)",
                )
            )
    return findings


def _check_class_consistency(world: World) -> List[AuditFinding]:
    """Planned demand splits must agree with AS type definitions."""
    findings = []
    for plan in world.topology.cellular_plans():
        cfd = plan.cellular_fraction_of_demand
        mixed = plan.record.as_type is ASType.CELLULAR_MIXED
        if plan.total_demand <= 0:
            continue
        if mixed and cfd >= 0.9:
            findings.append(
                AuditFinding(
                    "mixed-cfd",
                    f"mixed AS{plan.record.asn} planned CFD {cfd:.3f} >= 0.9",
                )
            )
        if not mixed and cfd < 0.9:
            findings.append(
                AuditFinding(
                    "dedicated-cfd",
                    f"dedicated AS{plan.record.asn} planned CFD {cfd:.3f} < 0.9",
                )
            )
    return findings
