"""World assembly: geography + profiles -> topology -> allocation.

:func:`build_world` is the single entry point the examples, tests and
benchmarks use.  A :class:`World` bundles everything the CDN substrate
needs to generate logs, plus ground-truth accessors used *only* by
validation code (the identification pipeline itself never reads truth
labels).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie
from repro.world.allocation import (
    AllocationModel,
    AllocationPlan,
    SubnetPlan,
    build_allocation,
)
from repro.world.geo import Geography, default_geography
from repro.world.population import PopulationModel, default_population
from repro.world.profiles import CountryProfile, default_profiles
from repro.world.topology import Topology, build_topology


@dataclass(frozen=True)
class WorldParams:
    """Knobs for world generation.

    ``scale`` multiplies the paper's full-scale subnet totals (1.0 =
    4.8M active /24s); ``background_as_count`` sizes the registry
    filler (full-scale equivalent ~45k ASes).
    """

    seed: int = 0
    scale: float = 0.01
    background_as_count: int = 2000

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        if self.background_as_count < 0:
            raise ValueError("background_as_count must be >= 0")


@dataclass
class World:
    """A fully generated synthetic Internet."""

    params: WorldParams
    geography: Geography
    profiles: Dict[str, CountryProfile]
    topology: Topology
    allocation: AllocationPlan
    population: PopulationModel
    _truth_tries: Dict[int, PrefixTrie] = field(default_factory=dict, repr=False)

    # ---- ground truth (validation only) --------------------------------

    def truth_trie(self, family: int) -> PrefixTrie:
        """Trie of all allocated subnets -> their :class:`SubnetPlan`."""
        if family not in self._truth_tries:
            trie = PrefixTrie(family)
            for subnet in self.allocation.of_family(family):
                trie.insert(subnet.prefix, subnet)
            self._truth_tries[family] = trie
        return self._truth_tries[family]

    def truth_is_cellular(self, prefix: Prefix) -> Optional[bool]:
        """Ground-truth label for a subnet key, or None if unallocated."""
        subnet = self.allocation.by_prefix.get(prefix)
        return subnet.is_cellular if subnet is not None else None

    def truth_cellular_asns(self) -> Set[int]:
        """Ground-truth cellular ASNs."""
        return self.topology.registry.cellular_asns()

    # ---- convenience views ---------------------------------------------

    def subnets(self) -> List[SubnetPlan]:
        return self.allocation.subnets

    def country_of_asn(self, asn: int) -> str:
        return self.topology.registry.get(asn).country

    def rng(self, purpose: str) -> random.Random:
        """A deterministic RNG namespaced under this world's seed."""
        return random.Random(f"{self.params.seed}:{purpose}")


def build_world(
    params: Optional[WorldParams] = None,
    geography: Optional[Geography] = None,
    profiles: Optional[Dict[str, CountryProfile]] = None,
    allocation_model: Optional[AllocationModel] = None,
    **overrides,
) -> World:
    """Build a world from ``params`` (or keyword overrides).

    Custom ``geography``/``profiles`` replace the built-in calibration
    (every profile must have a geography entry); omitting them gives
    the paper-calibrated defaults.

    >>> world = build_world(scale=0.002, seed=7)
    >>> len(world.subnets()) > 0
    True
    """
    if params is None:
        params = WorldParams(**overrides)
    elif overrides:
        raise TypeError("pass either params or keyword overrides, not both")
    geography = geography if geography is not None else default_geography()
    profiles = profiles if profiles is not None else default_profiles()
    topology = build_topology(
        geography,
        profiles,
        seed=params.seed,
        background_as_count=params.background_as_count,
    )
    allocation = build_allocation(
        geography,
        profiles,
        topology,
        scale=params.scale,
        seed=params.seed,
        model=allocation_model,
    )
    return World(
        params=params,
        geography=geography,
        profiles=profiles,
        topology=topology,
        allocation=allocation,
        population=default_population(),
    )
