"""Geography: continents, countries, subscribers, coordinates.

Country records carry ITU-style mobile subscription counts (Table 8
divides demand by subscribers) and a representative coordinate
(capital / largest city) used by the DNS resolver-distance analysis
(the Fortaleza vs Sao Paulo case in section 6.3).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


class Continent(enum.Enum):
    """The six continents the paper aggregates over."""

    AFRICA = "AF"
    ASIA = "AS"
    EUROPE = "EU"
    NORTH_AMERICA = "NA"
    OCEANIA = "OC"
    SOUTH_AMERICA = "SA"


#: Human-readable continent names, keyed by enum.
CONTINENT_NAMES = {
    Continent.AFRICA: "Africa",
    Continent.ASIA: "Asia",
    Continent.EUROPE: "Europe",
    Continent.NORTH_AMERICA: "North America",
    Continent.OCEANIA: "Oceania",
    Continent.SOUTH_AMERICA: "South America",
}


@dataclass(frozen=True)
class Country:
    """One country: ISO code, continent, subscribers, coordinate."""

    iso2: str
    name: str
    continent: Continent
    #: Mobile-cellular subscriptions, millions (ITU-style; includes voice).
    subscribers_m: float
    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if len(self.iso2) != 2 or not self.iso2.isupper():
            raise ValueError(f"country code must be ISO alpha-2: {self.iso2!r}")
        if self.subscribers_m < 0:
            raise ValueError("subscribers must be non-negative")
        if not -90 <= self.latitude <= 90 or not -180 <= self.longitude <= 180:
            raise ValueError(f"bad coordinate for {self.iso2}")


def haversine_km(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Great-circle distance between two coordinates, in kilometres."""
    radius_km = 6371.0
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2) ** 2
    )
    return 2 * radius_km * math.asin(math.sqrt(a))


class Geography:
    """Registry of countries with continent-level aggregation."""

    def __init__(self, countries: Iterable[Country]) -> None:
        self._by_iso: Dict[str, Country] = {}
        for country in countries:
            if country.iso2 in self._by_iso:
                raise ValueError(f"duplicate country {country.iso2}")
            self._by_iso[country.iso2] = country

    def __len__(self) -> int:
        return len(self._by_iso)

    def __contains__(self, iso2: str) -> bool:
        return iso2 in self._by_iso

    def __iter__(self):
        return iter(self._by_iso.values())

    def get(self, iso2: str) -> Country:
        return self._by_iso[iso2]

    def find(self, iso2: str) -> Optional[Country]:
        return self._by_iso.get(iso2)

    def continent_of(self, iso2: str) -> Continent:
        return self._by_iso[iso2].continent

    def by_continent(self, continent: Continent) -> List[Country]:
        return [c for c in self._by_iso.values() if c.continent is continent]

    def subscribers_by_continent(self) -> Dict[Continent, float]:
        """Total subscribers (millions) per continent."""
        totals: Dict[Continent, float] = {c: 0.0 for c in Continent}
        for country in self._by_iso.values():
            totals[country.continent] += country.subscribers_m
        return totals

    def distance_km(self, iso_a: str, iso_b: str) -> float:
        """Distance between the representative points of two countries."""
        a, b = self._by_iso[iso_a], self._by_iso[iso_b]
        return haversine_km(a.latitude, a.longitude, b.latitude, b.longitude)


# (iso2, name, continent, subscribers_m, lat, lon)
# Subscriber counts approximate ITU 2016 statistics; coordinates are
# capitals / largest cities.
_COUNTRY_TABLE = [
    # North America
    ("US", "United States", Continent.NORTH_AMERICA, 396.0, 38.9, -77.0),
    ("CA", "Canada", Continent.NORTH_AMERICA, 30.5, 45.4, -75.7),
    ("MX", "Mexico", Continent.NORTH_AMERICA, 111.7, 19.4, -99.1),
    ("GT", "Guatemala", Continent.NORTH_AMERICA, 19.3, 14.6, -90.5),
    ("PR", "Puerto Rico", Continent.NORTH_AMERICA, 3.2, 18.4, -66.1),
    ("PA", "Panama", Continent.NORTH_AMERICA, 4.7, 9.0, -79.5),
    ("DO", "Dominican Republic", Continent.NORTH_AMERICA, 8.9, 18.5, -69.9),
    ("CR", "Costa Rica", Continent.NORTH_AMERICA, 8.0, 9.9, -84.1),
    ("SV", "El Salvador", Continent.NORTH_AMERICA, 9.9, 13.7, -89.2),
    ("HN", "Honduras", Continent.NORTH_AMERICA, 7.8, 14.1, -87.2),
    # Europe
    ("GB", "United Kingdom", Continent.EUROPE, 92.0, 51.5, -0.1),
    ("RU", "Russia", Continent.EUROPE, 229.1, 55.8, 37.6),
    ("FR", "France", Continent.EUROPE, 67.0, 48.9, 2.4),
    ("DE", "Germany", Continent.EUROPE, 106.0, 52.5, 13.4),
    ("IT", "Italy", Continent.EUROPE, 85.0, 41.9, 12.5),
    ("ES", "Spain", Continent.EUROPE, 51.0, 40.4, -3.7),
    ("PL", "Poland", Continent.EUROPE, 55.9, 52.2, 21.0),
    ("FI", "Finland", Continent.EUROPE, 7.3, 60.2, 24.9),
    ("NL", "Netherlands", Continent.EUROPE, 21.0, 52.4, 4.9),
    ("SE", "Sweden", Continent.EUROPE, 12.5, 59.3, 18.1),
    ("CZ", "Czechia", Continent.EUROPE, 13.1, 50.1, 14.4),
    ("RO", "Romania", Continent.EUROPE, 22.9, 44.4, 26.1),
    ("CH", "Switzerland", Continent.EUROPE, 11.2, 46.9, 7.4),
    ("AT", "Austria", Continent.EUROPE, 14.3, 48.2, 16.4),
    ("BE", "Belgium", Continent.EUROPE, 12.8, 50.9, 4.4),
    ("NO", "Norway", Continent.EUROPE, 5.7, 59.9, 10.8),
    ("PT", "Portugal", Continent.EUROPE, 11.6, 38.7, -9.1),
    ("GR", "Greece", Continent.EUROPE, 12.2, 38.0, 23.7),
    ("IE", "Ireland", Continent.EUROPE, 4.8, 53.3, -6.3),
    ("UA", "Ukraine", Continent.EUROPE, 60.7, 50.5, 30.5),
    # South America
    ("BR", "Brazil", Continent.SOUTH_AMERICA, 244.1, -23.6, -46.6),
    ("CO", "Colombia", Continent.SOUTH_AMERICA, 58.7, 4.7, -74.1),
    ("AR", "Argentina", Continent.SOUTH_AMERICA, 64.0, -34.6, -58.4),
    ("BO", "Bolivia", Continent.SOUTH_AMERICA, 10.1, -16.5, -68.1),
    ("EC", "Ecuador", Continent.SOUTH_AMERICA, 14.1, -0.2, -78.5),
    ("CL", "Chile", Continent.SOUTH_AMERICA, 23.0, -33.4, -70.7),
    ("VE", "Venezuela", Continent.SOUTH_AMERICA, 27.9, 10.5, -66.9),
    ("PE", "Peru", Continent.SOUTH_AMERICA, 37.7, -12.0, -77.0),
    ("UY", "Uruguay", Continent.SOUTH_AMERICA, 5.0, -34.9, -56.2),
    ("PY", "Paraguay", Continent.SOUTH_AMERICA, 7.3, -25.3, -57.6),
    # Africa
    ("EG", "Egypt", Continent.AFRICA, 97.8, 30.0, 31.2),
    ("ZA", "South Africa", Continent.AFRICA, 87.0, -26.2, 28.0),
    ("DZ", "Algeria", Continent.AFRICA, 47.0, 36.8, 3.1),
    ("TN", "Tunisia", Continent.AFRICA, 14.3, 36.8, 10.2),
    ("NG", "Nigeria", Continent.AFRICA, 154.0, 9.1, 7.5),
    ("GH", "Ghana", Continent.AFRICA, 38.3, 5.6, -0.2),
    ("CI", "Cote d'Ivoire", Continent.AFRICA, 27.4, 5.3, -4.0),
    ("CM", "Cameroon", Continent.AFRICA, 18.7, 3.9, 11.5),
    ("MA", "Morocco", Continent.AFRICA, 41.5, 34.0, -6.8),
    ("GN", "Guinea", Continent.AFRICA, 10.8, 9.6, -13.6),
    ("KE", "Kenya", Continent.AFRICA, 38.5, -1.3, 36.8),
    # Asia
    ("IN", "India", Continent.ASIA, 1127.8, 28.6, 77.2),
    ("JP", "Japan", Continent.ASIA, 164.3, 35.7, 139.7),
    ("ID", "Indonesia", Continent.ASIA, 385.6, -6.2, 106.8),
    ("TW", "Taiwan", Continent.ASIA, 28.7, 25.0, 121.6),
    ("TH", "Thailand", Continent.ASIA, 116.3, 13.8, 100.5),
    ("AE", "United Arab Emirates", Continent.ASIA, 19.9, 24.5, 54.4),
    ("IR", "Iran", Continent.ASIA, 80.0, 35.7, 51.4),
    ("TR", "Turkey", Continent.ASIA, 75.1, 39.9, 32.9),
    ("SG", "Singapore", Continent.ASIA, 8.4, 1.3, 103.8),
    ("KR", "South Korea", Continent.ASIA, 61.3, 37.6, 127.0),
    ("VN", "Vietnam", Continent.ASIA, 120.6, 21.0, 105.9),
    ("HK", "Hong Kong", Continent.ASIA, 17.4, 22.3, 114.2),
    ("PH", "Philippines", Continent.ASIA, 113.0, 14.6, 121.0),
    ("MY", "Malaysia", Continent.ASIA, 43.9, 3.1, 101.7),
    ("SA", "Saudi Arabia", Continent.ASIA, 47.9, 24.7, 46.7),
    ("LA", "Laos", Continent.ASIA, 3.7, 17.9, 102.6),
    ("MM", "Myanmar", Continent.ASIA, 48.8, 16.8, 96.2),
    ("CN", "China", Continent.ASIA, 1364.9, 39.9, 116.4),
    # Oceania
    ("AU", "Australia", Continent.OCEANIA, 26.5, -33.9, 151.2),
    ("NZ", "New Zealand", Continent.OCEANIA, 5.8, -36.8, 174.8),
    ("FJ", "Fiji", Continent.OCEANIA, 1.1, -18.1, 178.4),
    ("GU", "Guam", Continent.OCEANIA, 0.2, 13.5, 144.8),
    ("NC", "New Caledonia", Continent.OCEANIA, 0.3, -22.3, 166.4),
    ("WS", "Samoa", Continent.OCEANIA, 0.2, -13.8, -171.8),
    ("PF", "French Polynesia", Continent.OCEANIA, 0.3, -17.5, -149.6),
    ("PG", "Papua New Guinea", Continent.OCEANIA, 4.0, -9.4, 147.2),
    ("TL", "Timor-Leste", Continent.OCEANIA, 1.4, -8.6, 125.6),
    ("SB", "Solomon Islands", Continent.OCEANIA, 0.4, -9.4, 160.0),
]


def default_geography() -> Geography:
    """The built-in geography used by the default world."""
    return Geography(Country(*row) for row in _COUNTRY_TABLE)
