"""Device/browser population and Network Information API adoption.

Figure 1 of the paper tracks what fraction of RUM beacon hits carry
functional Network Information API data between September 2015 and
June 2017 (13.2% in December 2016, ~15% by June 2017, with 96.7% of
enabled hits coming from Google-developed browsers).  This module
models the browser mix of beacon hits -- different in cellular and
fixed subnets -- and a per-browser API adoption curve interpolated
between anchor months, which both the Figure 1 experiment and the
beacon generator consume, so the measured and analytic adoption agree
by construction.
"""

from __future__ import annotations

import bisect
import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


class Browser(enum.Enum):
    """Browser families seen in beacon logs."""

    CHROME_MOBILE = "Chrome Mobile"
    ANDROID_WEBKIT = "Android Webkit"
    FIREFOX_MOBILE = "Firefox Mobile"
    SAFARI_IOS = "Safari iOS"
    CHROME_DESKTOP = "Chrome Desktop"
    OTHER_DESKTOP = "Other Desktop"

    @property
    def is_google(self) -> bool:
        """Google-developed browsers drive API adoption (section 3.1)."""
        return self in (
            Browser.CHROME_MOBILE,
            Browser.ANDROID_WEBKIT,
            Browser.CHROME_DESKTOP,
        )


def month_index(month: str) -> int:
    """Months since 0000-01 for a ``YYYY-MM`` string."""
    year_text, _, month_text = month.partition("-")
    year, mon = int(year_text), int(month_text)
    if not 1 <= mon <= 12:
        raise ValueError(f"bad month {month!r}")
    return year * 12 + (mon - 1)


def month_range(start: str, end: str) -> List[str]:
    """Inclusive list of ``YYYY-MM`` months from start to end."""
    first, last = month_index(start), month_index(end)
    if last < first:
        raise ValueError("end before start")
    months = []
    for index in range(first, last + 1):
        year, mon = divmod(index, 12)
        months.append(f"{year:04d}-{mon + 1:02d}")
    return months


#: Study window of the paper's Figure 1.
FIG1_MONTHS = month_range("2015-09", "2017-06")
#: The BEACON collection month.
STUDY_MONTH = "2016-12"

#: Browser mix of beacon hits in cellular subnets.
CELLULAR_BROWSER_MIX = {
    Browser.CHROME_MOBILE: 0.44,
    Browser.ANDROID_WEBKIT: 0.13,
    Browser.FIREFOX_MOBILE: 0.04,
    Browser.SAFARI_IOS: 0.30,
    Browser.CHROME_DESKTOP: 0.05,
    Browser.OTHER_DESKTOP: 0.04,
}

#: Browser mix of beacon hits in fixed-line subnets.
FIXED_BROWSER_MIX = {
    Browser.CHROME_MOBILE: 0.17,
    Browser.ANDROID_WEBKIT: 0.05,
    Browser.FIREFOX_MOBILE: 0.02,
    Browser.SAFARI_IOS: 0.16,
    Browser.CHROME_DESKTOP: 0.38,
    Browser.OTHER_DESKTOP: 0.22,
}

# Per-browser probability that a hit carries functional API data,
# anchored at a few months and linearly interpolated in between.
# Tuned so December 2016 lands at ~13% of all hits with ~97% of the
# enabled hits from Google browsers, rising to ~15% by June 2017.
_ADOPTION_ANCHORS: Dict[Browser, Sequence[Tuple[str, float]]] = {
    Browser.CHROME_MOBILE: (
        ("2015-09", 0.10),
        ("2016-01", 0.20),
        ("2016-12", 0.44),
        ("2017-06", 0.52),
    ),
    Browser.ANDROID_WEBKIT: (
        ("2015-09", 0.30),
        ("2016-12", 0.34),
        ("2017-06", 0.32),
    ),
    Browser.FIREFOX_MOBILE: (
        ("2015-09", 0.02),
        ("2016-12", 0.10),
        ("2017-06", 0.14),
    ),
    Browser.CHROME_DESKTOP: (
        ("2015-09", 0.000),
        ("2016-12", 0.004),
        ("2017-06", 0.010),
    ),
    Browser.SAFARI_IOS: (("2015-09", 0.0), ("2017-06", 0.0)),
    Browser.OTHER_DESKTOP: (("2015-09", 0.0), ("2017-06", 0.0)),
}


def api_adoption(browser: Browser, month: str) -> float:
    """Probability a hit from ``browser`` in ``month`` carries API data."""
    anchors = _ADOPTION_ANCHORS[browser]
    target = month_index(month)
    indices = [month_index(m) for m, _ in anchors]
    if target <= indices[0]:
        return anchors[0][1]
    if target >= indices[-1]:
        return anchors[-1][1]
    position = bisect.bisect_right(indices, target)
    left_index, left_value = indices[position - 1], anchors[position - 1][1]
    right_index, right_value = indices[position], anchors[position][1]
    fraction = (target - left_index) / (right_index - left_index)
    return left_value + fraction * (right_value - left_value)


@dataclass(frozen=True)
class PopulationModel:
    """Browser mixes plus the adoption curve, bundled for the generator.

    ``cellular_hit_weight`` is the fraction of global beacon hits that
    come from cellular subnets; it weights the analytic global mix.
    """

    cellular_mix: Dict[Browser, float]
    fixed_mix: Dict[Browser, float]
    cellular_hit_weight: float = 0.16

    def mix_for(self, is_cellular: bool) -> Dict[Browser, float]:
        return self.cellular_mix if is_cellular else self.fixed_mix

    def draw_browser(self, rng: random.Random, is_cellular: bool) -> Browser:
        """Sample a browser for one hit."""
        mix = self.mix_for(is_cellular)
        roll = rng.random()
        running = 0.0
        for browser, share in mix.items():
            running += share
            if roll < running:
                return browser
        return Browser.OTHER_DESKTOP

    def global_mix(self) -> Dict[Browser, float]:
        """Hit-weighted average of the two mixes."""
        weight = self.cellular_hit_weight
        return {
            browser: (
                weight * self.cellular_mix[browser]
                + (1 - weight) * self.fixed_mix[browser]
            )
            for browser in Browser
        }

    def api_share_by_browser(self, month: str) -> Dict[Browser, float]:
        """Analytic fraction of *all* hits that are API-enabled, per browser.

        This is exactly Figure 1's stacked series: summing the values
        gives the total API-enabled share for the month.
        """
        mix = self.global_mix()
        return {
            browser: mix[browser] * api_adoption(browser, month)
            for browser in Browser
        }

    def total_api_share(self, month: str) -> float:
        """Analytic total fraction of hits with functional API data."""
        return sum(self.api_share_by_browser(month).values())

    def google_share_of_enabled(self, month: str) -> float:
        """Fraction of API-enabled hits from Google browsers (96.7% Dec'16)."""
        shares = self.api_share_by_browser(month)
        total = sum(shares.values())
        if total <= 0:
            return 0.0
        return sum(
            share for browser, share in shares.items() if browser.is_google
        ) / total


def default_population() -> PopulationModel:
    """The built-in population model."""
    return PopulationModel(
        cellular_mix=dict(CELLULAR_BROWSER_MIX),
        fixed_mix=dict(FIXED_BROWSER_MIX),
    )
