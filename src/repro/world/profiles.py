"""Per-country calibration profiles for the world generator.

Each :class:`CountryProfile` sets the *inputs* the generator needs:
how much of global CDN demand the country originates, what fraction of
that demand is cellular, how many cellular/fixed ASes it hosts, how far
IPv6 has been deployed in its carriers, and how much of its cellular
DNS load goes to public resolvers.

The values are calibrated from the paper's published aggregates
(Tables 4, 6, 7, 8 and Figures 10-12): e.g. Ghana's cellular fraction
is 0.959, Laos 0.871, Indonesia 0.63, the U.S. 0.166, France 0.121;
the U.S. hosts 40 cellular ASes, Russia 29, China 25, Japan 17, India
13; public-DNS adoption is ~0.97 in Algeria and < 0.02 in the U.S.
China is profiled but excluded from demand analyses, as in section 7.1.

These are generator *inputs*, not outputs: the pipeline re-derives all
reported numbers from raw synthetic logs without reading this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.world.geo import Continent

#: Full-scale active /24 totals per continent, derived from Table 4
#: (cellular /24 counts divided by the "% active IPv4" column).
ACTIVE_SLASH24_BY_CONTINENT = {
    Continent.AFRICA: 148_667,
    Continent.ASIA: 1_519_614,
    Continent.EUROPE: 1_363_375,
    Continent.NORTH_AMERICA: 1_313_095,
    Continent.OCEANIA: 80_593,
    Continent.SOUTH_AMERICA: 387_562,
}

#: Full-scale cellular /24 totals per continent (Table 4).
CELLULAR_SLASH24_BY_CONTINENT = {
    Continent.AFRICA: 79_091,
    Continent.ASIA: 86_618,
    Continent.EUROPE: 65_442,
    Continent.NORTH_AMERICA: 27_595,
    Continent.OCEANIA: 4_352,
    Continent.SOUTH_AMERICA: 87_589,
}

#: Full-scale active /48 totals per continent (Table 4, IPv6 column).
ACTIVE_SLASH48_BY_CONTINENT = {
    Continent.AFRICA: 1_400,
    Continent.ASIA: 922_600,
    Continent.EUROPE: 705_667,
    Continent.NORTH_AMERICA: 163_293,
    Continent.OCEANIA: 50_000,
    Continent.SOUTH_AMERICA: 30_111,
}

#: Full-scale cellular /48 totals per continent (Table 4).
CELLULAR_SLASH48_BY_CONTINENT = {
    Continent.AFRICA: 28,
    Continent.ASIA: 4_613,
    Continent.EUROPE: 2_117,
    Continent.NORTH_AMERICA: 16_166,
    Continent.OCEANIA: 35,
    Continent.SOUTH_AMERICA: 271,
}

#: Fraction of cellular ASes that are mixed, per continent (section 6.1).
MIXED_FRACTION_BY_CONTINENT = {
    Continent.AFRICA: 0.51,
    Continent.ASIA: 0.53,
    Continent.OCEANIA: 0.56,
    Continent.EUROPE: 0.61,
    Continent.NORTH_AMERICA: 0.69,
    Continent.SOUTH_AMERICA: 0.71,
}


@dataclass(frozen=True)
class CountryProfile:
    """Generator inputs for one country.

    ``demand_share`` is an unnormalized weight of global CDN demand;
    the builder normalizes across all profiled countries.
    ``top_as_shares`` optionally pins the within-country cellular demand
    share and dedicated/mixed status of the country's largest carriers
    (used to reproduce Table 7's top-10 list); remaining carriers split
    the residual share by a Zipf law.
    """

    iso2: str
    demand_share: float
    cellular_fraction: float
    cellular_as_count: int
    #: ((within-country cellular demand share, is_dedicated), ...)
    top_as_shares: Tuple[Tuple[float, bool], ...] = ()
    #: Continent default applies when None.
    mixed_as_fraction: Optional[float] = None
    ipv6_as_count: int = 0
    public_dns_fraction: float = 0.08
    excluded_from_demand: bool = False

    def __post_init__(self) -> None:
        if self.demand_share < 0:
            raise ValueError(f"{self.iso2}: demand share must be >= 0")
        if not 0 <= self.cellular_fraction <= 1:
            raise ValueError(f"{self.iso2}: cellular fraction not in [0,1]")
        if self.cellular_as_count < 0:
            raise ValueError(f"{self.iso2}: AS count must be >= 0")
        if self.ipv6_as_count > self.cellular_as_count:
            raise ValueError(f"{self.iso2}: more IPv6 ASes than cellular ASes")
        pinned = sum(share for share, _ in self.top_as_shares)
        if pinned > 1.0 + 1e-9:
            raise ValueError(f"{self.iso2}: pinned AS shares exceed 1")
        if not 0 <= self.public_dns_fraction <= 1:
            raise ValueError(f"{self.iso2}: public DNS fraction not in [0,1]")


_D = True   # dedicated
_M = False  # mixed

# Calibration table.  Columns:
#   iso2, demand_share, cellular_fraction, cellular_as_count,
#   top_as_shares, mixed_override, ipv6_as_count, public_dns_fraction
_PROFILE_ROWS: List[CountryProfile] = [
    # --- North America (paper: 16.6% cellular fraction, 35% of cell demand)
    CountryProfile("US", 29.5, 0.166, 40,
                   top_as_shares=((0.30, _D), (0.295, _D), (0.185, _D), (0.125, _D)),
                   ipv6_as_count=5, public_dns_fraction=0.015),
    CountryProfile("CA", 2.6, 0.12, 8, ipv6_as_count=2, public_dns_fraction=0.02),
    CountryProfile("MX", 1.2, 0.21, 9),
    CountryProfile("GT", 0.12, 0.35, 5),
    CountryProfile("PR", 0.10, 0.30, 4),
    CountryProfile("PA", 0.08, 0.32, 4),
    CountryProfile("DO", 0.10, 0.38, 6),
    CountryProfile("CR", 0.08, 0.28, 5),
    CountryProfile("SV", 0.05, 0.40, 6),
    CountryProfile("HN", 0.05, 0.45, 6),
    # --- Europe (11.8% cellular fraction, 15.9% of cell demand)
    CountryProfile("GB", 4.5, 0.14, 12, ipv6_as_count=2),
    CountryProfile("RU", 2.5, 0.16, 29),
    CountryProfile("FR", 3.0, 0.121, 10, ipv6_as_count=1),
    CountryProfile("DE", 3.5, 0.10, 11, ipv6_as_count=2),
    CountryProfile("IT", 2.0, 0.13, 9),
    CountryProfile("ES", 1.6, 0.12, 8),
    CountryProfile("PL", 1.2, 0.11, 10),
    CountryProfile("FI", 0.7, 0.22, 5, ipv6_as_count=1),
    CountryProfile("NL", 1.4, 0.06, 7, ipv6_as_count=1),
    CountryProfile("SE", 1.0, 0.09, 7, ipv6_as_count=1),
    CountryProfile("CZ", 0.5, 0.10, 7),
    CountryProfile("RO", 0.5, 0.15, 9),
    CountryProfile("CH", 0.8, 0.07, 5, ipv6_as_count=1),
    CountryProfile("AT", 0.6, 0.09, 6),
    CountryProfile("BE", 0.7, 0.07, 5),
    CountryProfile("NO", 0.6, 0.10, 5, ipv6_as_count=1),
    CountryProfile("PT", 0.5, 0.12, 6),
    CountryProfile("GR", 0.4, 0.16, 7),
    CountryProfile("IE", 0.4, 0.10, 4),
    CountryProfile("UA", 0.5, 0.18, 23),
    # --- South America (12.5% cellular fraction, 4.1% of cell demand)
    CountryProfile("BR", 3.0, 0.13, 9, ipv6_as_count=6, public_dns_fraction=0.12),
    CountryProfile("CO", 0.55, 0.15, 6),
    CountryProfile("AR", 0.65, 0.12, 6),
    CountryProfile("BO", 0.10, 0.45, 4),
    CountryProfile("EC", 0.20, 0.18, 4, ipv6_as_count=1),
    CountryProfile("CL", 0.45, 0.10, 5),
    CountryProfile("VE", 0.20, 0.15, 4),
    CountryProfile("PE", 0.25, 0.20, 5, ipv6_as_count=1),
    CountryProfile("UY", 0.08, 0.12, 2),
    CountryProfile("PY", 0.07, 0.30, 3),
    # --- Africa (25.5% cellular fraction, 2.9% of cell demand)
    CountryProfile("EG", 0.40, 0.18, 12),
    CountryProfile("ZA", 0.45, 0.12, 12, ipv6_as_count=1),
    CountryProfile("DZ", 0.15, 0.35, 8, public_dns_fraction=0.97),
    CountryProfile("TN", 0.10, 0.30, 6),
    CountryProfile("NG", 0.15, 0.50, 16, public_dns_fraction=0.70),
    CountryProfile("GH", 0.08, 0.959, 10),
    CountryProfile("CI", 0.06, 0.50, 9),
    CountryProfile("CM", 0.05, 0.45, 10),
    CountryProfile("MA", 0.20, 0.25, 10),
    CountryProfile("GN", 0.03, 0.65, 9),
    CountryProfile("KE", 0.06, 0.55, 12, ipv6_as_count=1),
    # --- Asia (26.0% cellular fraction, 38.9% of cell demand; China excluded)
    CountryProfile("IN", 4.2, 0.37, 13, top_as_shares=((0.45, _D),),
                   ipv6_as_count=4, public_dns_fraction=0.40),
    CountryProfile("JP", 7.0, 0.18, 17,
                   top_as_shares=((0.44, _D), (0.32, _M), (0.13, _M)),
                   ipv6_as_count=5),
    CountryProfile("ID", 1.6, 0.63, 20, top_as_shares=((0.26, _D),)),
    CountryProfile("TW", 1.6, 0.18, 8, ipv6_as_count=1),
    CountryProfile("TH", 1.1, 0.25, 15, ipv6_as_count=1),
    CountryProfile("AE", 0.6, 0.42, 5),
    CountryProfile("IR", 0.7, 0.32, 16),
    CountryProfile("TR", 1.1, 0.22, 11, ipv6_as_count=1),
    CountryProfile("SG", 0.9, 0.17, 6, ipv6_as_count=1),
    CountryProfile("KR", 2.2, 0.08, 8, ipv6_as_count=2),
    CountryProfile("VN", 0.8, 0.27, 14, public_dns_fraction=0.22),
    CountryProfile("HK", 1.0, 0.15, 7, public_dns_fraction=0.58),
    CountryProfile("PH", 0.5, 0.50, 12),
    CountryProfile("MY", 0.6, 0.26, 12, ipv6_as_count=1),
    CountryProfile("SA", 0.5, 0.42, 8, public_dns_fraction=0.32),
    CountryProfile("LA", 0.08, 0.871, 4),
    CountryProfile("MM", 0.08, 0.80, 12, ipv6_as_count=5),
    CountryProfile("CN", 2.0, 0.30, 25, excluded_from_demand=True),
    # --- Oceania (23.4% cellular fraction, 3.0% of cell demand)
    CountryProfile("AU", 1.7, 0.25, 4, top_as_shares=((0.65, _M),),
                   ipv6_as_count=2),
    CountryProfile("NZ", 0.35, 0.20, 2, ipv6_as_count=1),
    CountryProfile("FJ", 0.04, 0.60, 1),
    CountryProfile("GU", 0.03, 0.40, 1),
    CountryProfile("NC", 0.03, 0.35, 1),
    CountryProfile("WS", 0.01, 0.65, 1),
    CountryProfile("PF", 0.02, 0.40, 1),
    CountryProfile("PG", 0.02, 0.70, 2),
    CountryProfile("TL", 0.01, 0.75, 1),
    CountryProfile("SB", 0.01, 0.70, 2),
]


def default_profiles() -> Dict[str, CountryProfile]:
    """The built-in calibration table, keyed by ISO code."""
    profiles = {}
    for profile in _PROFILE_ROWS:
        if profile.iso2 in profiles:
            raise ValueError(f"duplicate profile {profile.iso2}")
        profiles[profile.iso2] = profile
    return profiles


def total_cellular_as_count(profiles: Sequence[CountryProfile]) -> int:
    """Ground-truth cellular AS count across profiles (paper: 668)."""
    return sum(profile.cellular_as_count for profile in profiles)


def normalized_demand_shares(
    profiles: Sequence[CountryProfile],
) -> Dict[str, float]:
    """Demand shares normalized to sum to 1 over all countries.

    ``excluded_from_demand`` countries (China) still generate traffic --
    the CDN sees it -- but the *analyses* drop them, as the paper drops
    China from its demand statistics (section 7.1).
    """
    total = sum(profile.demand_share for profile in profiles)
    if total <= 0:
        raise ValueError("profiles have no demand")
    return {
        profile.iso2: profile.demand_share / total for profile in profiles
    }
