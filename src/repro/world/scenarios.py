"""What-if scenarios: counterfactual calibrations of the world.

The calibration profiles are inputs, so counterfactuals are just
profile transforms.  Each scenario returns a fresh profile table (the
default geography still applies) that can be handed to
:func:`repro.world.build.build_world`; the pipeline and every analysis
run unchanged on top.

Shipped scenarios:

- :func:`mobile_first_world` -- the trajectory the paper's §7
  discussion points at: every country's cellular fraction moves toward
  the cellular-dominant frontier (Ghana/Laos levels for developing
  markets, Indonesia levels elsewhere).
- :func:`ipv6_everywhere` -- the §4.3 counterfactual: every carrier
  deploys IPv6 instead of 7.7% of them.
- :func:`demand_shift` -- scale one country's demand share (market
  growth/decline studies).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.world.profiles import CountryProfile, default_profiles


def mobile_first_world(
    floor: float = 0.5, developing_floor: float = 0.8
) -> Dict[str, CountryProfile]:
    """Cellular fractions lifted toward a mobile-first Internet.

    Countries already above ``floor`` keep their value; developing
    markets (those currently above 0.3 cellular) jump to at least
    ``developing_floor``.
    """
    if not 0 < floor <= 1 or not 0 < developing_floor <= 1:
        raise ValueError("floors must be in (0, 1]")
    profiles = {}
    for iso2, profile in default_profiles().items():
        current = profile.cellular_fraction
        target = max(current, developing_floor if current > 0.3 else floor)
        profiles[iso2] = replace(profile, cellular_fraction=min(target, 0.99))
    return profiles


def ipv6_everywhere() -> Dict[str, CountryProfile]:
    """Every cellular carrier deploys IPv6 (§4.3 counterfactual)."""
    return {
        iso2: replace(profile, ipv6_as_count=profile.cellular_as_count)
        for iso2, profile in default_profiles().items()
    }


def demand_shift(iso2: str, factor: float) -> Dict[str, CountryProfile]:
    """Scale one country's demand share by ``factor``.

    Shares renormalize inside the generator, so a factor of 2 roughly
    doubles the country's weight at everyone else's expense.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    profiles = default_profiles()
    if iso2 not in profiles:
        raise KeyError(f"no profile for {iso2}")
    profiles[iso2] = replace(
        profiles[iso2], demand_share=profiles[iso2].demand_share * factor
    )
    return profiles
