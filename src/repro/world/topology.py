"""AS topology generation.

Turns the per-country calibration profiles into a concrete set of
autonomous systems with hidden ground-truth roles and demand plans:

- cellular carriers (dedicated or mixed, per the continent mixed
  fractions of section 6.1, with Table 7's top carriers pinned),
- fixed-line access ISPs,
- globally placed content / cloud / proxy networks -- the planted
  sources of AS-level false positives that section 5's filtering
  heuristics must remove (Google-style and Opera-style mobile proxies,
  AWS-/DigitalOcean-style VPN egress),
- transit and background enterprise ASes that fill out the registry
  denominator (the paper observes 46,936 ASes but detects cellular
  subnets in only 1,263 of them).

Demand here is planned as *fractions of global demand*; the CDN
substrate later realizes request logs from these plans.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.asn import ASRecord, ASRegistry, ASType
from repro.stats.sampling import zipf_weights
from repro.world.geo import Continent, Geography
from repro.world.profiles import (
    MIXED_FRACTION_BY_CONTINENT,
    CountryProfile,
    normalized_demand_shares,
)


@dataclass(frozen=True)
class ASPlan:
    """One generated AS plus its demand plan (fractions of global demand)."""

    record: ASRecord
    cellular_demand: float
    fixed_demand: float
    ipv6_deployed: bool = False
    public_dns_fraction: float = 0.0
    #: Dedicated-carrier HTTP-proxy subnets: demand without beacons
    #: (the Asian dedicated operator of section 6.1).
    has_terminating_proxy: bool = False
    #: Proxy/cloud AS whose beacons carry client-side cellular labels.
    emits_cellular_beacons: bool = False

    @property
    def asn(self) -> int:
        return self.record.asn

    @property
    def total_demand(self) -> float:
        return self.cellular_demand + self.fixed_demand

    @property
    def cellular_fraction_of_demand(self) -> float:
        """Planned CFD; the pipeline must re-derive this from logs."""
        total = self.total_demand
        return self.cellular_demand / total if total > 0 else 0.0


@dataclass
class Topology:
    """The generated AS-level world."""

    registry: ASRegistry
    plans: Dict[int, ASPlan]
    #: Normalized per-country demand shares actually used.
    country_demand: Dict[str, float]

    def plan(self, asn: int) -> ASPlan:
        return self.plans[asn]

    def cellular_plans(self) -> List[ASPlan]:
        return [p for p in self.plans.values() if p.record.is_cellular]

    def plans_in_country(self, iso2: str) -> List[ASPlan]:
        return [p for p in self.plans.values() if p.record.country == iso2]


# Operator name fragments for generated carrier names.
_CARRIER_WORDS = [
    "Tele", "Mobi", "Cell", "Net", "Wave", "Link", "Star", "Air",
    "Uni", "Glo", "Voda", "Ora", "Digi", "Sky", "Metro", "Pulse",
]

_SPECIAL_AS_SPECS = [
    # (name, country, as_type, demand, emits_cellular_beacons)
    ("SearchCo Mobile Proxy", "US", ASType.PROXY, 0.0045, True),
    ("MiniBrowser Proxy", "NO", ASType.PROXY, 0.0025, True),
    ("BigCloud Web Services", "US", ASType.CLOUD, 0.0080, True),
    ("Droplet Ocean", "US", ASType.CLOUD, 0.0020, True),
    ("MegaCDN Platform", "US", ASType.CONTENT, 0.0120, False),
    ("EuroHost Content", "DE", ASType.CONTENT, 0.0040, False),
    ("AsiaPortal Content", "SG", ASType.CONTENT, 0.0030, False),
]


def _carrier_name(rng: random.Random, iso2: str, dedicated: bool, index: int) -> str:
    word_a = rng.choice(_CARRIER_WORDS)
    word_b = rng.choice(_CARRIER_WORDS)
    kind = "Mobile" if dedicated else "Telecom"
    return f"{word_a}{word_b.lower()} {kind} {iso2}-{index + 1}"


def _fixed_as_count(demand_share_pct: float) -> int:
    """Default fixed-ISP count for a country from its demand share (%)."""
    return max(2, round(3.0 * math.sqrt(max(demand_share_pct, 0.0) * 100)))


def build_topology(
    geography: Geography,
    profiles: Dict[str, CountryProfile],
    seed: int = 0,
    background_as_count: int = 2000,
) -> Topology:
    """Generate the AS-level world from calibration profiles.

    ``background_as_count`` scales the registry filler (enterprise and
    small transit ASes with negligible demand); the paper's full-scale
    equivalent is ~45k.
    """
    registry = ASRegistry()
    plans: Dict[int, ASPlan] = {}
    shares = normalized_demand_shares(list(profiles.values()))
    next_asn = [100]

    def allocate_asn() -> int:
        asn = next_asn[0]
        next_asn[0] += 1
        return asn

    def add_plan(plan: ASPlan) -> None:
        registry.add(plan.record)
        plans[plan.record.asn] = plan

    for name, iso2, as_type, demand, emits in _SPECIAL_AS_SPECS:
        record = ASRecord(allocate_asn(), name, iso2, as_type)
        add_plan(
            ASPlan(
                record,
                cellular_demand=0.0,
                fixed_demand=demand,
                emits_cellular_beacons=emits,
            )
        )

    for iso2 in sorted(profiles):
        profile = profiles[iso2]
        if iso2 not in geography:
            raise ValueError(f"profile {iso2} has no geography entry")
        country = geography.get(iso2)
        rng = random.Random(f"{seed}:topology:{iso2}")
        country_share = shares[iso2]
        _build_country(
            add_plan,
            allocate_asn,
            rng,
            profile,
            country.continent,
            country_share,
        )

    _build_background(
        add_plan, allocate_asn, seed, geography, background_as_count, shares
    )
    return Topology(registry=registry, plans=plans, country_demand=shares)


def _build_country(
    add_plan,
    allocate_asn,
    rng: random.Random,
    profile: CountryProfile,
    continent: Continent,
    country_share: float,
) -> None:
    """Generate the carriers and fixed ISPs of one country."""
    iso2 = profile.iso2
    cellular_total = country_share * profile.cellular_fraction
    fixed_total = country_share - cellular_total

    n_cell = profile.cellular_as_count
    statuses = _dedicated_flags(rng, profile, continent, n_cell)
    cell_shares = _cellular_shares(rng, profile, n_cell)
    # Give the larger unpinned shares to dedicated carriers: globally,
    # mixed ASes outnumber dedicated ones but carry only ~1/3 of
    # cellular demand (section 6.1).
    pinned_n = min(len(profile.top_as_shares), n_cell)
    free_slots = list(range(pinned_n, n_cell))
    free_shares = sorted((cell_shares[i] for i in free_slots), reverse=True)

    def _share_rank(index: int):
        # Mixed carriers mostly rank behind dedicated ones, but ~40%
        # compete at the top so mixed ASes still hold ~1/3 of demand.
        mixed_carrier = not statuses[index]
        demoted = mixed_carrier and rng.random() > 0.40
        return (demoted, rng.random())

    for slot, share in zip(sorted(free_slots, key=_share_rank), free_shares):
        cell_shares[slot] = share
    ipv6_carriers = _ipv6_flags(rng, profile, n_cell, cell_shares)

    fixed_budget = fixed_total
    mixed_fixed: List[float] = []
    for index in range(n_cell):
        cell_demand = cellular_total * cell_shares[index]
        if statuses[index]:
            # Dedicated: tiny non-cellular tail (terminating proxies etc.).
            cfd = rng.choice([0.999, 0.995, 0.99, 0.97, 0.95, 0.92])
            fixed_demand = cell_demand * (1.0 - cfd) / cfd
        else:
            # Mixed: CFD spread across (0.05, 0.81) as in section 6.1.
            cfd = rng.uniform(0.06, 0.80)
            fixed_demand = cell_demand * (1.0 - cfd) / cfd
        mixed_fixed.append(fixed_demand)
    claimed = sum(mixed_fixed)
    if claimed > 0.85 * fixed_budget and claimed > 0:
        scale = (0.85 * fixed_budget) / claimed
        mixed_fixed = [value * scale for value in mixed_fixed]

    for index in range(n_cell):
        dedicated = statuses[index]
        # The mixed/dedicated distinction is *defined* by the demand
        # split (CFD >= 0.9 = dedicated, section 6.1).  In cellular-
        # dominated countries the fixed budget cap can leave a
        # nominally mixed carrier with almost no fixed demand; its
        # ground-truth label follows the realized split.
        cell_demand = cellular_total * cell_shares[index]
        realized_total = cell_demand + mixed_fixed[index]
        if not dedicated and realized_total > 0:
            dedicated = cell_demand / realized_total >= 0.9
        as_type = ASType.CELLULAR_DEDICATED if dedicated else ASType.CELLULAR_MIXED
        record = ASRecord(
            allocate_asn(),
            _carrier_name(rng, iso2, dedicated, index),
            iso2,
            as_type,
            org=f"{iso2}-carrier-{index + 1}",
        )
        add_plan(
            ASPlan(
                record,
                cellular_demand=cellular_total * cell_shares[index],
                fixed_demand=mixed_fixed[index],
                ipv6_deployed=ipv6_carriers[index],
                public_dns_fraction=_public_dns_rate(rng, profile),
                has_terminating_proxy=dedicated and rng.random() < 0.15,
            )
        )

    remaining_fixed = max(fixed_budget - sum(mixed_fixed), 0.0)
    n_fixed = _fixed_as_count(country_share)
    fixed_shares = zipf_weights(n_fixed, exponent=1.2)
    for index in range(n_fixed):
        record = ASRecord(
            allocate_asn(),
            _carrier_name(rng, iso2, False, n_cell + index).replace(
                "Telecom", "Broadband"
            ),
            iso2,
            ASType.FIXED_ACCESS,
        )
        add_plan(
            ASPlan(
                record,
                cellular_demand=0.0,
                fixed_demand=remaining_fixed * fixed_shares[index],
                ipv6_deployed=rng.random() < 0.25,
            )
        )


def _dedicated_flags(
    rng: random.Random,
    profile: CountryProfile,
    continent: Continent,
    n_cell: int,
) -> List[bool]:
    """Per-carrier dedicated flags hitting the country's mixed fraction."""
    mixed_fraction = profile.mixed_as_fraction
    if mixed_fraction is None:
        mixed_fraction = MIXED_FRACTION_BY_CONTINENT[continent]
    target_mixed = round(mixed_fraction * n_cell)
    flags: List[Optional[bool]] = [None] * n_cell
    for index, (_, dedicated) in enumerate(profile.top_as_shares):
        if index < n_cell:
            flags[index] = dedicated
    pinned_mixed = sum(1 for value in flags if value is False)
    open_slots = [index for index, value in enumerate(flags) if value is None]
    need_mixed = min(max(target_mixed - pinned_mixed, 0), len(open_slots))
    rng.shuffle(open_slots)
    mixed_slots = set(open_slots[:need_mixed])
    return [
        value if value is not None else (index not in mixed_slots)
        for index, value in enumerate(flags)
    ]


def _cellular_shares(
    rng: random.Random, profile: CountryProfile, n_cell: int
) -> List[float]:
    """Within-country cellular demand shares, honoring pinned carriers."""
    if n_cell == 0:
        return []
    pinned = [share for share, _ in profile.top_as_shares[:n_cell]]
    residual = max(1.0 - sum(pinned), 0.0)
    n_free = n_cell - len(pinned)
    if n_free <= 0:
        total = sum(pinned)
        return [share / total for share in pinned] if total else pinned
    free = zipf_weights(n_free, exponent=1.4)
    return pinned + [residual * weight for weight in free]


def _ipv6_flags(
    rng: random.Random,
    profile: CountryProfile,
    n_cell: int,
    shares: List[float],
) -> List[bool]:
    """Which carriers deploy IPv6: the largest ones first (cf. section 4.3)."""
    count = min(profile.ipv6_as_count, n_cell)
    ranked = sorted(range(n_cell), key=lambda index: shares[index], reverse=True)
    chosen = set(ranked[:count])
    return [index in chosen for index in range(n_cell)]


def _public_dns_rate(rng: random.Random, profile: CountryProfile) -> float:
    """Per-carrier public DNS adoption around the country level."""
    base = profile.public_dns_fraction
    jitter = rng.uniform(-0.25, 0.25) * base
    return min(max(base + jitter, 0.0), 1.0)


def _build_background(
    add_plan,
    allocate_asn,
    seed: int,
    geography: Geography,
    count: int,
    shares: Dict[str, float],
) -> None:
    """Registry filler: enterprise/transit ASes with negligible demand.

    Countries get background ASes roughly in proportion to the square
    root of their demand share -- big Internet economies host most of
    the long tail, but small countries still get a few.
    """
    rng = random.Random(f"{seed}:background")
    countries = [country.iso2 for country in geography]
    weights = [
        math.sqrt(shares.get(iso2, 0.0)) + 0.01 for iso2 in countries
    ]
    for index in range(count):
        iso2 = rng.choices(countries, weights=weights, k=1)[0]
        if index % 17 == 0:
            as_type = ASType.TRANSIT
            name = f"Transit Backbone {index}"
        elif index % 5 == 0:
            as_type = ASType.CONTENT
            name = f"Hosting Platform {index}"
        else:
            as_type = ASType.ENTERPRISE
            name = f"Enterprise Net {index}"
        record = ASRecord(allocate_asn(), name, iso2, as_type)
        add_plan(
            ASPlan(
                record,
                cellular_demand=0.0,
                fixed_demand=rng.uniform(0.0, 2e-6),
            )
        )
