"""Shared fixtures.

A full lab (world + datasets + pipeline) costs several seconds, so
integration-level tests share one session-scoped instance; unit tests
that only need a world use the smaller ``tiny_world``.
"""

from __future__ import annotations

import random

import pytest

from repro.lab import Lab
from repro.world.build import WorldParams, build_world

#: Seed used by all shared fixtures; individual tests may build their own.
SHARED_SEED = 1


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json snapshots from current outputs",
    )


@pytest.fixture(scope="session")
def update_golden(request) -> bool:
    """True when the run should rewrite golden snapshots."""
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def lab() -> Lab:
    """One shared medium world with datasets and pipeline output."""
    return Lab.create(scale=0.005, seed=SHARED_SEED)


@pytest.fixture(scope="session")
def golden_lab() -> Lab:
    """The small fixed world every golden snapshot is computed from.

    Deliberately distinct from the shared ``lab`` so golden files pin
    a world no other fixture mutates assumptions about.
    """
    return Lab.create(scale=0.002, seed=3, background_as_count=400)


@pytest.fixture(scope="session")
def world(lab):
    return lab.world


@pytest.fixture(scope="session")
def tiny_world():
    """A small, quickly built world for structural unit tests."""
    return build_world(WorldParams(seed=3, scale=0.002, background_as_count=400))


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture(params=["python", "numpy"])
def array_backend(request) -> str:
    """Both columnar kernel backends, one parametrized run each.

    The numpy leg skips (rather than silently re-testing the
    fallback) when numpy is not installed, so a green run on a
    numpy-equipped machine really did exercise both backends.
    """
    from repro.columnar.backend import numpy_available, use_backend

    name = request.param
    if name == "numpy" and not numpy_available():
        pytest.skip("numpy not installed; python fallback covered elsewhere")
    with use_backend(name):
        yield name


@pytest.fixture(scope="session")
def beacon_hits(tiny_world):
    """One month of per-hit beacon events from the tiny world.

    The deterministic event list the stream/serve tests ingest; small
    enough (~32k events) to drain in well under a second.
    """
    from repro.cdn.beacon import BeaconConfig, BeaconGenerator

    config = BeaconConfig(month="2017-01", demand_hits=6000, base_hits=2.0)
    return list(BeaconGenerator(tiny_world, config).iter_hits())
