"""Unit tests for the ablation helpers."""

import pytest

from repro.analysis.ablation import reaggregate_beacons
from repro.datasets.beacon_dataset import BeaconDataset, SubnetBeaconCounts
from repro.net.prefix import Prefix
from repro.world.population import Browser


def p(text):
    return Prefix.parse(text)


def dataset():
    beacons = BeaconDataset("2016-12")
    beacons.add_counts(SubnetBeaconCounts(p("10.0.0.0/24"), 1, "US", 10, 5, 4))
    beacons.add_counts(SubnetBeaconCounts(p("10.0.1.0/24"), 1, "US", 6, 3, 0))
    beacons.add_counts(SubnetBeaconCounts(p("10.8.0.0/24"), 2, "DE", 4, 2, 2))
    beacons.add_counts(
        SubnetBeaconCounts(p("2001:db8::/48"), 3, "JP", 8, 4, 4)
    )
    beacons.observe_browser_batch(Browser.CHROME_MOBILE, 28, 14)
    return beacons


class TestReaggregate:
    def test_merges_within_key(self):
        coarse = reaggregate_beacons(dataset(), ipv4_length=16)
        merged = coarse.get(p("10.0.0.0/16"))
        assert merged is not None
        assert (merged.hits, merged.api_hits, merged.cellular_hits) == (16, 8, 4)
        # Different /16 stays separate.
        assert coarse.get(p("10.8.0.0/16")).hits == 4

    def test_identity_at_24(self):
        coarse = reaggregate_beacons(dataset(), ipv4_length=24)
        assert len(coarse) == len(dataset())

    def test_ipv6_keys(self):
        coarse = reaggregate_beacons(dataset(), ipv4_length=24, ipv6_length=32)
        assert coarse.get(p("2001:db8::/32")) is not None

    def test_browser_counters_carried(self):
        coarse = reaggregate_beacons(dataset(), ipv4_length=16)
        assert coarse.browser_counts[Browser.CHROME_MOBILE] == (28, 14)

    def test_totals_preserved(self):
        original = dataset()
        coarse = reaggregate_beacons(original, ipv4_length=16)
        assert coarse.total_hits == original.total_hits
        assert coarse.total_api_hits == original.total_api_hits

    def test_validation(self):
        with pytest.raises(ValueError):
            reaggregate_beacons(dataset(), ipv4_length=0)
        with pytest.raises(ValueError):
            reaggregate_beacons(dataset(), ipv4_length=25)
        with pytest.raises(ValueError):
            reaggregate_beacons(dataset(), ipv4_length=24, ipv6_length=64)

    def test_cross_as_merge_rejected(self):
        beacons = BeaconDataset("2016-12")
        beacons.add_counts(SubnetBeaconCounts(p("10.0.0.0/24"), 1, "US", 1, 1, 1))
        beacons.add_counts(SubnetBeaconCounts(p("10.0.1.0/24"), 2, "US", 1, 1, 1))
        with pytest.raises(ValueError):
            reaggregate_beacons(beacons, ipv4_length=16)
