"""Unit tests for repro.net.addr: IPv4/IPv6 parsing and formatting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import (
    AddressError,
    format_ip,
    format_ipv4,
    format_ipv6,
    parse_ip,
    parse_ipv4,
    parse_ipv6,
)


class TestIPv4:
    def test_parse_simple(self):
        assert parse_ipv4("0.0.0.0") == 0
        assert parse_ipv4("255.255.255.255") == (1 << 32) - 1
        assert parse_ipv4("192.0.2.1") == (192 << 24) | (2 << 8) | 1

    def test_format_simple(self):
        assert format_ipv4(0) == "0.0.0.0"
        assert format_ipv4((10 << 24) + 1) == "10.0.0.1"

    @pytest.mark.parametrize(
        "bad",
        ["", "1.2.3", "1.2.3.4.5", "256.1.1.1", "01.2.3.4", "a.b.c.d", "1..2.3"],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_ipv4(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            format_ipv4(-1)
        with pytest.raises(AddressError):
            format_ipv4(1 << 32)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_round_trip(self, value):
        assert parse_ipv4(format_ipv4(value)) == value


class TestIPv6:
    def test_parse_full_form(self):
        assert parse_ipv6("0:0:0:0:0:0:0:1") == 1

    def test_parse_compressed(self):
        assert parse_ipv6("::1") == 1
        assert parse_ipv6("::") == 0
        assert parse_ipv6("2001:db8::") == 0x20010DB8 << 96

    def test_parse_embedded_ipv4(self):
        assert parse_ipv6("::ffff:192.0.2.1") == (0xFFFF << 32) | parse_ipv4(
            "192.0.2.1"
        )

    def test_format_rfc5952_compression(self):
        # Longest zero run is compressed; single zero group is not.
        assert format_ipv6(1) == "::1"
        assert format_ipv6(0) == "::"
        assert format_ipv6(parse_ipv6("2001:db8:0:1:1:1:1:1")) == (
            "2001:db8:0:1:1:1:1:1"
        )
        assert format_ipv6(parse_ipv6("2001:0:0:1:0:0:0:1")) == "2001:0:0:1::1"

    def test_format_lowercase_hex(self):
        text = format_ipv6(0xABCD << 112)
        assert text == text.lower()

    @pytest.mark.parametrize(
        "bad",
        ["", ":::", "1:2", "1:2:3:4:5:6:7:8:9", "g::1", "1::2::3",
         "12345::", "::ffff:1.2.3.4:5"],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_ipv6(bad)

    def test_embedded_ipv4_must_be_last(self):
        with pytest.raises(AddressError):
            parse_ipv6("1.2.3.4::1")

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_round_trip(self, value):
        assert parse_ipv6(format_ipv6(value)) == value


class TestDispatch:
    def test_parse_ip_detects_family(self):
        assert parse_ip("10.0.0.1") == (4, (10 << 24) + 1)
        assert parse_ip("::1") == (6, 1)

    def test_format_ip_dispatches(self):
        assert format_ip(4, 0) == "0.0.0.0"
        assert format_ip(6, 0) == "::"

    def test_format_ip_rejects_unknown_family(self):
        with pytest.raises(AddressError):
            format_ip(5, 0)


class TestFuzzing:
    """Arbitrary junk must raise AddressError, never crash."""

    @given(st.text(max_size=40))
    def test_parse_ip_total(self, text):
        try:
            family, value = parse_ip(text)
        except AddressError:
            return
        # Whatever parsed must round-trip.
        assert parse_ip(format_ip(family, value)) == (family, value)

    @given(st.text(alphabet="0123456789abcdef:.%/", max_size=50))
    def test_parse_ipv6_structured_junk(self, text):
        try:
            parse_ipv6(text)
        except AddressError:
            pass
