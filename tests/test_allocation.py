"""Unit tests for prefix allocation."""

import pytest

from repro.net.asn import ASType
from repro.world.profiles import (
    ACTIVE_SLASH24_BY_CONTINENT,
    CELLULAR_SLASH24_BY_CONTINENT,
    CELLULAR_SLASH48_BY_CONTINENT,
)


class TestStructure:
    def test_no_duplicate_prefixes(self, tiny_world):
        prefixes = [s.prefix for s in tiny_world.subnets()]
        assert len(prefixes) == len(set(prefixes))

    def test_no_overlapping_blocks(self, tiny_world):
        # All /24s are distinct and allocated from disjoint /16 pools,
        # so sorted neighbours must never contain one another.
        v4 = sorted(
            (s.prefix for s in tiny_world.allocation.of_family(4)),
            key=lambda p: p.value,
        )
        for left, right in zip(v4, v4[1:]):
            assert not left.overlaps(right)

    def test_by_asn_index_consistent(self, tiny_world):
        allocation = tiny_world.allocation
        counted = sum(len(subnets) for subnets in allocation.by_asn.values())
        assert counted == len(allocation.subnets)
        for asn, subnets in allocation.by_asn.items():
            assert all(s.asn == asn for s in subnets)

    def test_families_use_paper_granularity(self, tiny_world):
        for subnet in tiny_world.subnets():
            if subnet.family == 4:
                assert subnet.prefix.length == 24
            else:
                assert subnet.prefix.length == 48


class TestCounts:
    def test_active_cellular_scaled_counts(self, tiny_world):
        scale = tiny_world.params.scale
        # Active (demand- or beacon-capable) cellular /24s track the
        # scaled continent totals; ground-truth-only inactive blocks
        # come on top.
        active_cellular = [
            s
            for s in tiny_world.allocation.of_family(4)
            if s.is_cellular and (s.beacon_coverage > 0 or s.demand_weight > 0)
        ]
        expected = sum(CELLULAR_SLASH24_BY_CONTINENT.values()) * scale
        # Per-carrier minimums (2 cellular /24s each) put a floor under
        # the count that dominates at very small scales.
        carriers = len(tiny_world.topology.cellular_plans())
        assert len(active_cellular) >= expected * 0.6
        assert len(active_cellular) <= expected + 2.5 * carriers

    def test_cellular_v6_fraction(self, tiny_world):
        v6 = tiny_world.allocation.of_family(6)
        cellular = [s for s in v6 if s.is_cellular]
        assert 0.004 <= len(cellular) / len(v6) <= 0.03  # paper: 1.2%

    def test_every_carrier_holds_cellular_space(self, tiny_world):
        for plan in tiny_world.topology.cellular_plans():
            subnets = tiny_world.allocation.by_asn.get(plan.record.asn, [])
            cellular = [s for s in subnets if s.is_cellular]
            assert len(cellular) >= 2, plan.record


class TestDemand:
    def test_total_demand_near_one(self, tiny_world):
        assert 0.85 <= tiny_world.allocation.total_demand() <= 1.05

    def test_cgn_concentration(self, tiny_world):
        # Inside each large carrier, the top 10% of cellular subnets by
        # demand carry the overwhelming majority of cellular demand.
        plans = sorted(
            tiny_world.topology.cellular_plans(),
            key=lambda p: p.cellular_demand,
            reverse=True,
        )
        for plan in plans[:5]:
            subnets = [
                s
                for s in tiny_world.allocation.by_asn[plan.record.asn]
                if s.is_cellular and s.family == 4
            ]
            weights = sorted((s.demand_weight for s in subnets), reverse=True)
            total = sum(weights)
            if total <= 0:
                continue
            top = max(1, len(weights) // 10)
            assert sum(weights[:top]) / total > 0.75

    def test_inactive_cellular_blocks_exist(self, tiny_world):
        inactive = [
            s
            for s in tiny_world.allocation.cellular_subnets(4)
            if s.beacon_coverage == 0 and s.demand_weight == 0
        ]
        assert inactive  # ground-truth-only reserves (Table 3 FN source)

    def test_proxy_subnets_have_demand_but_no_beacons(self, tiny_world):
        proxies = [s for s in tiny_world.subnets() if s.proxy_like]
        assert proxies
        for subnet in proxies:
            assert subnet.beacon_coverage == 0
            assert subnet.demand_weight > 0
            assert not subnet.is_cellular


class TestLabelRates:
    def test_cellular_label_rates_high_in_cellular_subnets(self, tiny_world):
        for subnet in tiny_world.allocation.cellular_subnets():
            assert subnet.cellular_label_rate >= 0.7

    def test_fixed_subnets_nearly_noise_free(self, tiny_world):
        fixed_access_asns = {
            p.record.asn
            for p in tiny_world.topology.plans.values()
            if p.record.as_type is ASType.FIXED_ACCESS
        }
        for subnet in tiny_world.subnets():
            if subnet.asn in fixed_access_asns:
                assert subnet.cellular_label_rate < 0.02

    def test_proxy_as_subnets_emit_cellular_labels(self, tiny_world):
        proxy_asns = {
            p.record.asn
            for p in tiny_world.topology.plans.values()
            if p.record.as_type is ASType.PROXY
        }
        rates = [
            s.cellular_label_rate
            for s in tiny_world.subnets()
            if s.asn in proxy_asns
        ]
        assert rates and max(rates) > 0.5  # planted AS-level false positives


class TestScaleParameter:
    def test_rejects_bad_scale(self):
        from repro.world.build import WorldParams

        with pytest.raises(ValueError):
            WorldParams(scale=0)
        with pytest.raises(ValueError):
            WorldParams(scale=1.5)

    def test_scale_changes_subnet_count(self, tiny_world, world):
        # world fixture uses scale 0.005, tiny 0.002.
        assert len(world.subnets()) > len(tiny_world.subnets())


class TestAllocationModel:
    def test_defaults_valid(self):
        from repro.world.allocation import AllocationModel

        AllocationModel()  # must not raise

    def test_validation(self):
        from repro.world.allocation import AllocationModel
        import pytest as _pytest

        with _pytest.raises(ValueError):
            AllocationModel(hot_fraction=0)
        with _pytest.raises(ValueError):
            AllocationModel(hot_share_mixed=1.5)
        with _pytest.raises(ValueError):
            AllocationModel(hot_label_low=0.9, hot_label_high=0.5)
        with _pytest.raises(ValueError):
            AllocationModel(hot_label_low=0.2, hot_label_high=0.9)

    def test_no_cgn_flattens_demand(self):
        from repro.stats.concentration import gini_coefficient
        from repro.world.allocation import AllocationModel
        from repro.world.build import WorldParams, build_world

        params = WorldParams(seed=6, scale=0.0015, background_as_count=50)
        cgn = build_world(params)
        flat = build_world(params, allocation_model=AllocationModel.no_cgn())

        def top_carrier_gini(world):
            biggest = max(
                world.topology.cellular_plans(),
                key=lambda p: p.cellular_demand,
            )
            weights = [
                s.demand_weight
                for s in world.allocation.by_asn[biggest.record.asn]
                if s.is_cellular and s.demand_weight > 0
            ]
            return gini_coefficient(weights)

        assert top_carrier_gini(cgn) > top_carrier_gini(flat) + 0.15

    def test_default_model_matches_legacy_world(self, tiny_world):
        # Explicitly passing the default model reproduces the default
        # world exactly (the refactor changed no behaviour).
        from repro.world.allocation import AllocationModel
        from repro.world.build import build_world

        rebuilt = build_world(
            tiny_world.params, allocation_model=AllocationModel()
        )
        assert len(rebuilt.subnets()) == len(tiny_world.subnets())
        for left, right in zip(rebuilt.subnets()[:300], tiny_world.subnets()[:300]):
            assert left.prefix == right.prefix
            assert left.demand_weight == right.demand_weight
            assert left.cellular_label_rate == right.cellular_label_rate
