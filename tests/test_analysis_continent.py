"""Unit tests for continent-level analyses (Tables 4, 6, 8)."""

import pytest

from repro.analysis.continent import (
    ases_by_continent,
    continent_demand,
    global_cellular_fraction,
    subnets_by_continent,
)
from repro.core.classifier import SubnetClassifier
from repro.core.mixed import OperatorClass, OperatorProfile
from repro.core.ratios import RatioRecord, RatioTable
from repro.datasets.demand_dataset import DemandDataset
from repro.net.prefix import Prefix
from repro.world.geo import Continent, default_geography


def p(text):
    return Prefix.parse(text)


@pytest.fixture()
def geography():
    return default_geography()


@pytest.fixture()
def classification():
    table = RatioTable(
        [
            RatioRecord(p("10.0.0.0/24"), 1, "US", 10, 10, 10),
            RatioRecord(p("10.0.1.0/24"), 1, "US", 10, 0, 10),
            RatioRecord(p("10.0.2.0/24"), 2, "GH", 10, 10, 10),
            RatioRecord(p("2001:db8::/48"), 3, "JP", 10, 10, 10),
            RatioRecord(p("10.0.3.0/24"), 9, "CN", 10, 10, 10),
        ]
    )
    return SubnetClassifier(0.5).classify(table)


@pytest.fixture()
def demand():
    return DemandDataset.from_request_totals(
        [
            (p("10.0.0.0/24"), 1, "US", 500),
            (p("10.0.1.0/24"), 1, "US", 400),
            (p("10.0.2.0/24"), 2, "GH", 50),
            (p("2001:db8::/48"), 3, "JP", 30),
            (p("10.0.3.0/24"), 9, "CN", 20),
        ]
    )


class TestSubnetCensus:
    def test_counts(self, classification, geography):
        census = subnets_by_continent(classification, geography)
        assert census[Continent.NORTH_AMERICA].cellular_slash24 == 1
        assert census[Continent.NORTH_AMERICA].active_slash24 == 2
        assert census[Continent.AFRICA].cellular_slash24 == 1
        assert census[Continent.ASIA].cellular_slash48 == 1
        assert census[Continent.NORTH_AMERICA].pct_active_ipv4 == 0.5

    def test_restriction(self, classification, geography):
        census = subnets_by_continent(
            classification, geography, restrict_to_asns={2}
        )
        assert census[Continent.NORTH_AMERICA].cellular_slash24 == 0
        assert census[Continent.AFRICA].cellular_slash24 == 1
        # Active counts are unaffected by the restriction.
        assert census[Continent.NORTH_AMERICA].active_slash24 == 2


class TestASCensus:
    def test_counts_and_average(self, geography):
        profiles = [
            OperatorProfile(1, "US", 1, 1, 1, 1, 1, OperatorClass.DEDICATED),
            OperatorProfile(2, "US", 1, 1, 1, 1, 1, OperatorClass.MIXED),
            OperatorProfile(3, "CA", 1, 1, 1, 1, 1, OperatorClass.MIXED),
            OperatorProfile(4, "GH", 1, 1, 1, 1, 1, OperatorClass.DEDICATED),
        ]
        census = ases_by_continent(profiles, geography)
        na = census[Continent.NORTH_AMERICA]
        assert na.as_count == 3
        assert na.average_per_country == pytest.approx(1.5)
        assert census[Continent.AFRICA].as_count == 1
        assert census[Continent.EUROPE].as_count == 0
        assert census[Continent.EUROPE].average_per_country == 0.0


class TestContinentDemand:
    def test_china_excluded_by_default(self, classification, demand, geography):
        rows = continent_demand(classification, demand, geography)
        asia = rows[Continent.ASIA]
        # JP only: CN's demand is dropped from both cellular and total.
        assert asia.total_du == pytest.approx(demand.du_of(p("2001:db8::/48")))

    def test_fractions(self, classification, demand, geography):
        rows = continent_demand(classification, demand, geography)
        na = rows[Continent.NORTH_AMERICA]
        assert na.cellular_fraction == pytest.approx(5 / 9)
        assert rows[Continent.AFRICA].cellular_fraction == pytest.approx(1.0)
        shares = sum(r.global_cellular_share for r in rows.values())
        assert shares == pytest.approx(1.0)

    def test_restriction_drops_foreign_asns(
        self, classification, demand, geography
    ):
        rows = continent_demand(
            classification, demand, geography, restrict_to_asns={2, 3}
        )
        assert rows[Continent.NORTH_AMERICA].cellular_du == 0.0
        assert rows[Continent.AFRICA].cellular_du > 0

    def test_global_fraction(self, classification, demand, geography):
        rows = continent_demand(classification, demand, geography)
        value = global_cellular_fraction(rows)
        # Cellular: US 500 + GH 50 + JP 30 = 580 of 980 (CN excluded).
        assert value == pytest.approx(580 / 980)

    def test_subscribers_attached(self, classification, demand, geography):
        rows = continent_demand(classification, demand, geography)
        assert rows[Continent.ASIA].subscribers_m > 0
        # China excluded from the subscriber denominator too.
        total_asia = sum(
            country.subscribers_m
            for country in geography.by_continent(Continent.ASIA)
        )
        assert rows[Continent.ASIA].subscribers_m < total_asia

    def test_demand_per_subscriber(self, classification, demand, geography):
        rows = continent_demand(classification, demand, geography)
        na = rows[Continent.NORTH_AMERICA]
        expected = na.cellular_du / (na.subscribers_m * 1000)
        assert na.demand_per_1000_subscribers == pytest.approx(expected)
