"""Unit tests for country-level analyses (Figures 11 and 12)."""

import pytest

from repro.analysis.country import (
    country_demand_stats,
    frontier_countries,
    top_countries_by_continent,
    top_country_share,
)
from repro.core.classifier import SubnetClassifier
from repro.core.ratios import RatioRecord, RatioTable
from repro.datasets.demand_dataset import DemandDataset
from repro.net.prefix import Prefix
from repro.world.geo import Continent, default_geography


def p(text):
    return Prefix.parse(text)


@pytest.fixture()
def setup():
    table = RatioTable(
        [
            RatioRecord(p("10.0.0.0/24"), 1, "US", 10, 10, 10),
            RatioRecord(p("10.0.1.0/24"), 1, "US", 10, 0, 10),
            RatioRecord(p("10.0.2.0/24"), 2, "GH", 10, 10, 10),
            RatioRecord(p("10.0.3.0/24"), 3, "FR", 10, 0, 10),
        ]
    )
    classification = SubnetClassifier(0.5).classify(table)
    demand = DemandDataset.from_request_totals(
        [
            (p("10.0.0.0/24"), 1, "US", 600),
            (p("10.0.1.0/24"), 1, "US", 300),
            (p("10.0.2.0/24"), 2, "GH", 50),
            (p("10.0.3.0/24"), 3, "FR", 50),
        ]
    )
    return classification, demand, default_geography()


class TestCountryStats:
    def test_fractions(self, setup):
        classification, demand, geography = setup
        stats = country_demand_stats(classification, demand, geography)
        assert stats["US"].cellular_fraction == pytest.approx(2 / 3)
        assert stats["GH"].cellular_fraction == 1.0
        assert stats["FR"].cellular_fraction == 0.0
        shares = sum(row.global_cellular_share for row in stats.values())
        assert shares == pytest.approx(1.0)

    def test_top_country_share(self, setup):
        classification, demand, geography = setup
        stats = country_demand_stats(classification, demand, geography)
        assert top_country_share(stats, 1) == pytest.approx(60_000 / 65_000)
        assert top_country_share(stats, 10) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            top_country_share(stats, 0)

    def test_top_by_continent(self, setup):
        classification, demand, geography = setup
        stats = country_demand_stats(classification, demand, geography)
        grouped = top_countries_by_continent(stats, count=3)
        assert grouped[Continent.NORTH_AMERICA][0].iso2 == "US"
        assert grouped[Continent.AFRICA][0].iso2 == "GH"
        with pytest.raises(ValueError):
            top_countries_by_continent(stats, count=0)

    def test_frontier(self, setup):
        classification, demand, geography = setup
        stats = country_demand_stats(classification, demand, geography)
        frontier = frontier_countries(stats, min_fraction=0.9, min_share=0.5)
        iso = {row.iso2 for row in frontier}
        assert iso == {"US", "GH"}  # US by share, GH by fraction
        # Sorted by global cellular share descending.
        assert frontier[0].iso2 == "US"

    def test_restriction(self, setup):
        classification, demand, geography = setup
        stats = country_demand_stats(
            classification, demand, geography, restrict_to_asns={2}
        )
        assert stats["US"].cellular_du == 0.0
        assert stats["GH"].cellular_du > 0
