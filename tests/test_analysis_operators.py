"""Unit tests for operator-level analyses (Table 7, Figures 5-8)."""

import pytest

from repro.analysis.concentration import subnet_demand_concentration
from repro.analysis.operators import (
    case_study_cdfs,
    case_study_distribution,
    per_operator_fraction_cdfs,
    ranked_operator_demand,
    top_operators,
    top_share,
)
from repro.core.classifier import SubnetClassifier
from repro.core.mixed import OperatorClass, OperatorProfile
from repro.core.ratios import RatioRecord, RatioTable
from repro.datasets.demand_dataset import DemandDataset
from repro.net.prefix import Prefix


def p(text):
    return Prefix.parse(text)


def profile(asn, cellular_du, total_du, country="US", mixed=False,
            cell_subnets=5, total_subnets=20):
    return OperatorProfile(
        asn=asn,
        country=country,
        cellular_du=cellular_du,
        total_du=total_du,
        cellular_fraction_of_demand=cellular_du / total_du if total_du else 0,
        cellular_subnet_count=cell_subnets,
        total_subnet_count=total_subnets,
        operator_class=OperatorClass.MIXED if mixed else OperatorClass.DEDICATED,
    )


PROFILES = [
    profile(1, 50, 52),
    profile(2, 30, 35, country="IN"),
    profile(3, 15, 100, country="JP", mixed=True),
    profile(4, 5, 6, country="DE"),
]


class TestRanking:
    def test_ranked_order(self):
        ranked = ranked_operator_demand(PROFILES)
        assert [rank for rank, _, _ in ranked] == [1, 2, 3, 4]
        assert ranked[0][1].asn == 1
        shares = [share for _, _, share in ranked]
        assert sum(shares) == pytest.approx(1.0)
        assert shares == sorted(shares, reverse=True)

    def test_top_share(self):
        assert top_share(PROFILES, 2) == pytest.approx(0.8)
        assert top_share(PROFILES, 100) == pytest.approx(1.0)

    def test_top_operators_rows(self):
        rows = top_operators(PROFILES, count=3)
        assert [row.country for row in rows] == ["US", "IN", "JP"]
        assert rows[2].mixed
        with pytest.raises(ValueError):
            top_operators(PROFILES, count=0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ranked_operator_demand([])


class TestFractionCDFs:
    def test_cdfs(self):
        demand_cdf, subnet_cdf = per_operator_fraction_cdfs(PROFILES)
        assert demand_cdf.evaluate(1.0) == 1.0
        assert subnet_cdf.evaluate(1.0) == 1.0
        # All subnet fractions are 0.25 here.
        assert subnet_cdf.median == pytest.approx(0.25)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            per_operator_fraction_cdfs([])


@pytest.fixture()
def case_setup():
    table = RatioTable(
        [
            RatioRecord(p("10.0.0.0/24"), 7, "US", 100, 80, 100),
            RatioRecord(p("10.0.1.0/24"), 7, "US", 100, 0, 100),
            RatioRecord(p("10.0.2.0/24"), 7, "US", 100, 99, 100),
            RatioRecord(p("2001:db8::/48"), 7, "US", 100, 99, 100),
            RatioRecord(p("10.0.3.0/24"), 8, "DE", 100, 0, 100),
        ]
    )
    classification = SubnetClassifier(0.5).classify(table)
    demand = DemandDataset.from_request_totals(
        [
            (p("10.0.0.0/24"), 7, "US", 900),
            (p("10.0.2.0/24"), 7, "US", 50),
            (p("10.0.3.0/24"), 8, "DE", 50),
            (p("10.0.9.0/24"), 7, "US", 100),  # demand-only, no beacons
        ]
    )
    return classification, demand


class TestCaseStudies:
    def test_distribution_family_filtered(self, case_setup):
        classification, demand = case_setup
        points = case_study_distribution(classification, demand, 7)
        assert len(points) == 3  # the /48 is excluded by default
        ratios = sorted(point.ratio for point in points)
        assert ratios == [0.0, 0.8, 0.99]

    def test_unknown_asn_raises(self, case_setup):
        classification, demand = case_setup
        with pytest.raises(ValueError):
            case_study_distribution(classification, demand, 999)

    def test_cdfs(self, case_setup):
        classification, demand = case_setup
        points = case_study_distribution(classification, demand, 7)
        subnet_cdf, demand_cdf = case_study_cdfs(points)
        assert subnet_cdf.evaluate(0.5) == pytest.approx(1 / 3)
        assert demand_cdf is not None
        # 900 of 950 DU sits at ratio 0.8.
        assert demand_cdf.evaluate(0.8) == pytest.approx(900 / 950, rel=0.01)


class TestConcentration:
    def test_report(self, case_setup):
        classification, demand = case_setup
        report = subnet_demand_concentration(classification, demand, 7)
        assert report.cellular_subnet_count == 2
        # Fixed curve includes the demand-only subnet 10.0.9.0.
        assert report.fixed_subnet_count == 1
        assert report.cellular_du == pytest.approx(
            demand.du_of(p("10.0.0.0/24")) + demand.du_of(p("10.0.2.0/24"))
        )
        assert report.cellular_covering_993 == 2
        assert 0 <= report.cellular_gini < 1

    def test_requires_both_classes(self, case_setup):
        classification, demand = case_setup
        with pytest.raises(ValueError):
            subnet_demand_concentration(classification, demand, 8)
