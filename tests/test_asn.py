"""Unit tests for AS records, registry, and CAIDA class mapping."""

import pytest

from repro.net.asn import (
    CAIDA_CLASS_OF_TYPE,
    ASRecord,
    ASRegistry,
    ASType,
    CAIDAClass,
)


def record(asn=100, as_type=ASType.CELLULAR_DEDICATED, country="US"):
    return ASRecord(asn, f"AS {asn}", country, as_type)


class TestASType:
    def test_cellular_types(self):
        assert ASType.CELLULAR_DEDICATED.is_cellular
        assert ASType.CELLULAR_MIXED.is_cellular
        assert not ASType.FIXED_ACCESS.is_cellular
        assert not ASType.PROXY.is_cellular

    def test_access_types(self):
        assert ASType.FIXED_ACCESS.is_access
        assert ASType.CELLULAR_MIXED.is_access
        assert not ASType.CONTENT.is_access
        assert not ASType.CLOUD.is_access

    def test_every_type_has_caida_class(self):
        for as_type in ASType:
            assert as_type in CAIDA_CLASS_OF_TYPE

    def test_proxy_and_cloud_map_to_content(self):
        # That mapping is what makes filtering rule 3 effective.
        assert CAIDA_CLASS_OF_TYPE[ASType.PROXY] is CAIDAClass.CONTENT
        assert CAIDA_CLASS_OF_TYPE[ASType.CLOUD] is CAIDAClass.CONTENT


class TestASRecord:
    def test_valid(self):
        rec = record()
        assert rec.is_cellular

    def test_rejects_nonpositive_asn(self):
        with pytest.raises(ValueError):
            ASRecord(0, "x", "US", ASType.TRANSIT)

    @pytest.mark.parametrize("bad", ["us", "USA", "u", ""])
    def test_rejects_bad_country(self, bad):
        with pytest.raises(ValueError):
            ASRecord(1, "x", bad, ASType.TRANSIT)


class TestASRegistry:
    def test_add_get(self):
        registry = ASRegistry()
        registry.add(record(1))
        assert registry.get(1).asn == 1
        assert registry.find(2) is None
        assert 1 in registry
        assert len(registry) == 1

    def test_rejects_duplicates(self):
        registry = ASRegistry()
        registry.add(record(1))
        with pytest.raises(ValueError):
            registry.add(record(1))

    def test_queries(self):
        registry = ASRegistry()
        registry.add(record(1, ASType.CELLULAR_DEDICATED, "US"))
        registry.add(record(2, ASType.CELLULAR_MIXED, "DE"))
        registry.add(record(3, ASType.FIXED_ACCESS, "US"))
        assert {r.asn for r in registry.by_country("US")} == {1, 3}
        assert [r.asn for r in registry.by_type(ASType.CELLULAR_MIXED)] == [2]
        assert registry.cellular_asns() == {1, 2}

    def test_iteration(self):
        registry = ASRegistry()
        registry.add(record(5))
        assert [r.asn for r in registry] == [5]
