"""Unit tests for AS-level identification and the filtering rules."""

import pytest

from repro.core.asn_classifier import (
    ASFilterConfig,
    ExclusionReason,
    aggregate_candidates,
    identify_cellular_ases,
)
from repro.core.classifier import SubnetClassifier
from repro.core.ratios import RatioRecord, RatioTable
from repro.datasets.beacon_dataset import BeaconDataset, SubnetBeaconCounts
from repro.datasets.caida import ASClassificationDataset
from repro.datasets.demand_dataset import DemandDataset
from repro.net.asn import CAIDAClass
from repro.net.prefix import Prefix


def p(text):
    return Prefix.parse(text)


def build_inputs():
    """Three ASes: a real carrier, a low-demand stray, a proxy.

    AS 1 (carrier):   2 cellular subnets, high demand, many hits.
    AS 2 (stray):     1 cellular-looking subnet, negligible demand.
    AS 3 (proxy):     cellular-looking, high demand, but Content class.
    AS 4 (fixed ISP): no cellular subnets -> never a candidate.
    """
    beacons = BeaconDataset("2016-12")
    rows = [
        ("10.0.0.0/24", 1, 500, 100, 95),
        ("10.0.1.0/24", 1, 500, 100, 90),
        ("10.0.2.0/24", 1, 500, 100, 2),   # carrier's fixed-side subnet
        ("20.0.0.0/24", 2, 50, 10, 8),
        ("30.0.0.0/24", 3, 800, 200, 150),
        ("40.0.0.0/24", 4, 900, 100, 1),
    ]
    for subnet, asn, hits, api, cell in rows:
        beacons.add_counts(
            SubnetBeaconCounts(p(subnet), asn, "US", hits, api, cell)
        )
    demand = DemandDataset.from_request_totals(
        [
            (p("10.0.0.0/24"), 1, "US", 3_000_000),
            (p("10.0.1.0/24"), 1, "US", 2_000_000),
            (p("10.0.2.0/24"), 1, "US", 1_000_000),
            (p("10.0.9.0/24"), 1, "US", 500_000),  # demand-only (proxy-like)
            (p("20.0.0.0/24"), 2, "US", 5),        # ~0.05 DU -> rule 1
            (p("30.0.0.0/24"), 3, "US", 2_000_000),
            (p("40.0.0.0/24"), 4, "US", 1_500_000),
        ]
    )
    ratios = RatioTable.from_beacons(beacons)
    classification = SubnetClassifier(0.5).classify(ratios)
    classes = ASClassificationDataset(
        {
            1: CAIDAClass.TRANSIT_ACCESS,
            2: CAIDAClass.TRANSIT_ACCESS,
            3: CAIDAClass.CONTENT,
            4: CAIDAClass.TRANSIT_ACCESS,
        }
    )
    return classification, demand, beacons, classes


class TestAggregation:
    def test_candidates_are_ases_with_cellular_subnets(self):
        classification, demand, beacons, _ = build_inputs()
        candidates = aggregate_candidates(classification, demand, beacons)
        assert set(candidates) == {1, 2, 3}

    def test_carrier_aggregates(self):
        classification, demand, beacons, _ = build_inputs()
        carrier = aggregate_candidates(classification, demand, beacons)[1]
        assert len(carrier.cellular_subnets) == 2
        assert carrier.total_subnets == 3  # observed beacon subnets
        assert carrier.beacon_hits == 1500
        # Cellular demand counts only detected cellular subnets.
        assert carrier.cellular_du == pytest.approx(
            demand.du_of(p("10.0.0.0/24")) + demand.du_of(p("10.0.1.0/24"))
        )
        # Total demand includes demand-only subnets (10.0.9.0).
        expected_total = sum(
            demand.du_of(p(f"10.0.{i}.0/24")) for i in (0, 1, 2, 9)
        )
        assert carrier.total_du == pytest.approx(expected_total)

    def test_fractions(self):
        classification, demand, beacons, _ = build_inputs()
        carrier = aggregate_candidates(classification, demand, beacons)[1]
        assert 0 < carrier.cellular_fraction_of_demand < 1
        assert carrier.cellular_subnet_fraction == pytest.approx(2 / 3)

    def test_empty_classification(self):
        classification, demand, beacons, _ = build_inputs()
        classification.labels = {
            subnet: False for subnet in classification.labels
        }
        assert aggregate_candidates(classification, demand, beacons) == {}


class TestFiltering:
    def test_rules_fire_in_order(self):
        classification, demand, beacons, classes = build_inputs()
        result = identify_cellular_ases(
            classification, demand, beacons,
            classes, ASFilterConfig(min_beacon_hits=100),
        )
        assert set(result.accepted) == {1}
        assert result.excluded[2] is ExclusionReason.LOW_CELLULAR_DEMAND
        assert result.excluded[3] is ExclusionReason.NON_ACCESS_CLASS

    def test_rule2_hits(self):
        classification, demand, beacons, classes = build_inputs()
        result = identify_cellular_ases(
            classification, demand, beacons,
            classes, ASFilterConfig(min_cellular_du=0.0, min_beacon_hits=100),
        )
        # With rule 1 disabled, the stray falls to rule 2 instead.
        assert result.excluded[2] is ExclusionReason.LOW_BEACON_HITS

    def test_rule3_optional(self):
        classification, demand, beacons, classes = build_inputs()
        result = identify_cellular_ases(
            classification, demand, beacons, classes,
            ASFilterConfig(min_beacon_hits=100, require_access_class=False),
        )
        assert 3 in result.accepted

    def test_no_classes_dataset_skips_rule3(self):
        classification, demand, beacons, _ = build_inputs()
        result = identify_cellular_ases(
            classification, demand, beacons, None,
            ASFilterConfig(min_beacon_hits=100),
        )
        assert 3 in result.accepted

    def test_filter_summary_accounting(self):
        classification, demand, beacons, classes = build_inputs()
        result = identify_cellular_ases(
            classification, demand, beacons,
            classes, ASFilterConfig(min_beacon_hits=100),
        )
        rows = result.filter_summary()
        assert len(rows) == 3
        assert rows[-1][2] == result.accepted_count
        total_filtered = sum(filtered for _, filtered, _ in rows)
        assert total_filtered == len(result.excluded)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ASFilterConfig(min_cellular_du=-1)
        with pytest.raises(ValueError):
            ASFilterConfig(min_beacon_hits=-1)
