"""Tests for the world invariant audit."""

from dataclasses import replace

from repro.world.audit import audit_world


class TestAudit:
    def test_healthy_world_clean(self, tiny_world):
        assert audit_world(tiny_world) == []

    def test_detects_planted_violation(self, tiny_world):
        # Corrupt one cellular subnet's label rate below the floor.
        broken = tiny_world
        victim = next(
            s for s in broken.subnets() if s.is_cellular
        )
        index = broken.allocation.subnets.index(victim)
        corrupted = replace(victim, cellular_label_rate=0.1)
        broken.allocation.subnets[index] = corrupted
        broken.allocation.by_prefix[victim.prefix] = corrupted
        try:
            findings = audit_world(broken)
            assert any(f.check == "cellular-label-floor" for f in findings)
        finally:
            broken.allocation.subnets[index] = victim
            broken.allocation.by_prefix[victim.prefix] = victim
