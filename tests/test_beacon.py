"""Tests for the RUM beacon generator.

The key contract: the fast aggregated path (``summarize``) and the
hit-level path (``iter_hits``) realize the same probability model.
"""

import pytest

from repro.cdn.beacon import BeaconConfig, BeaconGenerator
from repro.world.build import WorldParams, build_world


@pytest.fixture(scope="module")
def small_world():
    return build_world(WorldParams(seed=11, scale=0.002, background_as_count=200))


@pytest.fixture(scope="module")
def generator(small_world):
    return BeaconGenerator(
        small_world, BeaconConfig(demand_hits=150_000, base_hits=20)
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BeaconConfig(demand_hits=-1)
        with pytest.raises(ValueError):
            BeaconConfig(base_hits=-0.1)


class TestVolumeModel:
    def test_no_coverage_no_hits(self, small_world, generator):
        covered = [s for s in small_world.subnets() if s.beacon_coverage == 0]
        assert covered
        for subnet in covered[:20]:
            assert generator.mean_hits(subnet) == 0.0

    def test_demand_increases_hits(self, small_world, generator):
        subnets = sorted(
            (s for s in small_world.subnets() if s.beacon_coverage >= 1.0),
            key=lambda s: s.demand_weight,
        )
        assert generator.mean_hits(subnets[-1]) > generator.mean_hits(subnets[0])


class TestSummarize:
    def test_counts_consistent(self, generator):
        dataset = generator.summarize()
        assert len(dataset) > 0
        for counts in dataset:
            assert 0 <= counts.cellular_hits <= counts.api_hits <= counts.hits

    def test_proxy_subnets_absent(self, small_world, generator):
        dataset = generator.summarize()
        for subnet in small_world.subnets():
            if subnet.proxy_like:
                assert dataset.get(subnet.prefix) is None

    def test_browser_counters_match_totals(self, generator):
        dataset = generator.summarize()
        hits = sum(h for h, _ in dataset.browser_counts.values())
        assert hits == dataset.total_hits
        api = sum(a for _, a in dataset.browser_counts.values())
        assert api == dataset.total_api_hits

    def test_deterministic(self, small_world):
        config = BeaconConfig(demand_hits=50_000, base_hits=10)
        a = BeaconGenerator(small_world, config).summarize()
        b = BeaconGenerator(small_world, config).summarize()
        assert len(a) == len(b)
        for counts in a:
            other = b.get(counts.subnet)
            assert other is not None
            assert (counts.hits, counts.api_hits, counts.cellular_hits) == (
                other.hits, other.api_hits, other.cellular_hits,
            )


class TestHitLevelPath:
    def test_hits_carry_valid_addresses(self, small_world):
        generator = BeaconGenerator(
            small_world, BeaconConfig(demand_hits=5_000, base_hits=1)
        )
        seen = 0
        for hit in generator.iter_hits():
            assert hit.subnet.contains_address(hit.family, hit.address)
            seen += 1
            if seen > 500:
                break
        assert seen > 100

    def test_agrees_with_summarize_statistically(self, small_world):
        config = BeaconConfig(demand_hits=150_000, base_hits=20)
        summarized = BeaconGenerator(small_world, config).summarize()
        from_hits = BeaconGenerator(small_world, config).dataset_from_hits()
        # Same volume model, independent randomness: totals within 5%.
        assert from_hits.total_hits == pytest.approx(
            summarized.total_hits, rel=0.05
        )
        assert from_hits.api_share() == pytest.approx(
            summarized.api_share(), rel=0.15
        )
        # Cellular label mass agrees too.
        cell_a = sum(c.cellular_hits for c in summarized)
        cell_b = sum(c.cellular_hits for c in from_hits)
        assert cell_b == pytest.approx(cell_a, rel=0.1)


class TestAPIShare:
    def test_api_share_near_model(self, small_world):
        config = BeaconConfig(demand_hits=150_000, base_hits=20)
        dataset = BeaconGenerator(small_world, config).summarize()
        # Generated share tracks the population model's analytic value
        # (the exact value depends on the cellular hit weight).
        assert 0.08 <= dataset.api_share() <= 0.20
