"""LRU cache pruning: the cache is bounded by *use*, not by creation.

``max_entries`` caps the committed entry count; :meth:`fetch` bumps
an entry's recency, so a hot entry survives stores that evict colder
ones.  Quarantined material and half-written entries are untouchable.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.parallel.cache import META_NAME, QUARANTINE_DIR, DatasetCache

from tests.test_dataset_cache import datasets  # noqa: F401 -- fixture


def _params(index: int) -> dict:
    return {"seed": index, "scale": 0.004, "note": "prune-test"}


def _store(cache, datasets, index: int) -> str:  # noqa: F811
    beacons, demand = datasets
    key = cache.key_for(_params(index))
    cache.store(key, beacons, demand, shards=2, params=_params(index))
    return key


def _age(cache, key, seconds: float) -> None:
    """Backdate an entry's recency stamp (tests can't wait for mtime)."""
    meta = cache.entry_dir(key) / META_NAME
    stamp = time.time() - seconds
    os.utime(meta, (stamp, stamp))


class TestPrune:
    def test_unbounded_cache_never_prunes(self, tmp_path, datasets):  # noqa: F811
        cache = DatasetCache(tmp_path / "c")
        keys = [_store(cache, datasets, i) for i in range(3)]
        assert cache.prune() == []
        assert all(cache.fetch(key) is not None for key in keys)

    def test_store_evicts_least_recently_used(self, tmp_path, datasets):  # noqa: F811
        cache = DatasetCache(tmp_path / "c", max_entries=2)
        first = _store(cache, datasets, 0)
        _age(cache, first, 100)
        second = _store(cache, datasets, 1)
        _age(cache, second, 50)
        third = _store(cache, datasets, 2)  # prunes opportunistically
        assert cache.fetch(first) is None
        assert cache.fetch(second) is not None
        assert cache.fetch(third) is not None

    def test_fetch_refreshes_recency(self, tmp_path, datasets):  # noqa: F811
        cache = DatasetCache(tmp_path / "c", max_entries=2)
        first = _store(cache, datasets, 0)
        second = _store(cache, datasets, 1)
        _age(cache, first, 100)
        _age(cache, second, 50)
        assert cache.fetch(first) is not None  # touch: now most recent
        _store(cache, datasets, 2)
        assert cache.fetch(first) is not None
        assert cache.fetch(second) is None  # the cold one went instead

    def test_explicit_prune_returns_evicted_keys(self, tmp_path, datasets):  # noqa: F811
        cache = DatasetCache(tmp_path / "c")
        keys = [_store(cache, datasets, i) for i in range(3)]
        for age, key in zip((300, 200, 100), keys):
            _age(cache, key, age)
        evicted = cache.prune(max_entries=1)
        assert evicted == keys[:2]  # oldest first
        assert cache.fetch(keys[2]) is not None

    def test_quarantine_is_never_pruned(self, tmp_path, datasets):  # noqa: F811
        cache = DatasetCache(tmp_path / "c", max_entries=1)
        first = _store(cache, datasets, 0)
        # Corrupt it so fetch quarantines the entry.
        shard = next(cache.entry_dir(first).glob("beacon.shard*.json"))
        shard.write_text("{}")
        assert cache.fetch(first) is None
        quarantined = list((cache.root / QUARANTINE_DIR).iterdir())
        assert quarantined
        _store(cache, datasets, 1)
        _store(cache, datasets, 2)  # evicts entry 1, not the quarantine
        assert list((cache.root / QUARANTINE_DIR).iterdir()) == quarantined

    def test_uncommitted_entries_are_invisible_to_prune(
        self, tmp_path, datasets  # noqa: F811
    ):
        cache = DatasetCache(tmp_path / "c", max_entries=1)
        torn = cache.entry_dir("deadbeef")
        torn.mkdir(parents=True)
        (torn / "beacon.shard0.json").write_text("{}")  # no meta.json
        _store(cache, datasets, 0)
        _store(cache, datasets, 1)
        assert torn.exists()  # prune only sees committed entries

    def test_bad_max_entries_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DatasetCache(tmp_path / "c", max_entries=0)
        with pytest.raises(ValueError):
            DatasetCache(tmp_path / "c").prune(max_entries=0)
