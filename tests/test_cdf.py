"""Unit and property tests for EmpiricalCDF."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.cdf import EmpiricalCDF


class TestBasics:
    def test_unweighted_steps(self):
        cdf = EmpiricalCDF([1, 2, 3, 4])
        assert cdf.evaluate(0) == 0.0
        assert cdf.evaluate(1) == 0.25
        assert cdf.evaluate(2.5) == 0.5
        assert cdf.evaluate(4) == 1.0
        assert cdf.evaluate(100) == 1.0

    def test_duplicates_merge(self):
        cdf = EmpiricalCDF([1, 1, 2])
        assert len(cdf) == 2
        assert cdf.evaluate(1) == pytest.approx(2 / 3)

    def test_weighted(self):
        cdf = EmpiricalCDF([0, 1], weights=[3, 1])
        assert cdf.evaluate(0) == 0.75
        assert cdf.total_weight == 4

    def test_fraction_helpers(self):
        cdf = EmpiricalCDF([1, 2, 3, 4])
        assert cdf.fraction_below(2) == 0.25
        assert cdf.fraction_above(2) == 0.5
        assert cdf.fraction_between(2, 3) == 0.5
        with pytest.raises(ValueError):
            cdf.fraction_between(3, 2)

    def test_min_max_median(self):
        cdf = EmpiricalCDF([5, 1, 3])
        assert cdf.min == 1
        assert cdf.max == 5
        assert cdf.median == 3

    def test_quantile(self):
        cdf = EmpiricalCDF([10, 20, 30, 40])
        assert cdf.quantile(0.25) == 10
        assert cdf.quantile(0.26) == 20
        assert cdf.quantile(1.0) == 40
        with pytest.raises(ValueError):
            cdf.quantile(0)
        with pytest.raises(ValueError):
            cdf.quantile(1.1)

    def test_points(self):
        cdf = EmpiricalCDF([1, 2])
        assert cdf.points() == [(1, 0.5), (2, 1.0)]

    def test_sampled_points(self):
        cdf = EmpiricalCDF(range(100))
        sampled = cdf.sampled_points(5)
        assert len(sampled) == 5
        assert sampled[0][0] == 0
        assert sampled[-1][0] == 99
        with pytest.raises(ValueError):
            cdf.sampled_points(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])
        with pytest.raises(ValueError):
            EmpiricalCDF([1], weights=[1, 2])
        with pytest.raises(ValueError):
            EmpiricalCDF([1], weights=[-1])
        with pytest.raises(ValueError):
            EmpiricalCDF([1, 2], weights=[0, 0])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60))
def test_monotonic_and_bounded(values):
    cdf = EmpiricalCDF(values)
    probes = sorted(values) + [min(values) - 1, max(values) + 1]
    previous = 0.0
    for probe in sorted(probes):
        result = cdf.evaluate(probe)
        assert 0.0 <= result <= 1.0 + 1e-9
        assert result >= previous - 1e-9
        previous = result


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=40),
    st.floats(min_value=0.01, max_value=1.0),
)
def test_quantile_inverts_cdf(values, level):
    cdf = EmpiricalCDF(values)
    value = cdf.quantile(level)
    assert cdf.evaluate(value) >= level - 1e-9


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40))
def test_buckets_partition_weight(values):
    cdf = EmpiricalCDF(values)
    below = cdf.fraction_below(50)
    between = cdf.fraction_between(50, 75)
    above = cdf.fraction_above(75)
    assert below + between + above == pytest.approx(1.0)
