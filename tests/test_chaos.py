"""Chaos runner report model + ``cellspot chaos`` CLI plumbing.

The full drill matrix (world generation + pools + serve loops) runs in
CI's ``chaos-smoke`` job via ``cellspot chaos``; here we pin the report
semantics and the CLI's failure paths, which must stay cheap.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.runtime.chaos import ChaosReport, DrillResult


class TestReportModel:
    def test_drill_ok_requires_recovery_and_no_divergence(self):
        assert DrillResult(drill="d", faults=[], recovered=True,
                           identical=True).ok
        assert DrillResult(drill="d", faults=[], recovered=True,
                           identical=None).ok  # shed-only drills
        assert not DrillResult(drill="d", faults=[], recovered=False,
                               identical=True).ok
        assert not DrillResult(drill="d", faults=[], recovered=True,
                               identical=False).ok

    def test_report_ok_is_conjunction(self):
        good = DrillResult(drill="a", faults=["x"], recovered=True,
                           identical=True)
        bad = DrillResult(drill="b", faults=["y"], recovered=False)
        assert ChaosReport(plan="p", seed=1, drills=[good]).ok
        assert not ChaosReport(plan="p", seed=1, drills=[good, bad]).ok

    def test_unmatched_faults_fail_the_report(self):
        good = DrillResult(drill="a", faults=["x"], recovered=True,
                           identical=True)
        report = ChaosReport(plan="p", seed=1, drills=[good],
                             unmatched_faults=["typo-site"])
        assert not report.ok

    def test_to_dict_round_trips_through_json(self):
        report = ChaosReport(
            plan="p", seed=7,
            drills=[DrillResult(drill="a", faults=["x"],
                                injected={"x": 2}, recovered=True,
                                identical=True, detail="healed")],
            retry_alert={"fired": True, "resolved": True},
            p99_state="ok",
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["drills"][0]["injected"] == {"x": 2}
        assert payload["retry_alert"]["fired"] is True

    def test_render_mentions_every_drill_and_verdict(self):
        report = ChaosReport(
            plan="p", seed=1,
            drills=[DrillResult(drill="executor", faults=["x"],
                                recovered=True, identical=True)],
        )
        rendered = report.render()
        assert "executor" in rendered
        assert "ok" in rendered


class TestChaosCli:
    def test_unreadable_plan_exits_2(self, tmp_path, capsys):
        assert main(["chaos", "--plan", str(tmp_path / "nope.toml")]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_plan_exits_2(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text('{"faults": []}')
        assert main(["chaos", "--plan", str(plan)]) == 2
        assert "error" in capsys.readouterr().err
