"""Unit tests for the threshold subnet classifier."""

import pytest

from repro.core.classifier import ClassificationResult, SubnetClassifier
from repro.core.ratios import RatioRecord, RatioTable
from repro.net.prefix import Prefix


def record(subnet, api, cell, asn=1, country="US"):
    return RatioRecord(Prefix.parse(subnet), asn, country, api, cell, api)


def table(*records):
    return RatioTable(records)


class TestSubnetClassifier:
    def test_threshold_is_inclusive(self):
        classifier = SubnetClassifier(threshold=0.5)
        assert classifier.is_cellular(record("10.0.0.0/24", 10, 5))
        assert not classifier.is_cellular(record("10.0.1.0/24", 10, 4))

    def test_min_api_hits_gate(self):
        classifier = SubnetClassifier(threshold=0.5, min_api_hits=5)
        assert not classifier.is_cellular(record("10.0.0.0/24", 4, 4))
        assert classifier.is_cellular(record("10.0.0.0/24", 5, 5))

    def test_validation(self):
        with pytest.raises(ValueError):
            SubnetClassifier(threshold=0.0)
        with pytest.raises(ValueError):
            SubnetClassifier(threshold=1.5)
        with pytest.raises(ValueError):
            SubnetClassifier(min_api_hits=0)

    def test_classify_table(self):
        result = SubnetClassifier(0.5).classify(
            table(
                record("10.0.0.0/24", 10, 9),
                record("10.0.1.0/24", 10, 1),
            )
        )
        assert result.is_cellular(Prefix.parse("10.0.0.0/24"))
        assert not result.is_cellular(Prefix.parse("10.0.1.0/24"))
        assert len(result) == 2


class TestClassificationResult:
    @pytest.fixture()
    def result(self):
        return SubnetClassifier(0.5).classify(
            table(
                record("10.0.0.0/24", 10, 9, asn=1),
                record("10.0.1.0/24", 10, 8, asn=1),
                record("10.0.2.0/24", 10, 0, asn=2),
                record("2001:db8::/48", 10, 10, asn=3),
            )
        )

    def test_unobserved_defaults_fixed(self, result):
        assert not result.is_cellular(Prefix.parse("99.0.0.0/24"))

    def test_cellular_subnets_by_family(self, result):
        assert len(result.cellular_subnets(4)) == 2
        assert len(result.cellular_subnets(6)) == 1
        assert len(result.cellular_subnets()) == 3
        assert result.cellular_count(4) == 2

    def test_cellular_set(self, result):
        assert Prefix.parse("10.0.0.0/24") in result.cellular_set()
        assert Prefix.parse("10.0.2.0/24") not in result.cellular_set()

    def test_fraction_of_active(self, result):
        assert result.cellular_fraction_of_active(4) == pytest.approx(2 / 3)
        assert result.cellular_fraction_of_active(6) == 1.0

    def test_fraction_requires_observations(self):
        empty = ClassificationResult(threshold=0.5, labels={}, records={})
        with pytest.raises(ValueError):
            empty.cellular_fraction_of_active(4)

    def test_asns_with_cellular(self, result):
        assert result.asns_with_cellular() == {1: 2, 3: 1}
