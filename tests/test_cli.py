"""Tests for the cellspot CLI (small scale to keep the suite fast)."""

import pytest

from repro.cli import build_parser, main

ARGS = ["--scale", "0.002", "--seed", "21"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("world", "run", "all", "datasets"):
            args = parser.parse_args([command] + ARGS)
            assert callable(args.func)
        args = parser.parse_args(["experiment", "table5"] + ARGS)
        assert args.id == "table5"

    def test_resilience_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "--max-retries", "0", "--shard-timeout", "1.5",
             "--hedge"] + ARGS
        )
        assert args.max_retries == 0
        assert args.shard_timeout == 1.5
        assert args.hedge is True
        args = parser.parse_args(["all"] + ARGS)
        assert args.max_retries == 2 and args.shard_timeout is None

    @pytest.mark.parametrize(
        "flags",
        [
            ["run", "--max-retries", "-1"],
            ["run", "--shard-timeout", "0"],
            ["run", "--shard-timeout", "-2"],
            ["serve", "--max-pending", "0"],
            ["serve", "--deadline", "0"],
        ],
    )
    def test_resilience_flags_validated(self, flags):
        with pytest.raises(SystemExit):
            build_parser().parse_args(flags)


class TestCommands:
    def test_world(self, capsys):
        assert main(["world"] + ARGS) == 0
        out = capsys.readouterr().out
        assert "cellular ASes" in out

    def test_run(self, capsys):
        assert main(["run"] + ARGS) == 0
        out = capsys.readouterr().out
        assert "accepted cellular ASes" in out
        assert "BEACON" in out and "DEMAND" in out

    def test_experiment(self, capsys):
        assert main(["experiment", "table5"] + ARGS) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"] + ARGS) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_datasets(self, tmp_path, capsys):
        assert main(["datasets", "--out", str(tmp_path)] + ARGS) == 0
        assert (tmp_path / "beacon.jsonl").exists()
        assert (tmp_path / "demand.jsonl").exists()
        # Round-trip what the CLI wrote.
        from repro.datasets.beacon_dataset import BeaconDataset

        with (tmp_path / "beacon.jsonl").open() as stream:
            dataset = BeaconDataset.load(stream)
        assert len(dataset) > 0


class TestPrefixList:
    def test_prefixlist_export(self, tmp_path, capsys):
        out = tmp_path / "cells.csv"
        assert main(["prefixlist", "--out", str(out)] + ARGS) == 0
        assert out.exists()
        from repro.core.export import CellularPrefixList

        with out.open() as stream:
            prefix_list = CellularPrefixList.from_csv(stream)
        assert len(prefix_list) > 0

    def test_prefixlist_no_aggregate_is_larger(self, tmp_path):
        aggregated = tmp_path / "agg.csv"
        raw = tmp_path / "raw.csv"
        main(["prefixlist", "--out", str(aggregated)] + ARGS)
        main(["prefixlist", "--out", str(raw), "--no-aggregate"] + ARGS)
        assert raw.read_text().count("\n") >= aggregated.read_text().count("\n")

    def test_report_writes_markdown(self, tmp_path):
        out = tmp_path / "EXPERIMENTS.md"
        code = main(["report", "--out", str(out)] + ARGS)
        text = out.read_text()
        assert "# EXPERIMENTS" in text
        assert "table8" in text
        assert code in (0, 1)  # tiny worlds may diverge on some checks


class TestValidate:
    def _export(self, tmp_path):
        main(["datasets", "--out", str(tmp_path)] + ARGS)
        return tmp_path / "beacon.jsonl", tmp_path / "demand.jsonl"

    def test_clean_files_pass(self, tmp_path, capsys):
        beacon, demand = self._export(tmp_path)
        assert main(["validate", str(beacon), str(demand)]) == 0
        out = capsys.readouterr().out
        assert "0 rejected" in out

    def test_corrupted_file_fails_with_line_detail(self, tmp_path, capsys):
        beacon, demand = self._export(tmp_path)
        lines = beacon.read_text().splitlines()
        lines[3] = "not json"
        beacon.write_text("\n".join(lines) + "\n")
        assert main(["validate", str(beacon), str(demand)]) == 1
        out = capsys.readouterr().out
        assert "1 rejected" in out
        assert "line 4" in out

    def test_quarantine_dir_writes_sidecar(self, tmp_path, capsys):
        beacon, demand = self._export(tmp_path)
        lines = beacon.read_text().splitlines()
        lines[2] = '{"broken'
        beacon.write_text("\n".join(lines) + "\n")
        qdir = tmp_path / "quarantine"
        assert main([
            "validate", str(beacon), str(demand),
            "--quarantine-dir", str(qdir),
        ]) == 1
        sidecar = qdir / "beacon.quarantine.jsonl"
        assert sidecar.exists()
        from repro.runtime.quarantine import read_quarantine

        with sidecar.open() as stream:
            records = list(read_quarantine(stream))
        assert len(records) == 1 and records[0].error.line_no == 3

    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        beacon, demand = self._export(tmp_path)
        assert main(["validate", str(tmp_path / "nope.jsonl"), str(demand)]) == 2
        assert "no such file" in capsys.readouterr().err


class TestWorldAudit:
    def test_audit_flag(self, capsys):
        assert main(["world", "--audit"] + ARGS) == 0
        assert "invariants hold" in capsys.readouterr().out


class TestEvolve:
    def test_evolve_command(self, capsys):
        assert main(["evolve", "--months", "1"] + ARGS) == 0
        out = capsys.readouterr().out
        assert "churn" in out
        assert "prefix list covers" in out
