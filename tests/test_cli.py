"""Tests for the cellspot CLI (small scale to keep the suite fast)."""

import pytest

from repro.cli import build_parser, main

ARGS = ["--scale", "0.002", "--seed", "21"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("world", "run", "all", "datasets"):
            args = parser.parse_args([command] + ARGS)
            assert callable(args.func)
        args = parser.parse_args(["experiment", "table5"] + ARGS)
        assert args.id == "table5"


class TestCommands:
    def test_world(self, capsys):
        assert main(["world"] + ARGS) == 0
        out = capsys.readouterr().out
        assert "cellular ASes" in out

    def test_run(self, capsys):
        assert main(["run"] + ARGS) == 0
        out = capsys.readouterr().out
        assert "accepted cellular ASes" in out
        assert "BEACON" in out and "DEMAND" in out

    def test_experiment(self, capsys):
        assert main(["experiment", "table5"] + ARGS) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"] + ARGS) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_datasets(self, tmp_path, capsys):
        assert main(["datasets", "--out", str(tmp_path)] + ARGS) == 0
        assert (tmp_path / "beacon.jsonl").exists()
        assert (tmp_path / "demand.jsonl").exists()
        # Round-trip what the CLI wrote.
        from repro.datasets.beacon_dataset import BeaconDataset

        with (tmp_path / "beacon.jsonl").open() as stream:
            dataset = BeaconDataset.load(stream)
        assert len(dataset) > 0


class TestPrefixList:
    def test_prefixlist_export(self, tmp_path, capsys):
        out = tmp_path / "cells.csv"
        assert main(["prefixlist", "--out", str(out)] + ARGS) == 0
        assert out.exists()
        from repro.core.export import CellularPrefixList

        with out.open() as stream:
            prefix_list = CellularPrefixList.from_csv(stream)
        assert len(prefix_list) > 0

    def test_prefixlist_no_aggregate_is_larger(self, tmp_path):
        aggregated = tmp_path / "agg.csv"
        raw = tmp_path / "raw.csv"
        main(["prefixlist", "--out", str(aggregated)] + ARGS)
        main(["prefixlist", "--out", str(raw), "--no-aggregate"] + ARGS)
        assert raw.read_text().count("\n") >= aggregated.read_text().count("\n")

    def test_report_writes_markdown(self, tmp_path):
        out = tmp_path / "EXPERIMENTS.md"
        code = main(["report", "--out", str(out)] + ARGS)
        text = out.read_text()
        assert "# EXPERIMENTS" in text
        assert "table8" in text
        assert code in (0, 1)  # tiny worlds may diverge on some checks


class TestWorldAudit:
    def test_audit_flag(self, capsys):
        assert main(["world", "--audit"] + ARGS) == 0
        assert "invariants hold" in capsys.readouterr().out


class TestEvolve:
    def test_evolve_command(self, capsys):
        assert main(["evolve", "--months", "1"] + ARGS) == 0
        out = capsys.readouterr().out
        assert "churn" in out
        assert "prefix list covers" in out
