"""CLI observability: --metrics-out/--trace-out/--profile and `stats`."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.metrics import parse_prometheus_text

ARGS = ["--scale", "0.002", "--seed", "21"]


class TestTelemetryFlags:
    def test_run_writes_prometheus_metrics(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        assert main(["run", "--metrics-out", str(out)] + ARGS) == 0
        parsed = parse_prometheus_text(out.read_text())
        assert "pipeline_runs_total" not in parsed  # no phantom metrics
        assert "process_uptime_seconds" in parsed
        # The serial pipeline itself records nothing; the executor and
        # ingest metrics appear only on instrumented paths.
        for payload in parsed.values():
            assert payload["type"] in {"counter", "gauge", "histogram"}

    def test_run_with_shards_emits_shard_metrics(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        code = main(
            ["run", "--workers", "2", "--shards", "2",
             "--metrics-out", str(out)] + ARGS
        )
        assert code == 0
        parsed = parse_prometheus_text(out.read_text())
        samples = {
            name: value
            for name, _labels, value
            in parsed["shards_executed_total"]["samples"]
        }
        assert samples["shards_executed_total"] == 2

    def test_run_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            ["run", "--workers", "2", "--shards", "2",
             "--trace-out", str(out)] + ARGS
        )
        assert code == 0
        trace = json.loads(out.read_text())
        names = {event["name"] for event in trace["traceEvents"]}
        assert "cellspot.run" in names
        assert "stage.spot_shards" in names
        assert "shard.spot_shard" in names
        trace_ids = {
            event["args"]["trace_id"] for event in trace["traceEvents"]
        }
        assert trace_ids == {trace["otherData"]["trace_id"]}

    def test_metrics_json_extension_switches_format(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert main(["run", "--metrics-out", str(out)] + ARGS) == 0
        payload = json.loads(out.read_text())
        assert "_uptime_s" in payload

    def test_profile_writes_report(self, tmp_path, capsys):
        out = tmp_path / "profile.txt"
        code = main(
            ["run", "--profile", "--profile-out", str(out)] + ARGS
        )
        assert code == 0
        assert "cumulative" in out.read_text()
        assert out.with_suffix(".txt.pstats").exists()


class TestStatsCommand:
    def _write_metrics(self, tmp_path):
        out = tmp_path / "m.prom"
        assert main(
            ["run", "--workers", "1", "--shards", "2",
             "--metrics-out", str(out)] + ARGS
        ) == 0
        return out

    def _write_trace(self, tmp_path):
        out = tmp_path / "t.json"
        assert main(["run", "--trace-out", str(out)] + ARGS) == 0
        return out

    def test_requires_at_least_one_input(self, capsys):
        assert main(["stats"]) == 2
        assert "metrics" in capsys.readouterr().err

    def test_renders_prometheus_metrics(self, tmp_path, capsys):
        out = self._write_metrics(tmp_path)
        capsys.readouterr()
        assert main(["stats", "--metrics", str(out)]) == 0
        text = capsys.readouterr().out
        assert "shards_executed_total" in text
        assert "process_uptime_seconds" in text

    def test_renders_json_metrics(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert main(["run", "--metrics-out", str(out)] + ARGS) == 0
        capsys.readouterr()
        assert main(["stats", "--metrics", str(out)]) == 0
        assert "process_uptime_seconds" in capsys.readouterr().out

    def test_renders_trace_summary(self, tmp_path, capsys):
        out = self._write_trace(tmp_path)
        capsys.readouterr()
        assert main(["stats", "--trace", str(out)]) == 0
        text = capsys.readouterr().out
        assert "cellspot.run" in text
        assert "spans" in text

    def test_unreadable_metrics_file_is_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "m.prom"
        bad.write_text("mystery_total 1\n")
        assert main(["stats", "--metrics", str(bad)]) == 2
        assert capsys.readouterr().err

    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        assert main(["stats", "--metrics", str(tmp_path / "nope.prom")]) == 2

    def test_trace_without_events_list_is_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "t.json"
        bad.write_text(json.dumps({"notTrace": True}))
        assert main(["stats", "--trace", str(bad)]) == 2


class TestValidateHasObsFlags:
    def test_validate_accepts_metrics_out(self, tmp_path, capsys):
        assert main(["datasets", "--out", str(tmp_path)] + ARGS) == 0
        out = tmp_path / "m.prom"
        code = main(
            ["validate", str(tmp_path / "beacon.jsonl"),
             str(tmp_path / "demand.jsonl"), "--metrics-out", str(out)]
        )
        assert code == 0
        parsed = parse_prometheus_text(out.read_text())
        # Strict-ingesting both files lands on the ingest counters.
        samples = {
            name: value
            for name, _labels, value
            in parsed["ingest_lines_total"]["samples"]
        }
        assert samples["ingest_lines_total"] > 0
