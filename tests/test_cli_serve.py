"""CLI front end for the online service, plus argument validation."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.net.addr import format_ip


@pytest.fixture()
def hits_file(tmp_path, beacon_hits):
    path = tmp_path / "hits.jsonl"
    with path.open("w") as stream:
        for hit in beacon_hits[:8000]:
            stream.write(hit.to_json() + "\n")
    return path


def _known_address(beacon_hits) -> str:
    return format_ip(beacon_hits[0].family, beacon_hits[0].address)


class TestArgumentValidation:
    @pytest.mark.parametrize("flag,value", [
        ("--workers", "0"),
        ("--workers", "-1"),
        ("--workers", "two"),
        ("--shards", "0"),
        ("--shards", "-3"),
    ])
    def test_nonpositive_parallelism_is_rejected(self, capsys, flag, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", flag, value])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["run", "serve", "query"])
    def test_every_command_validates_workers(self, capsys, command):
        argv = [command, "--workers", "0"]
        if command == "query":
            argv.insert(1, "192.0.2.1")
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2

    def test_serve_rejects_bad_window(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--window-events", "0"])

    def test_events_and_generate_conflict(self, capsys, hits_file):
        assert main(
            ["serve", "--events", str(hits_file), "--generate"]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestServeCommand:
    def test_stdin_stdout_session(
        self, monkeypatch, capsys, hits_file, beacon_hits, tmp_path
    ):
        requests = "\n".join([
            json.dumps({"op": "query", "q": _known_address(beacon_hits)}),
            json.dumps({"op": "query", "qs": ["bad query", "10.0.0.1"]}),
            json.dumps({"op": "stats"}),
            "this is not json",
            json.dumps({"op": "shutdown"}),
        ]) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(requests))
        snapshot = tmp_path / "snap.json"
        code = main([
            "serve", "--events", str(hits_file),
            "--snapshot", str(snapshot),
            "--window-events", "4096",
        ])
        assert code == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        assert len(lines) == 5
        assert lines[0]["ok"] and lines[0]["result"]["matched"]
        assert [r["ok"] for r in lines[1]["results"]] == [False, True]
        assert lines[2]["engine"]["events_consumed"] > 0
        assert lines[3]["ok"] is False
        assert lines[4]["shutdown"] is True
        assert snapshot.exists()

    def test_resume_then_drain_matches_batch(
        self, monkeypatch, capsys, hits_file, beacon_hits, tmp_path
    ):
        """Serve, kill (shutdown mid-stream), re-serve: exact totals."""
        snapshot = tmp_path / "snap.json"
        monkeypatch.setattr(
            "sys.stdin", io.StringIO('{"op": "shutdown"}\n')
        )
        assert main([
            "serve", "--events", str(hits_file),
            "--snapshot", str(snapshot), "--ingest-batch", "3000",
        ]) == 0
        consumed_early = json.loads(snapshot.read_text())["events_consumed"]
        assert 0 < consumed_early < 8000
        capsys.readouterr()

        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main([
            "serve", "--events", str(hits_file),
            "--snapshot", str(snapshot),
        ]) == 0
        capsys.readouterr()
        final = json.loads(snapshot.read_text())
        assert final["events_consumed"] == 8000

        from repro.stream import StreamEngine

        resumed = StreamEngine.load_snapshot(snapshot)
        direct = StreamEngine(policy=resumed.policy)
        direct.ingest_many(beacon_hits[:8000])
        assert resumed.ratio_table() == direct.ratio_table()

    def test_stale_snapshot_policy_is_exit_2(
        self, monkeypatch, capsys, hits_file, tmp_path
    ):
        snapshot = tmp_path / "snap.json"
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main([
            "serve", "--events", str(hits_file),
            "--snapshot", str(snapshot), "--window-events", "1000",
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", "--events", str(hits_file),
            "--snapshot", str(snapshot), "--window-events", "2000",
        ]) == 2
        assert "window policy" in capsys.readouterr().err


class TestQueryCommand:
    def test_one_shot_against_event_file(
        self, capsys, hits_file, beacon_hits
    ):
        code = main([
            "query", _known_address(beacon_hits),
            "--events", str(hits_file),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["matched"] is True
        assert payload["subnet"] == str(beacon_hits[0].subnet)

    def test_malformed_query_is_exit_1(self, capsys, hits_file):
        code = main(["query", "junk", "--events", str(hits_file)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["ok"] is False

    def test_queries_from_stdin(
        self, monkeypatch, capsys, hits_file, beacon_hits
    ):
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(_known_address(beacon_hits) + "\n10.255.0.9\n"),
        )
        code = main(["query", "-", "--events", str(hits_file)])
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2

    def test_no_source_is_exit_2(self, capsys, tmp_path):
        code = main([
            "query", "192.0.2.1", "--snapshot", str(tmp_path / "nope.json"),
        ])
        assert code == 2
        assert "no events" in capsys.readouterr().err


class TestDatasetsHits:
    def test_hits_export_round_trips_into_serve(
        self, capsys, tmp_path, monkeypatch
    ):
        code = main([
            "datasets", "--out", str(tmp_path), "--hits",
            "--hit-volume", "2000", "--base-hits", "1.0",
            "--scale", "0.002", "--seed", "3",
        ])
        assert code == 0
        hits_path = tmp_path / "hits.jsonl"
        assert hits_path.exists()
        capsys.readouterr()

        monkeypatch.setattr("sys.stdin", io.StringIO('{"op":"stats"}\n'))
        assert main(["serve", "--events", str(hits_path)]) == 0
        response = json.loads(capsys.readouterr().out.splitlines()[0])
        assert response["engine"]["events_consumed"] > 0
