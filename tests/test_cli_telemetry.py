"""CLI telemetry surface: top, alerts, bench-diff, report --health,
and the serve command's continuous-telemetry flags."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.obs.alerts import AlertEngine, AlertRule
from repro.obs.benchdiff import metric_record, write_bench_report
from repro.obs.timeseries import TimeSeriesStore


@pytest.fixture()
def timeseries_dir(tmp_path):
    store = TimeSeriesStore(tmp_path / "ts")
    store.append({"ts": 10.0, "m": {
        "stream_events_total": ["c", 1000],
        "census_ratio_psi": ["g", 0.1],
    }})
    store.append({"ts": 12.0, "m": {
        "stream_events_total": ["c", 5000],
        "census_ratio_psi": ["g", 0.4],
        "stream_tracked_subnets": ["g", 77],
    }})
    return tmp_path / "ts"


@pytest.fixture()
def alert_log(tmp_path):
    log = tmp_path / "alerts.jsonl"
    engine = AlertEngine(
        [AlertRule(name="drift", metric="census_ratio_psi",
                   threshold=0.25)],
        log_path=log, trace_id="trace-1",
    )
    engine.observe({"ts": 1.0, "m": {"census_ratio_psi": ["g", 0.5]}})
    engine.observe({"ts": 2.0, "m": {"census_ratio_psi": ["g", 0.1]}})
    return log


@pytest.fixture()
def rules_file(tmp_path):
    path = tmp_path / "rules.json"
    path.write_text(json.dumps({"rules": [
        {"name": "depth", "metric": "queue_depth", "threshold": 10,
         "for_s": 2.0},
    ]}))
    return path


class TestTopCommand:
    def test_requires_a_source(self, capsys):
        assert main(["top"]) == 2
        assert "--socket" in capsys.readouterr().err

    def test_renders_from_timeseries_dir(self, capsys, timeseries_dir):
        code = main(["top", "--timeseries-dir", str(timeseries_dir),
                     "--once"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cellspot top" in out
        assert "5,000" in out  # events from the latest scrape
        assert "\x1b[" not in out  # --once never clears the screen

    def test_renders_from_metrics_dump(self, capsys, tmp_path):
        dump = tmp_path / "metrics.json"
        dump.write_text(json.dumps({
            "stream_events_total": {"type": "counter", "value": 42},
        }))
        assert main(["top", "--metrics", str(dump), "--once"]) == 0
        assert "42" in capsys.readouterr().out

    def test_static_source_defaults_to_one_frame(self, capsys, tmp_path):
        dump = tmp_path / "metrics.json"
        dump.write_text(json.dumps({}))
        # No --once / --iterations: a static file must not spin forever.
        assert main(["top", "--metrics", str(dump)]) == 0
        assert capsys.readouterr().out.count("cellspot top") == 1

    def test_empty_source_exits_one(self, capsys, tmp_path):
        code = main(["top", "--timeseries-dir", str(tmp_path / "nope"),
                     "--once"])
        assert code == 1
        assert "no health data" in capsys.readouterr().err

    def test_dead_socket_exits_one(self, capsys, tmp_path):
        code = main(["top", "--socket", str(tmp_path / "absent.sock"),
                     "--once"])
        assert code == 1


class TestAlertsCommand:
    def test_requires_a_mode(self, capsys):
        assert main(["alerts"]) == 2
        assert "--log" in capsys.readouterr().err

    def test_validates_rule_file(self, capsys, rules_file):
        assert main(["alerts", "--rules", str(rules_file)]) == 0
        out = capsys.readouterr().out
        assert "1 valid rule(s)" in out
        assert "depth: queue_depth > 10 for 2s" in out

    def test_invalid_rule_file_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"rules": [{"name": "x"}]}')
        assert main(["alerts", "--rules", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_log_pretty_print(self, capsys, alert_log):
        assert main(["alerts", "--log", str(alert_log)]) == 0
        out = capsys.readouterr().out
        assert "drift: ok -> firing" in out
        assert "trace trace-1" in out
        assert "2 transition(s), 1 firing episode(s)" in out

    def test_log_json_emits_episodes(self, capsys, alert_log):
        assert main(["alerts", "--log", str(alert_log), "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        episode = json.loads(lines[0])
        assert episode["rule"] == "drift"
        assert episode["fired"] is True
        assert episode["trace_id"] == "trace-1"

    def test_rule_filter_drops_other_rules(self, capsys, alert_log):
        assert main(["alerts", "--log", str(alert_log),
                     "--rule", "other"]) == 0
        out = capsys.readouterr().out
        assert "0 transition(s)" in out


class TestBenchDiffCommand:
    def _write(self, path, value, threshold=None):
        write_bench_report(
            path, "x",
            tests={"test_a": {"outcome": "passed", "duration_s": 0.1}},
            metrics={"rate": metric_record(value, unit="op/s",
                                           threshold=threshold)},
        )
        return path

    def test_no_regression_exits_zero(self, capsys, tmp_path):
        old = self._write(tmp_path / "old.json", 100)
        new = self._write(tmp_path / "new.json", 99)
        assert main(["bench-diff", str(old), str(new)]) == 0
        assert "0 regressed" in capsys.readouterr().out

    def test_regression_exits_one(self, capsys, tmp_path):
        old = self._write(tmp_path / "old.json", 100)
        new = self._write(tmp_path / "new.json", 50)
        assert main(["bench-diff", str(old), str(new)]) == 1
        captured = capsys.readouterr()
        assert "✖ rate" in captured.out
        assert "regressed beyond 10%" in captured.err

    def test_tolerance_flag(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", 100)
        new = self._write(tmp_path / "new.json", 80)
        assert main(["bench-diff", str(old), str(new),
                     "--tolerance", "0.5"]) == 0
        capsys.readouterr()

    def test_missing_report_exits_two(self, capsys, tmp_path):
        old = self._write(tmp_path / "old.json", 100)
        assert main(["bench-diff", str(old),
                     str(tmp_path / "absent.json")]) == 2

    def test_non_report_json_exits_two(self, capsys, tmp_path):
        old = self._write(tmp_path / "old.json", 100)
        other = tmp_path / "other.json"
        other.write_text('{"hello": 1}')
        assert main(["bench-diff", str(old), str(other)]) == 2
        assert "not a bench report" in capsys.readouterr().err


class TestReportHealth:
    def test_rollup_from_timeseries(self, capsys, monkeypatch, tmp_path,
                                    timeseries_dir, alert_log):
        monkeypatch.chdir(tmp_path)
        code = main(["report", "--health",
                     "--timeseries-dir", str(timeseries_dir),
                     "--alert-log", str(alert_log)])
        assert code == 0
        text = (tmp_path / "HEALTH.md").read_text()
        assert text.startswith("# cellspot health rollup")
        assert "### firing episodes" in text
        assert "trace `trace-1`" in text
        assert "wrote HEALTH.md" in capsys.readouterr().out

    def test_html_by_extension(self, capsys, tmp_path, timeseries_dir):
        out = tmp_path / "health.html"
        code = main(["report", "--health",
                     "--timeseries-dir", str(timeseries_dir),
                     "--out", str(out)])
        assert code == 0
        assert out.read_text().startswith("<!doctype html>")

    def test_health_requires_a_source(self, capsys):
        assert main(["report", "--health"]) == 2
        assert "--health needs" in capsys.readouterr().err

    def test_empty_source_exits_one(self, capsys, tmp_path):
        code = main(["report", "--health",
                     "--timeseries-dir", str(tmp_path / "nope")])
        assert code == 1


class TestServeTelemetry:
    def test_serve_session_with_telemetry_plane(
        self, monkeypatch, capsys, tmp_path, beacon_hits
    ):
        hits = tmp_path / "hits.jsonl"
        with hits.open("w") as stream:
            for hit in beacon_hits[:8000]:
                stream.write(hit.to_json() + "\n")
        requests = "\n".join([
            json.dumps({"op": "health"}),
            json.dumps({"op": "alerts"}),
            json.dumps({"op": "shutdown"}),
        ]) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(requests))
        ts_dir = tmp_path / "ts"
        log = tmp_path / "alerts.jsonl"
        code = main([
            "serve", "--events", str(hits),
            "--window-events", "2048",
            "--timeseries-dir", str(ts_dir),
            "--alert-log", str(log),
            "--scrape-interval", "0.05",
        ])
        captured = capsys.readouterr()
        assert code == 0
        lines = [json.loads(line)
                 for line in captured.out.strip().splitlines()]
        health, alerts = lines[0], lines[1]
        assert health["ok"] is True
        assert health["engine"]["events_consumed"] == 8000
        # The drift monitor rode the window-close boundary.
        assert health["drift"]["baseline_windows"] >= 1
        # The default SLO rules are live.
        assert len(health["alerts"]) == 11
        assert "alert_counts" in health
        assert alerts["ok"] is True and len(alerts["rules"]) == 11
        assert alerts["trace_id"]
        # Shutdown summary names the alerting state.
        assert "alerting:" in captured.err
        # The scraper persisted samples the reader can replay.
        from repro.obs.timeseries import TimeSeriesReader

        reader = TimeSeriesReader(ts_dir)
        # Stream counters flush at window close (batched), so the last
        # scrape holds the events folded through the final full window:
        # floor(8000 / 2048) * 2048.
        assert reader.latest("stream_events_total")[1] == 6144

    def test_bad_rule_file_fails_fast(self, capsys, tmp_path):
        bad = tmp_path / "rules.json"
        bad.write_text('{"rules": []}')
        code = main(["serve", "--generate",
                     "--alert-rules", str(bad)])
        assert code == 2
        assert "'rules' array is empty" in capsys.readouterr().err
