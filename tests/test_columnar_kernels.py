"""Equivalence contract of the columnar hot core.

Seeded property suite over randomized record batches: every kernel
and every domain operation must satisfy

    kernels_np  ==  kernels_py  ==  per-row reference

bit for bit -- mixed /24 and /48 keys, IPv4 and IPv6, duplicate keys,
empty batches, single rows, counts at the int64 edge.  The
``array_backend`` fixture runs each case once per installed backend;
cross-backend cases additionally diff numpy against python directly.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.columnar import ops, reference
from repro.columnar.backend import (
    BACKEND_ENV,
    active_backend_name,
    get_kernels,
    kernels_for,
    numpy_available,
    set_backend,
    use_backend,
)
from repro.columnar.batch import BeaconBatch, DemandBatch, SpotBatch
from repro.core.ratios import RatioRecord, RatioTable
from repro.net.prefix import Prefix
from repro.parallel.sharding import stable_shard_index
from repro.parallel.views import DemandMap

BOTH_BACKENDS = numpy_available()


# ---- batch generators -------------------------------------------------------

def make_beacon_rows(rng, n, dup_frac=0.3, v6_frac=0.5):
    """Compact beacon rows with controlled duplicate-key pressure."""
    rows, keys = [], []
    for i in range(n):
        if keys and rng.random() < dup_frac:
            family, value, length = rng.choice(keys)
        else:
            if rng.random() < v6_frac:
                family, length = 6, 48
                value = rng.randrange(0, 2 ** 128) & ~((1 << 80) - 1)
            else:
                family, length = 4, 24
                value = rng.randrange(0, 2 ** 32) & ~0xFF
            keys.append((family, value, length))
        api = rng.randrange(0, 40)
        rows.append(
            (
                i,
                family,
                value,
                length,
                rng.randrange(1, 70000),
                rng.choice(["US", "DE", "JP", "BR", "IN", ""]),
                api + rng.randrange(0, 15),
                api,
                rng.randrange(0, api + 1),
            )
        )
    return rows


def make_demand_rows(rng, n, dup_frac=0.0):
    rows, keys = [], []
    for i in range(n):
        if keys and rng.random() < dup_frac:
            family, value, length = rng.choice(keys)
        else:
            family, length = (4, 24) if rng.random() < 0.5 else (6, 48)
            mask = ~0xFF if family == 4 else ~((1 << 80) - 1)
            value = rng.randrange(0, 2 ** (32 if family == 4 else 128)) & mask
            keys.append((family, value, length))
        rows.append(
            (
                i, family, value, length, rng.randrange(1, 300), "US",
                rng.random() * 50,
            )
        )
    return rows


BATCH_SHAPES = [(0, 0.0), (1, 0.0), (1, 1.0), (9, 0.5), (400, 0.35)]


# ---- three-way equivalence: spot --------------------------------------------

@pytest.mark.parametrize("n,dup", BATCH_SHAPES)
def test_spot_matches_reference(array_backend, n, dup):
    rng = random.Random(100 + n)
    rows = make_beacon_rows(rng, n, dup)
    batch = BeaconBatch.from_rows(rows, array_backend)
    assert batch.to_rows() == rows  # lossless round-trip, incl. 2**127 values
    spot, (asns, asn_hits) = ops.spot_batch(batch, 3, 0.5)
    ref_rows, ref_hits = reference.spot_rows(rows, 3, 0.5)
    got = [r + (label,) for r, label in zip(spot.batch.to_rows(), spot.label)]
    assert got == ref_rows
    assert dict(zip(asns, asn_hits)) == ref_hits
    assert list(asns) == sorted(ref_hits)


@pytest.mark.parametrize("n,dup", BATCH_SHAPES)
def test_group_accumulate_matches_reference(array_backend, n, dup):
    rng = random.Random(200 + n)
    rows = make_beacon_rows(rng, n, dup)
    batch = BeaconBatch.from_rows(rows, array_backend)
    for order in ("canonical", "first_seen"):
        grouped = ops.group_accumulate_beacons(batch, order=order)
        assert grouped.to_rows() == reference.accumulate_rows(rows, order=order)


@pytest.mark.skipif(not BOTH_BACKENDS, reason="needs numpy for the diff")
@pytest.mark.parametrize("n,dup", BATCH_SHAPES)
def test_numpy_python_bitwise_identical(n, dup):
    """Direct numpy-vs-python diff (not just both-vs-reference)."""
    rng = random.Random(300 + n)
    rows = make_beacon_rows(rng, n, dup)
    results = {}
    for backend in ("python", "numpy"):
        batch = BeaconBatch.from_rows(rows, backend)
        spot, partial = ops.spot_batch(batch, 2, 0.8)
        grouped = ops.group_accumulate_beacons(batch, order="first_seen")
        results[backend] = (
            spot.batch.to_rows(),
            spot.label,
            [list(column) for column in partial],
            grouped.to_rows(),
        )
    assert results["python"] == results["numpy"]


# ---- shard hashing ----------------------------------------------------------

@pytest.mark.parametrize("shards", [1, 2, 5, 8, 64])
def test_shard_index_matches_scalar_hash(array_backend, shards):
    rng = random.Random(41)
    rows = make_beacon_rows(rng, 250, 0.2)
    # Edge keys: all-zero, all-ones 128-bit, int64-boundary values.
    edges = [
        (4, 0, 24), (6, 2 ** 128 - 1, 48), (6, 2 ** 127, 48),
        (4, 2 ** 32 - 256, 24), (6, (2 ** 64 - 1) << 64, 48),
        (6, 2 ** 64 - 1 - 0xFFFF, 48),
    ]
    keys = [(r[1], r[2], r[3]) for r in rows] + edges
    k = kernels_for(array_backend)
    got = k.shard_index(
        k.index_col([key[0] for key in keys]),
        k.u64_col([key[1] >> 64 for key in keys]),
        k.u64_col([key[1] & (2 ** 64 - 1) for key in keys]),
        k.index_col([key[2] for key in keys]),
        shards,
    )
    expected = [
        stable_shard_index(family, value, length, shards)
        for family, value, length in keys
    ]
    assert [int(v) for v in got] == expected


def test_partition_batch_matches_rowwise_partition(array_backend):
    from repro.parallel.sharding import partition_rows

    rng = random.Random(55)
    rows = make_beacon_rows(rng, 300, 0.25)
    batch = BeaconBatch.from_rows(rows, array_backend)
    for shards in (1, 3, 7):
        parts = ops.partition_batch(batch, shards)
        assert [part.to_rows() for part in parts] == partition_rows(
            rows, shards
        )


# ---- merges and ordering ----------------------------------------------------

def test_sort_by_idx_restores_dataset_order(array_backend):
    rng = random.Random(60)
    rows = make_beacon_rows(rng, 120, 0.0)
    shuffled = rows[:]
    rng.shuffle(shuffled)
    batch = BeaconBatch.from_rows(shuffled, array_backend)
    assert ops.sort_by_idx(batch).to_rows() == rows


def test_spot_concat_argsort_merge_equals_serial(array_backend):
    """The zero-copy shard merge: concat columns + one idx argsort."""
    rng = random.Random(61)
    rows = make_beacon_rows(rng, 200, 0.0)
    batch = BeaconBatch.from_rows(rows, array_backend)
    serial_spot, serial_partial = ops.spot_batch(batch, 2, 0.5)
    spots, partials = [], []
    for part in ops.partition_batch(batch, 5):
        spot, partial = ops.spot_batch(part, 2, 0.5)
        spots.append(spot)
        partials.append(partial)
    merged = ops.sort_spot_by_idx(SpotBatch.concat(spots))
    assert merged.batch.to_rows() == serial_spot.batch.to_rows()
    assert merged.label == serial_spot.label
    assert ops.merge_asn_partials(partials, array_backend) == dict(
        zip(*serial_partial)
    )


def test_metadata_conflict_raises_like_rowwise(array_backend):
    rng = random.Random(62)
    rows = make_beacon_rows(rng, 40, 0.0)
    first = rows[0]
    rows.append((len(rows),) + first[1:4] + (first[4] + 1, first[5])
                + first[6:9])
    with pytest.raises(ValueError) as ref_err:
        reference.accumulate_rows(rows, check_meta=True)
    batch = BeaconBatch.from_rows(rows, array_backend)
    with pytest.raises(ValueError) as got_err:
        ops.group_accumulate_beacons(batch, check_meta=True)
    assert str(got_err.value) == str(ref_err.value)
    assert "conflicting metadata for" in str(got_err.value)


def test_duplicate_key_detection_matches_seen_set(array_backend):
    rng = random.Random(63)
    rows = make_demand_rows(rng, 80, dup_frac=0.3)
    batch = DemandBatch.from_rows(rows, array_backend)
    expected = reference.duplicate_key((r[1], r[2], r[3]) for r in rows)
    assert ops.find_duplicate_key(batch) == expected
    clean = DemandBatch.from_rows(make_demand_rows(rng, 50), array_backend)
    assert ops.find_duplicate_key(clean) is None


# ---- integer boundaries (regression: counts must never wrap) ----------------

def test_counts_at_int64_boundary_promote_not_wrap(array_backend):
    """Sums past 2**63 promote to exact Python ints on both backends."""
    near = 2 ** 63 - 5
    rows = [
        (0, 4, 0x0A000000, 24, 1, "US", near, near - 2, 2 ** 62),
        (1, 4, 0x0A000000, 24, 1, "US", near, near - 2, 2 ** 62),
        (2, 4, 0x0A000100, 24, 2, "DE", 2 ** 31, 2 ** 31 - 1, 2 ** 31 - 2),
        (3, 4, 0x0A000100, 24, 2, "DE", 2 ** 31, 2 ** 31 - 1, 2 ** 31 - 2),
    ]
    batch = BeaconBatch.from_rows(rows, array_backend)
    grouped = ops.group_accumulate_beacons(batch, order="canonical")
    assert grouped.to_rows() == reference.accumulate_rows(rows)
    merged = grouped.to_rows()
    assert merged[0][6] == 2 * near  # > int64 max, exact
    assert merged[1][6] == 2 ** 32  # crosses 2**31 cleanly


def test_column_overflow_promotes_to_exact_ints(array_backend):
    k = kernels_for(array_backend)
    col = k.int_col([2 ** 64, -(2 ** 70), 3])
    assert k.to_list(col) == [2 ** 64, -(2 ** 70), 3]
    perm = k.lex_argsort([k.index_col([0, 0, 0])])
    starts = k.group_bounds([k.index_col([0, 0, 0])], perm)
    assert k.segment_sum_int(col, perm, starts) == [2 ** 64 - 2 ** 70 + 3]


def test_ratio_division_past_float53_uses_exact_path(array_backend):
    """cell/api past 2**53: both backends take correctly-rounded
    big-int division, matching the serial classifier's Python ``/``."""
    api = 2 ** 53 + 2
    cell = 2 ** 52 + 1
    rows = [(0, 4, 0x01000000, 24, 1, "US", api + 1, api, cell)]
    batch = BeaconBatch.from_rows(rows, array_backend)
    threshold = cell / api
    spot, _ = ops.spot_batch(batch, 1, threshold)
    ref_rows, _ = reference.spot_rows(rows, 1, threshold)
    assert spot.label == [ref_rows[0][-1]]


# ---- float summation order (regression: merged == serial bits) --------------

def test_sharded_demand_sums_equal_serial_bits(array_backend):
    """Per-AS demand sums after shard interleave equal the serial
    per-key accumulation exactly -- not approximately."""
    rng = random.Random(64)
    rows = make_demand_rows(rng, 500)
    serial = reference.group_sum_float_ordered((r[4], r[6]) for r in rows)
    batch = DemandBatch.from_rows(rows, array_backend)
    parts = ops.partition_batch(batch, 6)
    restored = ops.sort_by_idx(DemandBatch.concat(parts))
    assert ops.demand_du_by_asn(restored) == serial  # == on floats: exact


def test_segment_sum_float_is_sequential_not_pairwise(array_backend):
    """The float kernel must accumulate left-to-right; pairwise or
    fsum-style reductions produce different bits on this input."""
    rng = random.Random(65)
    values = [rng.random() * 10 ** rng.randrange(-8, 9) for _ in range(4000)]
    k = kernels_for(array_backend)
    col = k.float_col(values)
    perm = k.index_col(range(len(values)))
    starts = k.index_col([0])
    sequential = 0.0
    for value in values:
        sequential += value
    assert k.segment_sum_float_ordered(col, perm, starts) == [sequential]


# ---- domain-level equivalence ----------------------------------------------

def _table(rng, n, base=0):
    records = []
    seen = set()
    while len(records) < n:
        prefix = Prefix.make(4, rng.randrange(0, 2 ** 32), 24)
        if prefix in seen:
            continue
        seen.add(prefix)
        api = rng.randrange(1, 50)
        records.append(
            RatioRecord(
                prefix, base + rng.randrange(1, 500), "US", api,
                rng.randrange(0, api + 1), api + 2,
            )
        )
    return records


def test_ratio_table_merge_equals_rowwise(array_backend):
    rng = random.Random(70)
    shared = _table(rng, 12)
    tables = [
        RatioTable(shared[:8]),
        RatioTable(shared[4:]),
        RatioTable(_table(rng, 5)),
    ]
    # Overlapping subnets must agree on metadata to be mergeable.
    assert RatioTable.merge(tables) == RatioTable.merge_rowwise(tables)
    assert RatioTable.merge([]) == RatioTable.merge_rowwise([])
    # Canonical output order, pinned.
    merged = RatioTable.merge(tables)
    keys = [
        (r.subnet.family, r.subnet.value, r.subnet.length) for r in merged
    ]
    assert keys == sorted(keys)


def test_ratio_table_merge_conflict_message_matches(array_backend):
    prefix = Prefix.make(4, 0x0A000000, 24)
    a = RatioTable([RatioRecord(prefix, 1, "US", 5, 1, 6)])
    b = RatioTable([RatioRecord(prefix, 2, "US", 5, 1, 6)])
    with pytest.raises(ValueError) as rowwise_err:
        RatioTable.merge_rowwise([a, b])
    with pytest.raises(ValueError) as columnar_err:
        RatioTable.merge([a, b])
    assert str(columnar_err.value) == str(rowwise_err.value)


def test_from_hits_equals_rowwise(array_backend, beacon_hits):
    from repro.datasets.beacon_dataset import BeaconDataset

    month = beacon_hits[0].month
    # Tiny batch size forces many chunk folds over real generator hits.
    columnar = BeaconDataset.from_hits(month, beacon_hits, batch_rows=997)
    rowwise = BeaconDataset.from_hits_rowwise(month, beacon_hits)
    assert list(columnar._by_subnet) == list(rowwise._by_subnet)
    assert columnar._by_subnet == rowwise._by_subnet
    assert columnar.browser_counts == rowwise.browser_counts
    assert list(columnar.browser_counts) == list(rowwise.browser_counts)


def test_from_hits_rejects_foreign_months_and_bad_labels(array_backend):
    from repro.datasets.beacon_dataset import BeaconDataset
    from repro.cdn.logs import BeaconHit
    from repro.cdn.netinfo import ConnectionType
    from repro.world.population import Browser

    subnet = Prefix.make(4, 0x0A000000, 24)
    hit = BeaconHit(
        month="2017-02", family=4, address=0x0A000001, subnet=subnet,
        asn=1, country="US", browser=Browser.CHROME_MOBILE,
        api_enabled=True, connection_type=ConnectionType.CELLULAR,
    )
    with pytest.raises(ValueError, match="2017-02 in a 2017-01 collection"):
        BeaconDataset.from_hits("2017-01", [hit])


def test_demand_map_from_batch_equals_from_rows(array_backend):
    rng = random.Random(71)
    rows = make_demand_rows(rng, 150)
    shuffled = rows[:]
    rng.shuffle(shuffled)
    batch = DemandBatch.from_rows(shuffled, array_backend)
    from_batch = DemandMap.from_batch(batch)
    from_rows = DemandMap.from_rows(shuffled)
    assert list(from_batch) == list(from_rows)
    for row in rows:
        prefix = Prefix(row[1], row[2], row[3])
        assert from_batch.du_of(prefix) == from_rows.du_of(prefix)
    duplicated = shuffled + [shuffled[0]]
    renumbered = [
        (i,) + row[1:] for i, row in enumerate(duplicated)
    ]
    with pytest.raises(ValueError) as rows_err:
        DemandMap.from_rows(renumbered)
    with pytest.raises(ValueError) as batch_err:
        DemandMap.from_batch(
            DemandBatch.from_rows(renumbered, array_backend)
        )
    assert str(batch_err.value) == str(rows_err.value)


# ---- backend dispatch -------------------------------------------------------

def test_backend_dispatch_precedence(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    previous = set_backend("python")
    try:
        assert active_backend_name() == "python"
        assert get_kernels().NAME == "python"
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        # Forced beats env.
        assert active_backend_name() == "python"
        set_backend("auto")
        if numpy_available():
            assert active_backend_name() == "numpy"
    finally:
        set_backend(previous)


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "python")
    set_backend(None)
    try:
        assert active_backend_name() == "python"
        assert get_kernels().NAME == "python"
    finally:
        monkeypatch.delenv(BACKEND_ENV)
        set_backend(None)


def test_requesting_numpy_without_numpy_is_a_hard_error(monkeypatch):
    import repro.columnar.backend as backend_mod

    monkeypatch.setattr(backend_mod, "numpy_available", lambda: False)
    with use_backend("python"):
        pass  # python backend never needs numpy
    with pytest.raises(RuntimeError, match="numpy"):
        with use_backend("numpy"):
            pass  # pragma: no cover


def test_invalid_backend_name_rejected():
    with pytest.raises(ValueError):
        set_backend("fortran")


def test_use_backend_restores_previous():
    previous = active_backend_name()
    with use_backend("python"):
        assert active_backend_name() == "python"
    assert active_backend_name() == previous


# ---- mmap ratio snapshots ---------------------------------------------------

def test_mmap_table_round_trip_and_lookups(tmp_path, array_backend):
    rng = random.Random(80)
    records = _table(rng, 60) + [
        RatioRecord(Prefix.make(6, rng.randrange(0, 2 ** 128), 48),
                    7, "JP", 9, 4, 11),
    ]
    table = RatioTable(records)
    path = table.save_mmap(tmp_path / "ratios.mm")
    mapped = RatioTable.open_mmap(path)
    try:
        assert mapped == table
        assert len(mapped) == len(table)
        for record in records:
            assert mapped.get(record.subnet) == record
            assert record.subnet in mapped
        absent = Prefix.make(4, 0xDEADBEEF, 24)
        if table.get(absent) is None:
            assert mapped.get(absent) is None
        keys = [
            (r.subnet.family, r.subnet.value, r.subnet.length)
            for r in mapped
        ]
        assert keys == sorted(keys)
        assert mapped.ratio_cdf(4).quantile(0.5) == (
            table.ratio_cdf(4).quantile(0.5)
        )
    finally:
        mapped.close()


def test_mmap_table_pickles_by_path(tmp_path):
    rng = random.Random(81)
    table = RatioTable(_table(rng, 400))
    mapped = RatioTable.open_mmap(table.save_mmap(tmp_path / "r.mm"))
    try:
        blob = pickle.dumps(mapped)
        # Pickling by path: bytes stay O(path), not O(records).
        assert len(blob) < 400
        clone = pickle.loads(blob)
        try:
            assert clone == table
        finally:
            clone.close()
    finally:
        mapped.close()


def test_mmap_snapshot_rejects_corruption(tmp_path):
    from repro.columnar.mmaptable import open_mmap

    table = RatioTable(_table(random.Random(82), 10))
    path = table.save_mmap(tmp_path / "r.mm")
    data = bytearray(path.read_bytes())
    data[0] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(ValueError, match="bad magic"):
        open_mmap(path)
    path.write_bytes(b"")
    with pytest.raises(ValueError, match="truncated"):
        open_mmap(path)
    good = table.save_mmap(tmp_path / "r2.mm")
    truncated = good.read_bytes()[:-8]
    good.write_bytes(truncated)
    with pytest.raises(ValueError, match="size mismatch"):
        open_mmap(good)


def test_mmap_snapshot_refuses_unsnapshotable_counts(tmp_path):
    big = RatioTable(
        [RatioRecord(Prefix.make(4, 0, 24), 1, "US", 2 ** 63, 5, 2 ** 63 + 1)]
    )
    with pytest.raises(ValueError, match="int64"):
        big.save_mmap(tmp_path / "big.mm")
