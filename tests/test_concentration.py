"""Unit and property tests for concentration measures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.concentration import (
    cumulative_share_curve,
    gini_coefficient,
    rank_share_curve,
    smallest_covering,
    top_k_share,
)

POSITIVE_WEIGHTS = st.lists(
    st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=60
)


class TestTopKShare:
    def test_basic(self):
        assert top_k_share([5, 3, 1, 1], 2) == pytest.approx(0.8)

    def test_k_zero(self):
        assert top_k_share([1, 2], 0) == 0.0

    def test_k_exceeds_length(self):
        assert top_k_share([1, 2], 10) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            top_k_share([1], -1)
        with pytest.raises(ValueError):
            top_k_share([0, 0], 1)
        with pytest.raises(ValueError):
            top_k_share([-1, 2], 1)


class TestSmallestCovering:
    def test_paper_style(self):
        # One dominant subnet: covering 90% takes just it.
        weights = [90] + [1] * 10
        assert smallest_covering(weights, 0.9) == 1
        assert smallest_covering(weights, 0.95) == 6

    def test_full_coverage(self):
        assert smallest_covering([1, 1, 1], 1.0) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            smallest_covering([1], 0)
        with pytest.raises(ValueError):
            smallest_covering([1], 1.5)
        with pytest.raises(ValueError):
            smallest_covering([0.0], 0.5)


class TestCurves:
    def test_rank_share_sorted(self):
        curve = rank_share_curve([1, 3, 2])
        assert [rank for rank, _ in curve] == [1, 2, 3]
        assert [share for _, share in curve] == pytest.approx([0.5, 1 / 3, 1 / 6])

    def test_cumulative_reaches_one(self):
        curve = cumulative_share_curve([4, 3, 2, 1])
        assert curve[-1][1] == pytest.approx(1.0)
        shares = [share for _, share in curve]
        assert shares == sorted(shares)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_extreme_concentration(self):
        assert gini_coefficient([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_all_zero(self):
        assert gini_coefficient([0, 0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gini_coefficient([])
        with pytest.raises(ValueError):
            gini_coefficient([-1, 2])


@settings(max_examples=60, deadline=None)
@given(POSITIVE_WEIGHTS)
def test_gini_bounded(weights):
    value = gini_coefficient(weights)
    assert 0.0 <= value < 1.0


@settings(max_examples=60, deadline=None)
@given(POSITIVE_WEIGHTS, st.integers(min_value=1, max_value=60))
def test_top_k_monotone_in_k(weights, k):
    assert top_k_share(weights, k) <= top_k_share(weights, k + 1) + 1e-12


@settings(max_examples=60, deadline=None)
@given(POSITIVE_WEIGHTS, st.floats(min_value=0.05, max_value=1.0))
def test_covering_actually_covers(weights, fraction):
    count = smallest_covering(weights, fraction)
    assert 1 <= count <= len(weights)
    assert top_k_share(weights, count) >= fraction - 1e-9
    if count > 1:
        assert top_k_share(weights, count - 1) < fraction
