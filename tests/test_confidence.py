"""Tests for confidence-aware classification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confidence import (
    ConfidentClassifier,
    Verdict,
    wilson_interval,
)
from repro.core.classifier import SubnetClassifier
from repro.core.ratios import RatioRecord, RatioTable
from repro.net.prefix import Prefix


def record(subnet, api, cell):
    return RatioRecord(Prefix.parse(subnet), 1, "US", api, cell, api)


class TestWilsonInterval:
    def test_contains_proportion(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_narrows_with_evidence(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_extremes_clamped(self):
        low, high = wilson_interval(0, 10)
        assert low == 0.0 and high < 0.35
        low, high = wilson_interval(10, 10)
        assert low > 0.65 and high == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(1, 2, z=0)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=1, max_value=5000), st.data())
    def test_properties(self, trials, data):
        successes = data.draw(st.integers(min_value=0, max_value=trials))
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= successes / trials <= high <= 1.0


class TestConfidentClassifier:
    def test_three_way_split(self):
        classifier = ConfidentClassifier(threshold=0.5)
        assert classifier.label(record("10.0.0.0/24", 200, 190)).verdict is (
            Verdict.CELLULAR
        )
        assert classifier.label(record("10.0.1.0/24", 200, 5)).verdict is (
            Verdict.FIXED
        )
        # 2 of 3: the point estimate clears 0.5 but the evidence doesn't.
        assert classifier.label(record("10.0.2.0/24", 3, 2)).verdict is (
            Verdict.UNCERTAIN
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfidentClassifier(threshold=0)
        with pytest.raises(ValueError):
            ConfidentClassifier(z=-1)

    def test_classification_container(self):
        table = RatioTable(
            [
                record("10.0.0.0/24", 200, 190),
                record("10.0.1.0/24", 200, 5),
                record("10.0.2.0/24", 3, 2),
            ]
        )
        result = ConfidentClassifier().classify(table)
        counts = result.verdict_counts()
        assert counts[Verdict.CELLULAR] == 1
        assert counts[Verdict.FIXED] == 1
        assert counts[Verdict.UNCERTAIN] == 1
        assert result.uncertain_fraction() == pytest.approx(1 / 3)
        assert result.cellular_set() == {Prefix.parse("10.0.0.0/24")}

    def test_confident_subset_of_plain(self, lab):
        """Confident cellular set is a subset of the plain classifier's."""
        ratios = lab.result.ratios
        plain = SubnetClassifier().classify(ratios).cellular_set()
        confident = ConfidentClassifier().classify(ratios).cellular_set()
        assert confident <= plain
        assert len(confident) > 0

    def test_precision_improves_on_lab(self, lab):
        """Dropping uncertain subnets buys subnet-level precision."""
        ratios = lab.result.ratios
        world = lab.world

        def precision(cellular_set):
            tp = fp = 0
            for subnet in cellular_set:
                truth = world.truth_is_cellular(subnet)
                if truth:
                    tp += 1
                elif truth is False:
                    fp += 1
            return tp / (tp + fp)

        plain = SubnetClassifier().classify(ratios).cellular_set()
        confident = ConfidentClassifier().classify(ratios).cellular_set()
        assert precision(confident) >= precision(plain)
