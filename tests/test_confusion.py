"""Unit and property tests for BinaryConfusion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.confusion import BinaryConfusion


class TestObserve:
    def test_cells(self):
        confusion = BinaryConfusion()
        confusion.observe(True, True)
        confusion.observe(True, False)
        confusion.observe(False, True)
        confusion.observe(False, False)
        assert (confusion.tp, confusion.fn, confusion.fp, confusion.tn) == (
            1, 1, 1, 1,
        )
        assert confusion.total == 4

    def test_weights(self):
        confusion = BinaryConfusion()
        confusion.observe(True, True, weight=2.5)
        confusion.observe(False, True, weight=0.5)
        assert confusion.tp == 2.5
        assert confusion.precision == pytest.approx(2.5 / 3.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            BinaryConfusion().observe(True, True, weight=-1)


class TestMetrics:
    def test_perfect(self):
        confusion = BinaryConfusion(tp=10, tn=5)
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0
        assert confusion.f1 == 1.0
        assert confusion.accuracy == 1.0
        assert confusion.false_positive_rate == 0.0

    def test_paper_carrier_b_shape(self):
        # Table 3 Carrier B: TP 2937, FN 35, no negatives at all.
        confusion = BinaryConfusion(tp=2937, fn=35)
        assert confusion.precision == 1.0
        assert confusion.recall == pytest.approx(0.988, abs=0.001)

    def test_empty_is_all_zero(self):
        confusion = BinaryConfusion()
        assert confusion.precision == 0.0
        assert confusion.recall == 0.0
        assert confusion.f1 == 0.0
        assert confusion.accuracy == 0.0

    def test_f1_harmonic_mean(self):
        confusion = BinaryConfusion(tp=1, fp=1, fn=1)
        # precision = recall = 0.5 -> f1 = 0.5
        assert confusion.f1 == pytest.approx(0.5)

    def test_as_dict(self):
        data = BinaryConfusion(tp=1, fp=2, tn=3, fn=4).as_dict()
        assert data["tp"] == 1
        assert set(data) == {
            "tp", "fp", "tn", "fn", "precision", "recall", "f1", "accuracy",
        }


class TestMerge:
    def test_merge_adds(self):
        merged = BinaryConfusion(tp=1, fp=2).merge(BinaryConfusion(tp=3, tn=4))
        assert (merged.tp, merged.fp, merged.tn, merged.fn) == (4, 2, 4, 0)

    def test_merge_leaves_operands(self):
        a = BinaryConfusion(tp=1)
        a.merge(BinaryConfusion(tp=9))
        assert a.tp == 1


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.booleans(),
                  st.floats(min_value=0, max_value=10)),
        min_size=1,
        max_size=60,
    )
)
def test_metrics_always_bounded(observations):
    confusion = BinaryConfusion()
    for truth, predicted, weight in observations:
        confusion.observe(truth, predicted, weight)
    for value in (confusion.precision, confusion.recall, confusion.f1,
                  confusion.accuracy, confusion.false_positive_rate):
        assert 0.0 <= value <= 1.0
    assert confusion.total == pytest.approx(sum(w for _, _, w in observations))


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 50), st.integers(0, 50), st.integers(0, 50),
       st.integers(0, 50))
def test_f1_between_precision_and_recall(tp, fp, tn, fn):
    confusion = BinaryConfusion(tp=tp, fp=fp, tn=tn, fn=fn)
    low = min(confusion.precision, confusion.recall)
    high = max(confusion.precision, confusion.recall)
    assert low - 1e-9 <= confusion.f1 <= high + 1e-9
