"""Unit tests for BEACON/DEMAND coverage analysis."""

import pytest

from repro.analysis.coverage import beacon_coverage
from repro.datasets.beacon_dataset import BeaconDataset, SubnetBeaconCounts
from repro.datasets.demand_dataset import DemandDataset
from repro.net.prefix import Prefix


def p(text):
    return Prefix.parse(text)


@pytest.fixture()
def datasets():
    beacons = BeaconDataset("2016-12")
    beacons.add_counts(SubnetBeaconCounts(p("10.0.0.0/24"), 1, "US", 10, 5, 2))
    beacons.add_counts(SubnetBeaconCounts(p("2001:db8::/48"), 2, "JP", 5, 2, 2))
    demand = DemandDataset.from_request_totals(
        [
            (p("10.0.0.0/24"), 1, "US", 900),   # covered, heavy
            (p("10.0.1.0/24"), 1, "US", 50),    # uncovered tail
            (p("10.0.2.0/24"), 1, "US", 30),    # uncovered tail
            (p("2001:db8::/48"), 2, "JP", 20),  # covered v6
        ]
    )
    return beacons, demand


class TestCoverage:
    def test_subnet_coverage(self, datasets):
        beacons, demand = datasets
        report = beacon_coverage(beacons, demand)
        assert report.demand_subnets == 4
        assert report.covered_subnets == 2
        assert report.subnet_coverage == 0.5

    def test_demand_coverage_favors_heavy(self, datasets):
        beacons, demand = datasets
        report = beacon_coverage(beacons, demand)
        assert report.demand_coverage == pytest.approx(920 / 1000)
        assert report.tail_bias > 0  # the paper's 92% vs 73% structure

    def test_family_split(self, datasets):
        beacons, demand = datasets
        v4 = beacon_coverage(beacons, demand, family=4)
        v6 = beacon_coverage(beacons, demand, family=6)
        assert v4.demand_subnets == 3 and v4.covered_subnets == 1
        assert v6.demand_subnets == 1 and v6.covered_subnets == 1
        assert v6.subnet_coverage == 1.0

    def test_empty_demand(self):
        beacons = BeaconDataset("2016-12")
        demand = DemandDataset.from_request_totals(
            [(p("10.0.0.0/24"), 1, "US", 1)]
        )
        report = beacon_coverage(beacons, demand, family=6)
        assert report.subnet_coverage == 0.0
        assert report.demand_coverage == 0.0

    def test_lab_coverage_matches_paper_shape(self, lab):
        report = beacon_coverage(lab.beacons, lab.demand)
        assert 0.6 <= report.subnet_coverage <= 0.95
        assert report.demand_coverage > report.subnet_coverage
        assert report.demand_coverage > 0.8
