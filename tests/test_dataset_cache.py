"""Dataset cache correctness: hits, misses, and corruption.

The cache is only allowed to affect *time*: a hit must rebuild the
identical datasets (order and digests included), a key derived from
different parameters must miss, and any corruption -- truncated
shard, flipped byte, missing file, garbage meta -- must quarantine
the entry and report a miss instead of crashing or, worse, serving
wrong data.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.datasets.beacon_dataset import BeaconDataset, SubnetBeaconCounts
from repro.datasets.demand_dataset import DemandDataset, SubnetDemand
from repro.net.prefix import Prefix
from repro.parallel.cache import (
    CACHE_FORMAT_VERSION,
    SHARD_BATCH_ROWS,
    CacheCorruption,
    DatasetCache,
    cache_key,
    iter_shard_batches,
    load_shard_columns,
)
from repro.runtime.manifest import dataset_digest
from repro.runtime.quarantine import read_quarantine
from repro.world.population import Browser

PARAMS = {"seed": 7, "scale": 0.004, "note": "cache-test"}


@pytest.fixture()
def datasets():
    """Small deterministic BEACON + DEMAND pair (no world needed)."""
    rng = random.Random(20260806)
    beacons = BeaconDataset(month="2016-12")
    demand = DemandDataset(window_days=7)
    beacons.observe_browser_batch(Browser.CHROME_MOBILE, 500, 420)
    beacons.observe_browser_batch(Browser.OTHER_DESKTOP, 300, 0)
    seen = set()
    while len(seen) < 200:
        if rng.random() < 0.8:
            prefix = Prefix(4, rng.randrange(1 << 24) << 8, 24)
        else:
            prefix = Prefix(6, rng.randrange(1 << 48) << 80, 48)
        if prefix in seen:
            continue
        seen.add(prefix)
        asn = rng.randrange(1, 500)
        country = rng.choice(["US", "DE", "IN"])
        api = rng.randrange(0, 30)
        beacons.add_counts(
            SubnetBeaconCounts(
                prefix, asn, country,
                hits=api + rng.randrange(0, 50),
                api_hits=api,
                cellular_hits=rng.randrange(0, api + 1),
            )
        )
        demand._add(SubnetDemand(prefix, asn, country, rng.random() * 5))
    return beacons, demand


@pytest.fixture()
def cache(tmp_path):
    return DatasetCache(tmp_path / "cache")


def _store(cache, datasets, shards=4):
    beacons, demand = datasets
    key = cache.key_for(PARAMS)
    entry = cache.store(key, beacons, demand, shards=shards, params=PARAMS)
    return key, entry


# ---- keys -------------------------------------------------------------------


def test_key_is_deterministic_and_parameter_sensitive():
    assert cache_key(PARAMS) == cache_key(dict(PARAMS))
    assert cache_key(PARAMS) != cache_key({**PARAMS, "seed": 8})
    assert cache_key(PARAMS) != cache_key({**PARAMS, "scale": 0.005})
    assert len(cache_key(PARAMS)) == 64  # full sha256 hex


def test_key_insensitive_to_dict_ordering():
    shuffled = {k: PARAMS[k] for k in reversed(list(PARAMS))}
    assert cache_key(PARAMS) == cache_key(shuffled)


def test_key_rejects_unserializable_params():
    with pytest.raises(ValueError, match="JSON-serializable"):
        cache_key({"bad": object()})


def test_store_rejects_mismatched_params(cache, datasets):
    beacons, demand = datasets
    with pytest.raises(ValueError, match="do not hash"):
        cache.store("0" * 64, beacons, demand, params=PARAMS)


# ---- hit path ---------------------------------------------------------------


@pytest.mark.parametrize("shards", [1, 4, 8])
def test_hit_returns_identical_datasets(cache, datasets, shards):
    beacons, demand = datasets
    key, entry = _store(cache, datasets, shards=shards)
    fetched = cache.fetch(key)
    assert fetched is not None
    assert fetched.shards == shards
    assert len(fetched.beacon_shards) == shards
    assert len(fetched.demand_shards) == shards
    loaded_beacons, loaded_demand = cache.load_datasets(fetched)
    # Identical means identical: same digests (covers order), same
    # browser counters, same per-subnet records.
    assert dataset_digest(loaded_beacons) == dataset_digest(beacons)
    assert dataset_digest(loaded_demand) == dataset_digest(demand)
    assert loaded_beacons.browser_counts == beacons.browser_counts
    assert [c.subnet for c in loaded_beacons] == [c.subnet for c in beacons]
    assert [r.subnet for r in loaded_demand] == [r.subnet for r in demand]
    assert entry.dataset_digests["beacon"] == dataset_digest(beacons)
    assert entry.dataset_digests["demand"] == dataset_digest(demand)


def test_absent_key_is_clean_miss(cache):
    assert cache.fetch("f" * 64) is None
    assert not (cache.root / "quarantine").exists()


def test_different_params_force_regeneration(cache, datasets):
    """Digest mismatch (changed params) can never hit a stale entry."""
    key, _ = _store(cache, datasets)
    other_key = cache.key_for({**PARAMS, "seed": 8})
    assert other_key != key
    assert cache.fetch(other_key) is None  # must re-parse/regenerate
    assert cache.fetch(key) is not None  # the original entry survives


# ---- corruption -> quarantine ----------------------------------------------


def _quarantine_sidecars(cache):
    qdir = cache.root / "quarantine"
    if not qdir.exists():
        return []
    return sorted(qdir.glob("*.quarantine.jsonl"))


def _assert_quarantined_miss(cache, key, reason_fragment):
    assert cache.fetch(key) is None
    assert not cache.entry_dir(key).exists()  # moved aside, not left rotting
    sidecars = _quarantine_sidecars(cache)
    assert sidecars, "expected a quarantine sidecar"
    with sidecars[-1].open() as stream:
        records = list(read_quarantine(stream))
    assert records and reason_fragment in records[0].error.reason
    # After quarantine the key is a plain miss -- and storable again.
    assert cache.fetch(key) is None


def test_truncated_shard_is_quarantined(cache, datasets):
    key, entry = _store(cache, datasets)
    path, _sha = entry.beacon_shards[1]
    with open(path, "a") as stream:
        stream.write("garbage")
    _assert_quarantined_miss(cache, key, "digest mismatch")


def test_missing_shard_is_quarantined(cache, datasets):
    key, entry = _store(cache, datasets)
    path, _sha = entry.demand_shards[0]
    import os

    os.unlink(path)
    _assert_quarantined_miss(cache, key, "missing shard file")


def test_garbage_meta_is_quarantined(cache, datasets):
    key, _ = _store(cache, datasets)
    (cache.entry_dir(key) / "meta.json").write_text("{not json")
    _assert_quarantined_miss(cache, key, "unreadable meta.json")


def test_foreign_format_version_is_quarantined(cache, datasets):
    key, _ = _store(cache, datasets)
    meta_path = cache.entry_dir(key) / "meta.json"
    meta = json.loads(meta_path.read_text())
    meta["format_version"] = CACHE_FORMAT_VERSION + 1
    meta_path.write_text(json.dumps(meta))
    _assert_quarantined_miss(cache, key, "format version")


def test_restore_after_quarantine(cache, datasets):
    """Corruption costs a rebuild, nothing more: store works again."""
    key, entry = _store(cache, datasets)
    with open(entry.beacon_shards[0][0], "w") as stream:
        stream.write("{}")
    assert cache.fetch(key) is None
    _, entry2 = _store(cache, datasets)
    assert cache.fetch(key) is not None
    loaded_beacons, _ = cache.load_datasets(entry2)
    assert dataset_digest(loaded_beacons) == dataset_digest(datasets[0])


def test_repeated_corruption_never_collides(cache, datasets):
    for _ in range(3):
        key, entry = _store(cache, datasets)
        with open(entry.beacon_shards[0][0], "a") as stream:
            stream.write("x")
        assert cache.fetch(key) is None
    quarantined_dirs = [
        p for p in (cache.root / "quarantine").iterdir() if p.is_dir()
    ]
    assert len(quarantined_dirs) == 3


def test_load_shard_columns_verifies_digest(cache, datasets, tmp_path):
    key, entry = _store(cache, datasets)
    path, sha = entry.beacon_shards[0]
    assert isinstance(load_shard_columns(path, sha), dict)
    with pytest.raises(CacheCorruption, match="digest mismatch"):
        load_shard_columns(path, "0" * 64)
    with pytest.raises(CacheCorruption, match="unreadable"):
        load_shard_columns(tmp_path / "nope.json", sha)
    bad = tmp_path / "bad.json"
    bad.write_text("[1, 2]")
    import hashlib

    digest = hashlib.sha256(bad.read_bytes()).hexdigest()
    with pytest.raises(CacheCorruption, match="JSON object"):
        load_shard_columns(bad, digest)


# ---- crash-consistency ------------------------------------------------------


def test_entry_without_meta_does_not_exist(cache, datasets):
    """Shard files without the meta commit point are invisible."""
    key, _ = _store(cache, datasets)
    (cache.entry_dir(key) / "meta.json").unlink()
    assert cache.fetch(key) is None
    # ...and nothing was quarantined: this is a mid-store crash shape,
    # not corruption of a committed entry.
    assert not _quarantine_sidecars(cache)


# ---- lab integration --------------------------------------------------------


def test_lab_cache_round_trip(tmp_path):
    from repro.lab import Lab

    cache_dir = tmp_path / "labcache"
    first = Lab.create(scale=0.002, seed=9, cache_dir=cache_dir)
    beacons_digest = dataset_digest(first.beacons)
    demand_digest = dataset_digest(first.demand)
    assert any(cache_dir.iterdir())  # entry stored on the miss

    second = Lab.create(scale=0.002, seed=9, cache_dir=cache_dir)
    assert dataset_digest(second.beacons) == beacons_digest
    assert dataset_digest(second.demand) == demand_digest

    # Corrupt the entry: the next lab regenerates without crashing.
    cache = DatasetCache(cache_dir)
    key = cache.key_for(second.cache_params())
    for path in cache.entry_dir(key).glob("beacon.shard*.json"):
        path.write_text("garbage")
    third = Lab.create(scale=0.002, seed=9, cache_dir=cache_dir)
    assert dataset_digest(third.beacons) == beacons_digest
    assert cache.fetch(key) is not None  # re-stored after regeneration


def test_lab_cache_key_tracks_parameters(tmp_path):
    from repro.lab import Lab

    a = Lab.create(scale=0.002, seed=9, cache_dir=tmp_path)
    b = Lab.create(scale=0.002, seed=10, cache_dir=tmp_path)
    cache = DatasetCache(tmp_path)
    assert cache.key_for(a.cache_params()) != cache.key_for(b.cache_params())


# ---- streaming shard reads (bounded-memory record batches) ------------------


def _sized_datasets(subnets: int):
    """A BEACON/DEMAND pair with exactly ``subnets`` beacon rows."""
    beacons = BeaconDataset(month="2016-12")
    demand = DemandDataset(window_days=7)
    for i in range(subnets):
        prefix = Prefix(4, (i + 1) << 8, 24)
        beacons.add_counts(
            SubnetBeaconCounts(
                prefix, asn=1 + i % 97, country="US",
                hits=7, api_hits=5, cellular_hits=3,
            )
        )
    demand._add(SubnetDemand(Prefix(4, 1 << 8, 24), 1, "US", 2.5))
    return beacons, demand


def _stored_beacon_shard(tmp_path, subnets: int):
    cache = DatasetCache(tmp_path / f"cache-{subnets}")
    params = {**PARAMS, "subnets": subnets}
    beacons, demand = _sized_datasets(subnets)
    entry = cache.store(
        cache.key_for(params), beacons, demand, shards=1, params=params
    )
    return entry.beacon_shards[0]


def test_shard_files_hold_bounded_record_batches(tmp_path):
    """One JSONL line per batch, never more than SHARD_BATCH_ROWS rows."""
    subnets = SHARD_BATCH_ROWS * 2 + 100
    path, digest = _stored_beacon_shard(tmp_path, subnets)
    sizes = [
        len(batch["idx"]) for batch in iter_shard_batches(path, digest)
    ]
    assert sizes == [SHARD_BATCH_ROWS, SHARD_BATCH_ROWS, 100]
    # Batches concatenate back to the full shard, in order.
    merged = load_shard_columns(path, digest)
    assert len(merged["idx"]) == subnets
    assert merged["idx"] == list(range(subnets))


def test_single_object_shard_file_still_reads(tmp_path):
    """A v1-era single-JSON-object file is a valid one-batch v2 file."""
    import hashlib

    path = tmp_path / "beacon.shard0.json"
    columns = {"idx": [0, 1], "value": [256, 512]}
    path.write_text(json.dumps(columns), encoding="utf-8")
    digest = hashlib.sha256(path.read_bytes()).hexdigest()
    assert list(iter_shard_batches(path, digest)) == [columns]


def test_streaming_peak_memory_is_flat_as_shards_grow(tmp_path):
    """Peak allocation while draining a shard tracks the batch size,
    not the shard size: an 8x larger shard must not cost 8x the peak."""
    import tracemalloc

    def peak_draining(subnets: int) -> int:
        path, digest = _stored_beacon_shard(tmp_path, subnets)
        # Prime imports/caches outside the measured window.
        next(iter_shard_batches(path, digest))
        tracemalloc.start()
        try:
            rows = 0
            for batch in iter_shard_batches(path, digest):
                rows += len(batch["idx"])
            peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
        assert rows == subnets
        return peak

    small = peak_draining(SHARD_BATCH_ROWS * 2)
    large = peak_draining(SHARD_BATCH_ROWS * 16)
    assert large < small * 2, (small, large)
