"""Unit tests for dataset containers: BEACON, DEMAND, ground truth, CAIDA."""

import io

import pytest

from repro.datasets.beacon_dataset import BeaconDataset, SubnetBeaconCounts
from repro.datasets.caida import ASClassificationDataset
from repro.datasets.demand_dataset import (
    DEMAND_UNIT_TOTAL,
    DemandDataset,
    du_to_fraction,
    fraction_to_du,
)
from repro.datasets.groundtruth import carrier_archetypes, ground_truth_for_asn
from repro.net.asn import CAIDAClass
from repro.net.prefix import Prefix
from repro.world.population import Browser


def counts(subnet="10.0.0.0/24", hits=10, api=5, cell=3, asn=1, country="US"):
    return SubnetBeaconCounts(Prefix.parse(subnet), asn, country, hits, api, cell)


class TestSubnetBeaconCounts:
    def test_ratio(self):
        assert counts().cellular_ratio == pytest.approx(0.6)
        assert counts(api=0, cell=0).cellular_ratio is None

    def test_noncellular(self):
        assert counts().noncellular_hits == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            counts(hits=1, api=5)
        with pytest.raises(ValueError):
            counts(api=2, cell=3)

    def test_json_round_trip(self):
        original = counts()
        restored = SubnetBeaconCounts.from_json(original.to_json())
        assert restored.subnet == original.subnet
        assert restored.cellular_hits == original.cellular_hits


class TestBeaconDataset:
    def test_add_and_merge(self):
        dataset = BeaconDataset("2016-12")
        dataset.add_counts(counts())
        dataset.add_counts(counts(hits=4, api=2, cell=2))
        merged = dataset.get(Prefix.parse("10.0.0.0/24"))
        assert merged.hits == 14
        assert merged.cellular_hits == 5

    def test_merge_conflicting_metadata_rejected(self):
        dataset = BeaconDataset("2016-12")
        dataset.add_counts(counts(asn=1))
        with pytest.raises(ValueError):
            dataset.add_counts(counts(asn=2))

    def test_observe_hit(self):
        dataset = BeaconDataset("2016-12")
        dataset.observe_hit(Prefix.parse("10.0.0.0/24"), 1, "US",
                            Browser.CHROME_MOBILE, True, True)
        dataset.observe_hit(Prefix.parse("10.0.0.0/24"), 1, "US",
                            Browser.SAFARI_IOS, False, False)
        entry = dataset.get(Prefix.parse("10.0.0.0/24"))
        assert (entry.hits, entry.api_hits, entry.cellular_hits) == (2, 1, 1)
        assert dataset.browser_counts[Browser.CHROME_MOBILE] == (1, 1)
        assert dataset.browser_counts[Browser.SAFARI_IOS] == (1, 0)

    def test_observe_hit_rejects_impossible(self):
        dataset = BeaconDataset("2016-12")
        with pytest.raises(ValueError):
            dataset.observe_hit(Prefix.parse("10.0.0.0/24"), 1, "US",
                                Browser.CHROME_MOBILE, False, True)

    def test_hits_by_asn(self):
        dataset = BeaconDataset("2016-12")
        dataset.add_counts(counts(asn=1))
        dataset.add_counts(counts(subnet="10.0.1.0/24", asn=1))
        dataset.add_counts(counts(subnet="10.0.2.0/24", asn=2))
        assert dataset.hits_by_asn() == {1: 20, 2: 10}

    def test_family_filter(self):
        dataset = BeaconDataset("2016-12")
        dataset.add_counts(counts())
        dataset.add_counts(counts(subnet="2001:db8::/48"))
        assert len(dataset.subnets(4)) == 1
        assert len(dataset.subnets(6)) == 1

    def test_dump_load_round_trip(self):
        dataset = BeaconDataset("2016-12")
        dataset.add_counts(counts())
        dataset.observe_browser_batch(Browser.CHROME_MOBILE, 100, 40)
        buffer = io.StringIO()
        dataset.dump(buffer)
        buffer.seek(0)
        restored = BeaconDataset.load(buffer)
        assert restored.month == "2016-12"
        assert restored.browser_counts[Browser.CHROME_MOBILE] == (100, 40)
        assert restored.get(Prefix.parse("10.0.0.0/24")).hits == 10

    def test_load_rejects_missing_header(self):
        with pytest.raises(ValueError):
            BeaconDataset.load(io.StringIO(""))


class TestDemandDataset:
    def test_from_request_totals_normalizes(self):
        dataset = DemandDataset.from_request_totals(
            [
                (Prefix.parse("10.0.0.0/24"), 1, "US", 300),
                (Prefix.parse("10.0.1.0/24"), 2, "DE", 100),
            ]
        )
        assert dataset.total_du == pytest.approx(DEMAND_UNIT_TOTAL)
        assert dataset.du_of(Prefix.parse("10.0.0.0/24")) == pytest.approx(75_000)

    def test_zero_request_subnets_dropped(self):
        dataset = DemandDataset.from_request_totals(
            [
                (Prefix.parse("10.0.0.0/24"), 1, "US", 10),
                (Prefix.parse("10.0.1.0/24"), 1, "US", 0),
            ]
        )
        assert len(dataset) == 1

    def test_rejections(self):
        with pytest.raises(ValueError):
            DemandDataset.from_request_totals([])
        with pytest.raises(ValueError):
            DemandDataset.from_request_totals(
                [(Prefix.parse("10.0.0.0/24"), 1, "US", -5)]
            )
        with pytest.raises(ValueError):
            DemandDataset(window_days=0)

    def test_du_conversions(self):
        assert fraction_to_du(0.01) == pytest.approx(1000)  # 1% = 1000 DU
        assert du_to_fraction(1000) == pytest.approx(0.01)

    def test_dump_load_round_trip(self):
        dataset = DemandDataset.from_request_totals(
            [(Prefix.parse("10.0.0.0/24"), 1, "US", 10)], window_days=7
        )
        buffer = io.StringIO()
        dataset.dump(buffer)
        buffer.seek(0)
        restored = DemandDataset.load(buffer)
        assert restored.window_days == 7
        assert restored.du_of(Prefix.parse("10.0.0.0/24")) == pytest.approx(
            DEMAND_UNIT_TOTAL
        )


class TestGroundTruth:
    def test_archetypes(self, world):
        carriers = carrier_archetypes(world)
        assert set(carriers) == {"Carrier A", "Carrier B", "Carrier C"}
        assert carriers["Carrier A"].mixed
        assert not carriers["Carrier B"].mixed
        assert carriers["Carrier B"].country == "US"
        assert carriers["Carrier C"].mixed

    def test_labels_match_world_truth(self, world):
        truth = carrier_archetypes(world)["Carrier A"]
        for prefix in truth.cellular[:50]:
            assert world.truth_is_cellular(prefix) is True
        for prefix in truth.fixed[:50]:
            assert world.truth_is_cellular(prefix) is False

    def test_truth_trie(self, world):
        truth = carrier_archetypes(world)["Carrier B"]
        trie = truth.truth_trie(4)
        cellular_v4 = [p for p in truth.cellular if p.family == 4]
        assert len(trie) == len(cellular_v4) + len(
            [p for p in truth.fixed if p.family == 4]
        )
        if cellular_v4:
            assert trie.get(cellular_v4[0]) is True

    def test_ground_truth_for_unknown_asn(self, world):
        with pytest.raises(KeyError):
            ground_truth_for_asn(world, 999_999_999)


class TestCAIDA:
    def test_cellular_never_misclassified(self, world):
        dataset = ASClassificationDataset.from_world(world)
        for asn in world.truth_cellular_asns():
            assert dataset.is_access(asn)

    def test_unknown_rate_applied(self, world):
        dataset = ASClassificationDataset.from_world(world, unknown_rate=0.5)
        non_cellular = [
            record.asn
            for record in world.topology.registry
            if not record.is_cellular
        ]
        missing = sum(1 for asn in non_cellular if asn not in dataset)
        assert missing / len(non_cellular) == pytest.approx(0.5, abs=0.1)

    def test_unlisted_is_unknown(self, world):
        dataset = ASClassificationDataset.from_world(world)
        assert dataset.class_of(999_999_999) is CAIDAClass.UNKNOWN
        assert not dataset.is_access(999_999_999)

    def test_rate_validation(self, world):
        with pytest.raises(ValueError):
            ASClassificationDataset.from_world(world, unknown_rate=1.0)
