"""Tests for the platform demand generator and DEMAND aggregation."""

import pytest

from repro.cdn.demand import DemandConfig, DemandGenerator
from repro.datasets.demand_dataset import DEMAND_UNIT_TOTAL
from repro.world.build import WorldParams, build_world


@pytest.fixture(scope="module")
def small_world():
    return build_world(WorldParams(seed=13, scale=0.002, background_as_count=200))


@pytest.fixture(scope="module")
def dataset(small_world):
    return DemandGenerator(small_world, DemandConfig()).build_dataset()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DemandConfig(days=0)
        with pytest.raises(ValueError):
            DemandConfig(daily_requests=0)
        with pytest.raises(ValueError):
            DemandConfig(day_jitter_sigma=-1)


class TestRecords:
    def test_window_days(self, small_world):
        config = DemandConfig(days=3)
        days = {r.day for r in DemandGenerator(small_world, config).iter_records()}
        assert days <= {0, 1, 2}

    def test_zero_demand_subnets_emit_nothing(self, small_world):
        generator = DemandGenerator(small_world, DemandConfig(days=1))
        demandless = {
            s.prefix for s in small_world.subnets() if s.demand_weight == 0
        }
        for record in generator.iter_records():
            assert record.subnet not in demandless


class TestDataset:
    def test_normalized_to_du_total(self, dataset):
        assert dataset.total_du == pytest.approx(DEMAND_UNIT_TOTAL)

    def test_proxy_subnets_present(self, small_world, dataset):
        # Terminating proxies have demand despite emitting no beacons.
        proxies = [s for s in small_world.subnets() if s.proxy_like]
        assert proxies
        with_demand = [s for s in proxies if dataset.du_of(s.prefix) > 0]
        assert len(with_demand) >= len(proxies) * 0.8

    def test_demand_tracks_plan_weights(self, small_world, dataset):
        plans = sorted(
            (s for s in small_world.subnets() if s.demand_weight > 0),
            key=lambda s: s.demand_weight,
        )
        heavy, light = plans[-1], plans[len(plans) // 2]
        assert dataset.du_of(heavy.prefix) > dataset.du_of(light.prefix)

    def test_rollups_consistent(self, dataset):
        by_asn = dataset.du_by_asn()
        by_country = dataset.du_by_country()
        assert sum(by_asn.values()) == pytest.approx(dataset.total_du)
        assert sum(by_country.values()) == pytest.approx(dataset.total_du)

    def test_deterministic(self, small_world):
        a = DemandGenerator(small_world, DemandConfig()).build_dataset()
        b = DemandGenerator(small_world, DemandConfig()).build_dataset()
        assert len(a) == len(b)
        for record in a:
            assert b.du_of(record.subnet) == pytest.approx(record.du)
