"""Tests for the DNS substrate: resolvers, affinities, analyses."""

import pytest

from repro.dns.affinity import build_affinity
from repro.dns.analysis import (
    public_dns_usage,
    resolver_cellular_fractions,
    resolver_distance_report,
    shared_resolver_fraction,
)
from repro.dns.public import (
    PUBLIC_SERVICES,
    PublicDNSService,
    normalized_popularity,
    service_by_name,
)
from repro.dns.resolvers import Resolver, ServingPolicy, deploy_resolvers
from repro.net.asn import ASType


class TestPublicServices:
    def test_table(self):
        names = {service.name for service in PUBLIC_SERVICES}
        assert names == {"GoogleDNS", "OpenDNS", "Level3"}
        assert service_by_name()["GoogleDNS"].addresses[0] == "8.8.8.8"

    def test_popularity_normalized(self):
        weights = normalized_popularity()
        assert sum(weights.values()) == pytest.approx(1.0)
        assert weights["GoogleDNS"] > weights["OpenDNS"] > weights["Level3"]

    def test_validation(self):
        with pytest.raises(ValueError):
            PublicDNSService("X", (), popularity=1)
        with pytest.raises(ValueError):
            PublicDNSService("X", ("1.2.3.4",), popularity=0)
        with pytest.raises(ValueError):
            PublicDNSService("X", ("not-an-ip",), popularity=1)


class TestResolverRecords:
    def test_operator_or_public_exclusive(self):
        with pytest.raises(ValueError):
            Resolver("x", asn=1, service="GoogleDNS", country="US",
                     latitude=0, longitude=0)
        with pytest.raises(ValueError):
            Resolver("x", asn=None, service=None, country=None,
                     latitude=0, longitude=0)

    def test_policy_serves(self):
        assert ServingPolicy.SHARED.serves(True)
        assert ServingPolicy.SHARED.serves(False)
        assert ServingPolicy.CELLULAR_ONLY.serves(True)
        assert not ServingPolicy.CELLULAR_ONLY.serves(False)
        assert ServingPolicy.FIXED_ONLY.serves(False)
        assert not ServingPolicy.FIXED_ONLY.serves(True)


class TestDeployment:
    def test_access_networks_get_resolvers(self, tiny_world):
        by_asn, public = deploy_resolvers(tiny_world)
        access_asns = {
            p.record.asn
            for p in tiny_world.topology.plans.values()
            if p.record.as_type.is_access
        }
        assert set(by_asn) == access_asns
        for resolvers in by_asn.values():
            assert 2 <= len(resolvers) <= 6
        assert len(public) == sum(len(s.addresses) for s in PUBLIC_SERVICES)

    def test_mixed_ases_have_varied_policies(self, tiny_world):
        by_asn, _ = deploy_resolvers(tiny_world)
        mixed_asns = [
            p.record.asn
            for p in tiny_world.topology.plans.values()
            if p.record.as_type is ASType.CELLULAR_MIXED
        ]
        policies = {
            resolver.policy
            for asn in mixed_asns
            for resolver in by_asn[asn]
        }
        assert ServingPolicy.SHARED in policies
        assert ServingPolicy.CELLULAR_ONLY in policies

    def test_cellular_clients_always_have_a_resolver(self, tiny_world):
        by_asn, _ = deploy_resolvers(tiny_world)
        for resolvers in by_asn.values():
            assert any(r.policy.serves(True) for r in resolvers)

    def test_deterministic(self, tiny_world):
        a, _ = deploy_resolvers(tiny_world)
        b, _ = deploy_resolvers(tiny_world)
        for asn in a:
            assert [r.resolver_id for r in a[asn]] == [
                r.resolver_id for r in b[asn]
            ]
            assert [r.policy for r in a[asn]] == [r.policy for r in b[asn]]


class TestAffinity:
    def test_demand_conserved_per_access_subnet(self, lab):
        affinity = lab.affinity
        from collections import defaultdict

        per_subnet = defaultdict(float)
        for record in affinity:
            per_subnet[record.subnet] += record.du
        # Each access-network subnet's DU is split, never lost.
        checked = 0
        for subnet, du in per_subnet.items():
            assert du == pytest.approx(lab.demand.du_of(subnet), rel=1e-6)
            checked += 1
        assert checked > 1000

    def test_policies_honored(self, lab):
        affinity = lab.affinity
        for record in affinity:
            if record.resolver.is_public:
                continue
            truth = lab.world.allocation.by_prefix[record.subnet]
            assert record.resolver.policy.serves(truth.is_cellular)

    def test_public_fraction_tracks_profiles(self, lab):
        # Algerian carriers push ~97% of cellular demand to public DNS;
        # U.S. carriers under 2%.
        usage_by_country = {}
        classification = lab.result.classification
        for country in ("DZ", "US"):
            asns = [
                asn
                for asn, profile in lab.result.operators.items()
                if profile.country == country
            ]
            usage = public_dns_usage(lab.affinity, classification, asns)
            totals = [u.public_fraction for u in usage.values() if u.total_du > 0]
            usage_by_country[country] = sum(totals) / len(totals)
        assert usage_by_country["DZ"] > 0.6
        assert usage_by_country["US"] < 0.1

    def test_distances_computable(self, lab):
        for record in lab.affinity:
            distance = record.distance_km
            if record.resolver.is_public:
                assert distance is None
            else:
                assert distance is not None and distance >= 0


class TestAnalyses:
    def test_resolver_fractions_bounded(self, lab):
        shares = resolver_cellular_fractions(
            lab.affinity, lab.result.classification
        )
        assert shares
        for share in shares:
            assert 0.0 <= share.cellular_fraction <= 1.0

    def test_shared_fraction_in_mixed_ases(self, lab):
        mixed = {a for a, p in lab.result.operators.items() if p.is_mixed}
        shares = resolver_cellular_fractions(
            lab.affinity, lab.result.classification, asns=mixed
        )
        # Paper: ~60% of mixed-network resolvers are shared.
        assert 0.4 <= shared_resolver_fraction(shares) <= 0.8

    def test_shared_fraction_empty_raises(self):
        with pytest.raises(ValueError):
            shared_resolver_fraction([])

    def test_distance_asymmetry_in_mixed_carriers(self, lab):
        mixed = [
            p for p in lab.result.operators.values()
            if p.is_mixed and p.country == "BR"
        ]
        assert mixed
        target = max(mixed, key=lambda p: p.cellular_du)
        report = resolver_distance_report(
            lab.affinity, lab.result.classification, target.asn
        )
        assert report.cellular_km > report.fixed_km
        assert report.asymmetry > 2
