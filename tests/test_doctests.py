"""Run the doctests embedded in public docstrings.

Docstring examples are part of the API contract; this keeps them from
rotting.
"""

import doctest

import pytest

import repro.analysis.report
import repro.core.confidence
import repro.net.addr
import repro.net.prefix
import repro.stats.concentration
import repro.stats.sampling

MODULES = [
    repro.net.addr,
    repro.net.prefix,
    repro.stats.sampling,
    repro.stats.concentration,
    repro.core.confidence,
    repro.analysis.report,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failures"
    # Each of these modules ships at least one example.
    if module in (repro.net.addr, repro.net.prefix):
        assert results.attempted > 0
