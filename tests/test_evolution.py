"""Tests for temporal evolution and churn metrics."""

import pytest

from repro.evolution.churn import (
    ChurnReport,
    churn_between,
    run_monthly_census,
)
from repro.evolution.drift import EvolutionConfig, evolve_world
from repro.net.prefix import Prefix


def p(text):
    return Prefix.parse(text)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EvolutionConfig(deactivation_rate=1.0)
        with pytest.raises(ValueError):
            EvolutionConfig(activation_rate=-0.1)
        with pytest.raises(ValueError):
            EvolutionConfig(demand_drift_sigma=-1)


class TestEvolveWorld:
    def test_month_zero_is_identity(self, tiny_world):
        assert evolve_world(tiny_world, 0) is tiny_world

    def test_negative_rejected(self, tiny_world):
        with pytest.raises(ValueError):
            evolve_world(tiny_world, -1)

    def test_prefixes_preserved(self, tiny_world):
        evolved = evolve_world(tiny_world, 2)
        assert set(evolved.allocation.by_prefix) == set(
            tiny_world.allocation.by_prefix
        )

    def test_deterministic(self, tiny_world):
        a = evolve_world(tiny_world, 3)
        b = evolve_world(tiny_world, 3)
        for prefix, subnet in a.allocation.by_prefix.items():
            other = b.allocation.by_prefix[prefix]
            assert subnet.demand_weight == other.demand_weight
            assert subnet.is_cellular == other.is_cellular

    def test_cumulative(self, tiny_world):
        # Month 2 differs from month 1 (drift keeps applying).
        one = evolve_world(tiny_world, 1)
        two = evolve_world(tiny_world, 2)
        changed = sum(
            1
            for prefix in one.allocation.by_prefix
            if one.allocation.by_prefix[prefix].demand_weight
            != two.allocation.by_prefix[prefix].demand_weight
        )
        assert changed > 0

    def test_transitions_happen(self, tiny_world):
        evolved = evolve_world(tiny_world, 4)
        deactivated = activated = reassigned = 0
        for prefix, before in tiny_world.allocation.by_prefix.items():
            after = evolved.allocation.by_prefix[prefix]
            before_active = before.beacon_coverage > 0 or before.demand_weight > 0
            after_active = after.beacon_coverage > 0 or after.demand_weight > 0
            if before.is_cellular and before_active and not after_active:
                deactivated += 1
            if before.is_cellular and not before_active and after_active:
                activated += 1
            if before.is_cellular != after.is_cellular:
                reassigned += 1
        assert deactivated > 0
        assert activated > 0
        assert reassigned > 0

    def test_proxies_never_reassigned(self, tiny_world):
        evolved = evolve_world(tiny_world, 5)
        for prefix, before in tiny_world.allocation.by_prefix.items():
            if before.proxy_like:
                assert not evolved.allocation.by_prefix[prefix].is_cellular

    def test_truth_cache_rebuilt(self, tiny_world):
        evolved = evolve_world(tiny_world, 3)
        flipped = [
            prefix
            for prefix, before in tiny_world.allocation.by_prefix.items()
            if before.is_cellular
            != evolved.allocation.by_prefix[prefix].is_cellular
        ]
        assert flipped
        sample = flipped[0]
        assert evolved.truth_is_cellular(sample) != tiny_world.truth_is_cellular(
            sample
        )


class TestChurnMetrics:
    def test_identical_sets(self):
        report = churn_between({p("10.0.0.0/24")}, {p("10.0.0.0/24")})
        assert report.jaccard == 1.0
        assert report.churn_rate == 0.0
        assert report.stable_demand_fraction == 1.0

    def test_disjoint_sets(self):
        report = churn_between({p("10.0.0.0/24")}, {p("10.0.1.0/24")})
        assert report.jaccard == 0.0
        assert report.churn_rate == 1.0
        assert report.added == 1 and report.removed == 1

    def test_empty_sets(self):
        report = churn_between(set(), set())
        assert report.jaccard == 1.0
        assert report.churn_rate == 0.0

    def test_demand_weighting(self):
        from repro.datasets.demand_dataset import DemandDataset

        demand = DemandDataset.from_request_totals(
            [
                (p("10.0.0.0/24"), 1, "US", 990),
                (p("10.0.1.0/24"), 1, "US", 10),
            ]
        )
        report = churn_between(
            {p("10.0.0.0/24")},
            {p("10.0.0.0/24"), p("10.0.1.0/24")},
            demand,
        )
        # The added subnet is light: demand-weighted stability is high.
        assert report.stable_demand_fraction == pytest.approx(0.99)
        assert report.jaccard == pytest.approx(0.5)


class TestMonthlyCensus:
    def test_census_properties(self, tiny_world):
        census = run_monthly_census(tiny_world, months=2)
        assert census.months == [0, 1, 2]
        reports = census.reports()
        assert len(reports) == 2
        for report in reports:
            # Cellular space churns, but not catastrophically...
            assert 0.4 <= report.jaccard <= 1.0
            # ...and the demand-heavy core is far stabler than the tail.
            assert report.stable_demand_fraction >= report.jaccard

    def test_validation(self, tiny_world):
        with pytest.raises(ValueError):
            run_monthly_census(tiny_world, months=0)


class TestStaleness:
    def test_staleness_bounds_and_meaning(self, tiny_world):
        from repro.evolution.churn import prefix_list_staleness, run_monthly_census

        census = run_monthly_census(tiny_world, months=2)
        staleness = prefix_list_staleness(census)
        assert 0.0 <= staleness <= 1.0
        # A map frozen at the final month covers everything.
        assert prefix_list_staleness(
            census, base_month=census.months[-1]
        ) == 1.0
        # Older snapshots can only cover less or equal.
        assert staleness <= 1.0
        with pytest.raises(KeyError):
            prefix_list_staleness(census, base_month=99)
