"""Smoke tests: every example script runs end to end.

Examples honor the ``REPRO_SCALE`` environment variable, so the smoke
runs use a very small world to stay fast while still exercising the
full code path (including the assertions inside the scripts).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs(script):
    env = dict(os.environ, REPRO_SCALE="0.0015")
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_examples_present():
    # The repo promises at least the quickstart plus domain scenarios.
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
