"""Self-healing shard executor: retries, rebuilds, timeouts, hedging.

Every scenario asserts the executor's core contract under injected
faults: the ordered results are identical to a fault-free serial run,
or the run fails loudly with :class:`ShardExecutionError` -- never a
silently wrong answer.
"""

from __future__ import annotations

import pytest

from repro.parallel.executor import (
    ShardExecutionError,
    ShardExecutor,
    ShardPlan,
)
from repro.runtime.faults import FaultPlan, FaultSpec, chaos


def _square(value: int) -> int:
    return value * value


ARGS = [1, 2, 3, 4]
EXPECTED = [1, 4, 9, 16]


def _results(executor: ShardExecutor) -> list:
    return [result for _elapsed, result in executor.map(_square, ARGS)]


class TestShardPlanValidation:
    def test_defaults(self):
        plan = ShardPlan.plan(workers=2, shards=4)
        assert plan.max_retries == 2
        assert plan.shard_timeout_s is None
        assert not plan.hedge

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shard_timeout_s": 0},
            {"shard_timeout_s": -1.0},
            {"max_retries": -1},
            {"backoff_s": -0.1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ShardPlan.plan(workers=2, **kwargs)


class TestInlineRetries:
    def test_transient_error_is_retried(self):
        plan = FaultPlan(name="t", faults=[
            FaultSpec(name="flake", site="executor.shard", kind="error",
                      at=2, times=2),
        ])
        executor = ShardExecutor(ShardPlan.plan(workers=1, max_retries=3,
                                                backoff_s=0.0))
        with chaos(plan):
            assert _results(executor) == EXPECTED

    def test_budget_exhaustion_raises(self):
        plan = FaultPlan(name="t", faults=[
            FaultSpec(name="flake", site="executor.shard", kind="error",
                      at=1, times=10),
        ])
        executor = ShardExecutor(ShardPlan.plan(workers=1, max_retries=1,
                                                backoff_s=0.0))
        with chaos(plan):
            with pytest.raises(ShardExecutionError, match="shard 1"):
                _results(executor)


class TestPoolSelfHealing:
    def _pool_executor(self, **kwargs) -> ShardExecutor:
        kwargs.setdefault("max_retries", 3)
        kwargs.setdefault("backoff_s", 0.0)
        return ShardExecutor(
            ShardPlan.plan(workers=2, force_processes=True, **kwargs)
        )

    def test_worker_crash_is_recovered(self, tmp_path):
        """SIGKILL'd worker -> pool rebuild -> resubmit -> identical."""
        plan = FaultPlan(name="t", faults=[
            FaultSpec(name="die", site="executor.shard",
                      kind="worker_crash", at=1, times=1),
        ])
        executor = self._pool_executor()
        with chaos(plan, state_dir=tmp_path / "state"):
            assert _results(executor) == EXPECTED

    def test_worker_flake_is_retried(self, tmp_path):
        plan = FaultPlan(name="t", faults=[
            FaultSpec(name="flake", site="executor.shard", kind="error",
                      at=3, times=2),
        ])
        executor = self._pool_executor()
        with chaos(plan, state_dir=tmp_path / "state"):
            assert _results(executor) == EXPECTED

    def test_hung_worker_times_out_and_recovers(self, tmp_path):
        """A 30s hang against a 1s budget: killed, resubmitted, done."""
        plan = FaultPlan(name="t", faults=[
            FaultSpec(name="hang", site="executor.shard",
                      kind="worker_hang", at=0, times=1, delay_s=30.0),
        ])
        executor = self._pool_executor(shard_timeout_s=1.0)
        with chaos(plan, state_dir=tmp_path / "state"):
            assert _results(executor) == EXPECTED

    def test_pool_budget_exhaustion_raises(self, tmp_path):
        plan = FaultPlan(name="t", faults=[
            FaultSpec(name="flake", site="executor.shard", kind="error",
                      at=0, times=20),
        ])
        executor = self._pool_executor(max_retries=1)
        with chaos(plan, state_dir=tmp_path / "state"):
            with pytest.raises(ShardExecutionError):
                _results(executor)

    def test_hedged_slow_shard_still_identical(self, tmp_path):
        """Hedging may race twin attempts; exactly one result survives."""
        plan = FaultPlan(name="t", faults=[
            FaultSpec(name="slow", site="executor.shard",
                      kind="slow_shard", at=0, times=1, delay_s=0.5),
        ])
        executor = self._pool_executor(hedge=True)
        with chaos(plan, state_dir=tmp_path / "state"):
            assert _results(executor) == EXPECTED

    def test_fault_free_pool_matches_serial(self):
        executor = self._pool_executor()
        assert _results(executor) == EXPECTED
