"""Unit tests for helper functions inside experiment modules."""

import pytest

from repro.core.mixed import OperatorClass, OperatorProfile
from repro.experiments.fig4_asn_distributions import (
    _rank_correlation_positive,
)
from repro.experiments.fig6_case_studies import _pick_case_studies
from repro.world.geo import Continent


class TestRankCorrelation:
    def test_positive_association(self):
        a = [1, 2, 3, 4, 5, 6]
        b = [10, 20, 30, 40, 50, 60]
        assert _rank_correlation_positive(a, b)

    def test_negative_association(self):
        a = [1, 2, 3, 4, 5, 6]
        b = [60, 50, 40, 30, 20, 10]
        assert not _rank_correlation_positive(a, b)

    def test_small_samples_pass(self):
        assert _rank_correlation_positive([1, 2], [5, 1])


class TestCaseStudySelection:
    def test_picks_us_dedicated_and_eu_mixed(self, lab):
        dedicated, mixed = _pick_case_studies(lab)
        assert dedicated.country == "US"
        assert not dedicated.is_mixed
        assert mixed.is_mixed
        europe = {
            country.iso2
            for country in lab.world.geography.by_continent(Continent.EUROPE)
        }
        assert mixed.country in europe

    def test_mixed_case_is_fixed_dominated(self, lab):
        _, mixed = _pick_case_studies(lab)
        # The paper's case study carrier is ~5% cellular; selection
        # prefers CFD <= 0.3 when available.
        assert mixed.cellular_fraction_of_demand <= 0.3

    def test_dedicated_is_largest(self, lab):
        dedicated, _ = _pick_case_studies(lab)
        us_dedicated = [
            p for p in lab.result.operators.values()
            if p.country == "US" and not p.is_mixed
        ]
        assert dedicated.cellular_du == max(
            p.cellular_du for p in us_dedicated
        )


class TestCustomWorldBuild:
    def test_custom_profiles_flow_through(self):
        from repro.world.build import WorldParams, build_world
        from repro.world.geo import Country, Geography, _COUNTRY_TABLE
        from repro.world.profiles import CountryProfile, default_profiles

        countries = [Country(*row) for row in _COUNTRY_TABLE]
        countries.append(
            Country("AQ", "Atlantis", Continent.OCEANIA, 2.0, -31.0, -24.0)
        )
        profiles = default_profiles()
        profiles["AQ"] = CountryProfile("AQ", 0.05, 0.9, 2)
        world = build_world(
            WorldParams(seed=2, scale=0.0015, background_as_count=50),
            geography=Geography(countries),
            profiles=profiles,
        )
        aq_carriers = [
            p for p in world.topology.cellular_plans()
            if p.record.country == "AQ"
        ]
        assert len(aq_carriers) == 2
        aq_subnets = [s for s in world.subnets() if s.country == "AQ"]
        assert any(s.is_cellular for s in aq_subnets)

    def test_profile_without_geography_rejected(self):
        from repro.world.build import WorldParams, build_world
        from repro.world.profiles import CountryProfile, default_profiles

        profiles = default_profiles()
        profiles["ZY"] = CountryProfile("ZY", 0.1, 0.5, 1)
        with pytest.raises(ValueError):
            build_world(
                WorldParams(seed=2, scale=0.0015, background_as_count=10),
                profiles=profiles,
            )
