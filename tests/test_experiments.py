"""Integration tests: every paper table/figure regenerates and lands
within its stated tolerances on the shared lab."""

import pytest

from repro.experiments.base import (
    EXPERIMENT_MODULES,
    Comparison,
    ExperimentResult,
    load_all,
    run_all,
)


@pytest.fixture(scope="session")
def results(lab):
    return run_all(lab)


class TestRegistry:
    def test_all_modules_register(self):
        runners = load_all()
        assert set(runners) == {
            module.split("_")[0] for module in EXPERIMENT_MODULES
        }
        assert len(runners) == len(EXPERIMENT_MODULES) == 25

    def test_duplicate_registration_rejected(self):
        from repro.experiments.base import experiment

        with pytest.raises(ValueError):
            experiment("table1")(lambda lab: None)


class TestComparison:
    def test_relative_tolerance(self):
        assert Comparison("x", paper=10, measured=14, rel_tol=0.5).ok
        assert not Comparison("x", paper=10, measured=16, rel_tol=0.5).ok

    def test_zero_paper_uses_absolute(self):
        assert Comparison("x", paper=0, measured=0.1, rel_tol=0.2).ok
        assert not Comparison("x", paper=0, measured=0.3, rel_tol=0.2).ok

    def test_as_row_verdict(self):
        row = Comparison("m", paper=1, measured=1).as_row()
        assert row[-1] == "ok"


class TestAllExperiments:
    def test_every_experiment_produces_rows(self, results):
        for experiment_id, result in results.items():
            assert isinstance(result, ExperimentResult)
            assert result.rows, experiment_id
            assert result.comparisons, experiment_id

    def test_renders(self, results):
        for result in results.values():
            text = result.render()
            assert result.experiment_id in text
            assert "paper vs measured" in text

    def test_comparisons_within_tolerance(self, results):
        diverging = [
            (experiment_id, comparison.metric, comparison.paper,
             comparison.measured)
            for experiment_id, result in results.items()
            for comparison in result.comparisons
            if not comparison.ok
        ]
        assert not diverging, diverging


class TestHeadlineNumbers:
    """The paper's headline findings, checked directly on the lab."""

    def test_cellular_as_count(self, results):
        table5 = results["table5"]
        accepted = next(
            c for c in table5.comparisons
            if c.metric == "accepted cellular ASes"
        )
        assert accepted.ok  # paper: 668

    def test_global_cellular_fraction(self, results):
        table8 = results["table8"]
        overall = next(
            c for c in table8.comparisons
            if c.metric == "global cellular fraction"
        )
        assert overall.ok  # paper: 16.2%

    def test_mixed_majority(self, lab):
        from repro.core.mixed import mixed_share

        share = mixed_share(lab.result.operators.values())
        assert share > 0.5  # paper: 58.6% of cellular ASes are mixed

    def test_us_dominates_cellular_demand(self, results):
        fig11 = results["fig11"]
        us = next(
            c for c in fig11.comparisons
            if c.metric == "the U.S. is the top cellular country"
        )
        assert us.measured == 1.0


class TestStructure:
    """Structural contracts every experiment result must satisfy."""

    def test_ids_match_keys(self, results):
        for experiment_id, result in results.items():
            assert result.experiment_id == experiment_id

    def test_rows_match_headers(self, results):
        for experiment_id, result in results.items():
            width = len(result.headers)
            for row in result.rows:
                assert len(row) == width, experiment_id

    def test_titles_and_metrics_unique(self, results):
        titles = [result.title for result in results.values()]
        assert len(titles) == len(set(titles))
        for experiment_id, result in results.items():
            metrics = [c.metric for c in result.comparisons]
            assert len(metrics) == len(set(metrics)), experiment_id

    def test_every_comparison_has_finite_values(self, results):
        import math

        for experiment_id, result in results.items():
            for comparison in result.comparisons:
                assert math.isfinite(comparison.paper), experiment_id
                assert math.isfinite(comparison.measured), (
                    experiment_id, comparison.metric,
                )
