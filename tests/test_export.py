"""Tests for the cellular prefix list export."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classifier import SubnetClassifier
from repro.core.export import CellularPrefixList, PrefixEntry, _aggregate
from repro.core.ratios import RatioRecord, RatioTable
from repro.datasets.demand_dataset import DemandDataset
from repro.net.addr import format_ip
from repro.net.prefix import Prefix


def p(text):
    return Prefix.parse(text)


def entry(prefix, asn=1, country="US", api_hits=10, du=0.0):
    return PrefixEntry(p(prefix), asn, country, api_hits, du)


class TestAggregation:
    def test_siblings_merge(self):
        merged = _aggregate([entry("10.0.0.0/24"), entry("10.0.1.0/24")])
        assert len(merged) == 1
        assert str(merged[0].prefix) == "10.0.0.0/23"
        assert merged[0].api_hits == 20

    def test_cascading_merge(self):
        leaves = [entry(f"10.0.{i}.0/24") for i in range(4)]
        merged = _aggregate(leaves)
        assert len(merged) == 1
        assert str(merged[0].prefix) == "10.0.0.0/22"

    def test_different_asn_blocks_merge(self):
        merged = _aggregate(
            [entry("10.0.0.0/24", asn=1), entry("10.0.1.0/24", asn=2)]
        )
        assert len(merged) == 2

    def test_non_adjacent_stay(self):
        merged = _aggregate([entry("10.0.0.0/24"), entry("10.0.2.0/24")])
        assert len(merged) == 2

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            _aggregate([entry("10.0.0.0/24"), entry("10.0.0.0/24")])

    @settings(max_examples=40, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=63), min_size=1))
    def test_aggregation_preserves_coverage(self, offsets):
        base = p("10.0.0.0/18").value
        leaves = [
            entry(str(Prefix(4, base + (offset << 8), 24)))
            for offset in offsets
        ]
        merged = _aggregate(leaves)
        covered = set()
        for item in merged:
            for sub in item.prefix.subnets(24):
                covered.add(sub)
        assert covered == {leaf.prefix for leaf in leaves}
        # Evidence is conserved.
        assert sum(item.api_hits for item in merged) == 10 * len(leaves)


class TestPrefixList:
    @pytest.fixture()
    def prefix_list(self):
        table = RatioTable(
            [
                RatioRecord(p("10.0.0.0/24"), 1, "US", 10, 10, 10),
                RatioRecord(p("10.0.1.0/24"), 1, "US", 10, 9, 10),
                RatioRecord(p("10.9.0.0/24"), 2, "DE", 10, 10, 10),
                RatioRecord(p("10.5.0.0/24"), 1, "US", 10, 0, 10),  # fixed
                RatioRecord(p("2001:db8::/48"), 3, "JP", 10, 10, 10),
            ]
        )
        classification = SubnetClassifier(0.5).classify(table)
        demand = DemandDataset.from_request_totals(
            [(p("10.0.0.0/24"), 1, "US", 100), (p("10.9.0.0/24"), 2, "DE", 50)]
        )
        return CellularPrefixList.from_classification(classification, demand)

    def test_fixed_subnets_excluded(self, prefix_list):
        assert not prefix_list.is_cellular("10.5.0.7")

    def test_lookup_inside_aggregate(self, prefix_list):
        # The two /24s merged into 10.0.0.0/23.
        assert prefix_list.is_cellular("10.0.0.55")
        assert prefix_list.is_cellular("10.0.1.99")
        found = prefix_list.lookup("10.0.1.99")
        assert str(found.prefix) == "10.0.0.0/23"
        assert found.du == pytest.approx(100_000 * 100 / 150)

    def test_lookup_miss(self, prefix_list):
        assert prefix_list.lookup("99.99.99.99") is None

    def test_ipv6_supported(self, prefix_list):
        assert prefix_list.is_cellular("2001:db8::1234")
        assert not prefix_list.is_cellular("2001:dead::1")

    def test_covered_addresses(self, prefix_list):
        assert prefix_list.covered_addresses(4) == 512 + 256
        assert prefix_list.covered_addresses(6) == 1 << 80

    def test_entries_by_family(self, prefix_list):
        assert len(prefix_list.entries(4)) == 2
        assert len(prefix_list.entries(6)) == 1

    def test_csv_round_trip(self, prefix_list):
        buffer = io.StringIO()
        rows = prefix_list.to_csv(buffer)
        assert rows == len(prefix_list)
        buffer.seek(0)
        restored = CellularPrefixList.from_csv(buffer)
        assert len(restored) == len(prefix_list)
        assert restored.is_cellular("10.0.1.99")
        assert restored.lookup("10.0.1.99").du == pytest.approx(
            prefix_list.lookup("10.0.1.99").du
        )

    def test_from_csv_rejects_garbage(self):
        with pytest.raises(ValueError):
            CellularPrefixList.from_csv(io.StringIO("not,a,prefix,list\n"))
        with pytest.raises(ValueError):
            CellularPrefixList.from_csv(io.StringIO(""))


class TestOnLab:
    def test_pipeline_export(self, lab):
        prefix_list = CellularPrefixList.from_classification(
            lab.result.classification, lab.demand
        )
        raw = CellularPrefixList.from_classification(
            lab.result.classification, lab.demand, aggregate=False
        )
        # Aggregation compresses without losing coverage.
        assert len(prefix_list) < len(raw)
        assert prefix_list.covered_addresses(4) == raw.covered_addresses(4)
        # Every detected cellular /24 resolves through the list.
        for subnet in lab.result.classification.cellular_subnets(4)[:200]:
            address = format_ip(4, subnet.first_address)
            assert prefix_list.is_cellular(address)
