"""Failure injection: malformed inputs must fail loudly, not silently.

The pipeline is meant to consume logs a third party generated; every
container therefore validates on ingest, and these tests feed each one
corrupted data.
"""

import io

import pytest

from repro.cdn.logs import BeaconHit, RequestRecord, read_jsonl
from repro.core.classifier import SubnetClassifier
from repro.core.ratios import RatioTable
from repro.datasets.beacon_dataset import BeaconDataset, SubnetBeaconCounts
from repro.datasets.demand_dataset import DemandDataset
from repro.net.prefix import Prefix


def p(text):
    return Prefix.parse(text)


class TestCorruptedBeaconData:
    def test_inconsistent_counts_rejected_on_load(self):
        # cellular > api is impossible; the loader must refuse it.
        stream = io.StringIO(
            '{"month":"2016-12","browsers":{}}\n'
            '{"subnet":"10.0.0.0/24","asn":1,"country":"US",'
            '"hits":5,"api":2,"cell":4}\n'
        )
        with pytest.raises(ValueError):
            BeaconDataset.load(stream)

    def test_api_exceeding_hits_rejected(self):
        with pytest.raises(ValueError):
            SubnetBeaconCounts(p("10.0.0.0/24"), 1, "US", 5, 9, 1)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            SubnetBeaconCounts(p("10.0.0.0/24"), 1, "US", 5, 2, -1)

    def test_merge_cannot_break_invariants(self):
        dataset = BeaconDataset("2016-12")
        dataset.add_counts(SubnetBeaconCounts(p("10.0.0.0/24"), 1, "US", 5, 2, 1))
        counts = SubnetBeaconCounts(p("10.0.0.0/24"), 1, "US", 5, 2, 1)
        counts.cellular_hits = 3  # corrupt after construction
        with pytest.raises(ValueError):
            dataset.add_counts(counts)

    def test_malformed_json_line(self):
        stream = io.StringIO(
            '{"month":"2016-12","browsers":{}}\n'
            "this is not json\n"
        )
        with pytest.raises(ValueError):
            BeaconDataset.load(stream)


class TestCorruptedDemandData:
    def test_negative_du_rejected_on_load(self):
        stream = io.StringIO(
            '{"window_days":7}\n'
            '{"subnet":"10.0.0.0/24","asn":1,"country":"US","du":-5.0}\n'
        )
        with pytest.raises(ValueError):
            DemandDataset.load(stream)

    def test_duplicate_subnet_rejected_on_load(self):
        stream = io.StringIO(
            '{"window_days":7}\n'
            '{"subnet":"10.0.0.0/24","asn":1,"country":"US","du":1.0}\n'
            '{"subnet":"10.0.0.0/24","asn":1,"country":"US","du":2.0}\n'
        )
        with pytest.raises(ValueError):
            DemandDataset.load(stream)

    def test_missing_header(self):
        with pytest.raises(ValueError):
            DemandDataset.load(io.StringIO(""))


class TestCorruptedLogRecords:
    def test_beacon_hit_bad_prefix(self):
        with pytest.raises(Exception):
            BeaconHit.from_json(
                '{"month":"2016-12","ip":"10.0.0.1","subnet":"not-a-prefix",'
                '"asn":1,"country":"US","browser":"Chrome Mobile",'
                '"conn":"cellular"}'
            )

    def test_beacon_hit_unknown_browser(self):
        with pytest.raises(ValueError):
            BeaconHit.from_json(
                '{"month":"2016-12","ip":"10.0.0.1","subnet":"10.0.0.0/24",'
                '"asn":1,"country":"US","browser":"Netscape 4",'
                '"conn":"cellular"}'
            )

    def test_request_record_negative_count(self):
        with pytest.raises(ValueError):
            RequestRecord.from_json(
                '{"day":0,"subnet":"10.0.0.0/24","asn":1,"country":"US",'
                '"requests":-3}'
            )

    def test_read_jsonl_propagates_parse_errors(self):
        stream = io.StringIO('{"day":0,"broken\n')
        with pytest.raises(Exception):
            list(read_jsonl(stream, RequestRecord))


class TestPipelineEdgeCases:
    def test_classifier_on_empty_table_is_empty(self):
        result = SubnetClassifier().classify(RatioTable([]))
        assert len(result) == 0
        assert result.cellular_subnets() == []
        assert result.asns_with_cellular() == {}

    def test_identify_on_empty_classification(self):
        from repro.core.asn_classifier import identify_cellular_ases

        classification = SubnetClassifier().classify(RatioTable([]))
        demand = DemandDataset.from_request_totals(
            [(p("10.0.0.0/24"), 1, "US", 1)]
        )
        beacons = BeaconDataset("2016-12")
        result = identify_cellular_ases(classification, demand, beacons)
        assert result.candidate_count == 0
        assert result.accepted_count == 0
        assert all(filtered == 0 for _, filtered, _ in result.filter_summary())
