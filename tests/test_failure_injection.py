"""Failure injection: malformed inputs must fail loudly, not silently.

The pipeline is meant to consume logs a third party generated; every
container therefore validates on ingest, and these tests feed each one
corrupted data.  The policy-matrix classes exercise the
:mod:`repro.runtime` degraded-operation paths: ``skip`` /
``quarantine`` policies, error budgets, truncated files, and the
checkpointed crash-then-resume loop.
"""

import io

import pytest

from repro.cdn.logs import BeaconHit, RequestRecord, read_jsonl
from repro.core.classifier import SubnetClassifier
from repro.core.ratios import RatioTable
from repro.datasets.beacon_dataset import BeaconDataset, SubnetBeaconCounts
from repro.datasets.demand_dataset import DemandDataset
from repro.net.prefix import Prefix
from repro.runtime.policies import (
    ErrorBudgetExceeded,
    IngestFault,
    IngestPolicy,
)
from repro.runtime.quarantine import QuarantineSink, read_quarantine


def p(text):
    return Prefix.parse(text)


def beacon_jsonl(subnets=1000, corrupt_every=None):
    """A BEACON dump with ``subnets`` record lines, some corrupted.

    ``corrupt_every=k`` replaces every k-th record line (1-based within
    the records) with garbage; returns (text, corrupted_line_numbers)
    where line numbers are absolute (header is line 1).
    """
    lines = ['{"month":"2016-12","browsers":{}}']
    corrupted = []
    for index in range(1, subnets + 1):
        line_no = index + 1  # account for the header line
        if corrupt_every and index % corrupt_every == 0:
            lines.append(f'{{"subnet":"corrupt-{index}"')
            corrupted.append(line_no)
        else:
            octet_hi, octet_lo = divmod(index, 250)
            lines.append(
                f'{{"subnet":"10.{octet_hi}.{octet_lo}.0/24","asn":1,'
                f'"country":"US","hits":9,"api":4,"cell":2}}'
            )
    return "\n".join(lines) + "\n", corrupted


class TestCorruptedBeaconData:
    def test_inconsistent_counts_rejected_on_load(self):
        # cellular > api is impossible; the loader must refuse it.
        stream = io.StringIO(
            '{"month":"2016-12","browsers":{}}\n'
            '{"subnet":"10.0.0.0/24","asn":1,"country":"US",'
            '"hits":5,"api":2,"cell":4}\n'
        )
        with pytest.raises(ValueError):
            BeaconDataset.load(stream)

    def test_api_exceeding_hits_rejected(self):
        with pytest.raises(ValueError):
            SubnetBeaconCounts(p("10.0.0.0/24"), 1, "US", 5, 9, 1)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            SubnetBeaconCounts(p("10.0.0.0/24"), 1, "US", 5, 2, -1)

    def test_merge_cannot_break_invariants(self):
        dataset = BeaconDataset("2016-12")
        dataset.add_counts(SubnetBeaconCounts(p("10.0.0.0/24"), 1, "US", 5, 2, 1))
        counts = SubnetBeaconCounts(p("10.0.0.0/24"), 1, "US", 5, 2, 1)
        counts.cellular_hits = 3  # corrupt after construction
        with pytest.raises(ValueError):
            dataset.add_counts(counts)

    def test_malformed_json_line(self):
        stream = io.StringIO(
            '{"month":"2016-12","browsers":{}}\n'
            "this is not json\n"
        )
        with pytest.raises(ValueError):
            BeaconDataset.load(stream)


class TestCorruptedDemandData:
    def test_negative_du_rejected_on_load(self):
        stream = io.StringIO(
            '{"window_days":7}\n'
            '{"subnet":"10.0.0.0/24","asn":1,"country":"US","du":-5.0}\n'
        )
        with pytest.raises(ValueError):
            DemandDataset.load(stream)

    def test_duplicate_subnet_rejected_on_load(self):
        stream = io.StringIO(
            '{"window_days":7}\n'
            '{"subnet":"10.0.0.0/24","asn":1,"country":"US","du":1.0}\n'
            '{"subnet":"10.0.0.0/24","asn":1,"country":"US","du":2.0}\n'
        )
        with pytest.raises(ValueError):
            DemandDataset.load(stream)

    def test_missing_header(self):
        with pytest.raises(ValueError):
            DemandDataset.load(io.StringIO(""))


class TestCorruptedLogRecords:
    def test_beacon_hit_bad_prefix(self):
        with pytest.raises(Exception):
            BeaconHit.from_json(
                '{"month":"2016-12","ip":"10.0.0.1","subnet":"not-a-prefix",'
                '"asn":1,"country":"US","browser":"Chrome Mobile",'
                '"conn":"cellular"}'
            )

    def test_beacon_hit_unknown_browser(self):
        with pytest.raises(ValueError):
            BeaconHit.from_json(
                '{"month":"2016-12","ip":"10.0.0.1","subnet":"10.0.0.0/24",'
                '"asn":1,"country":"US","browser":"Netscape 4",'
                '"conn":"cellular"}'
            )

    def test_request_record_negative_count(self):
        with pytest.raises(ValueError):
            RequestRecord.from_json(
                '{"day":0,"subnet":"10.0.0.0/24","asn":1,"country":"US",'
                '"requests":-3}'
            )

    def test_read_jsonl_propagates_parse_errors(self):
        stream = io.StringIO('{"day":0,"broken\n')
        with pytest.raises(Exception):
            list(read_jsonl(stream, RequestRecord))


class TestPolicyMatrix:
    """skip vs quarantine vs strict vs budget on the same dirty file."""

    CORRUPT_EVERY = 100  # 1% corrupt-line rate over 1000 records

    def _dirty(self):
        return beacon_jsonl(subnets=1000, corrupt_every=self.CORRUPT_EVERY)

    def test_strict_aborts_with_line_context(self):
        text, corrupted = self._dirty()
        with pytest.raises(IngestFault) as excinfo:
            BeaconDataset.load(io.StringIO(text))
        assert excinfo.value.error.line_no == corrupted[0]
        assert excinfo.value.error.record_type == "SubnetBeaconCounts"
        assert f"line {corrupted[0]}" in str(excinfo.value)

    def test_skip_loads_the_clean_lines(self):
        text, corrupted = self._dirty()
        policy = IngestPolicy.skip()
        dataset = BeaconDataset.load(io.StringIO(text), policy=policy)
        assert len(dataset) == 1000 - len(corrupted)
        assert policy.stats.rejected_lines == len(corrupted)
        assert policy.stats.ok_lines == 1000 - len(corrupted)
        assert [e.line_no for e in policy.stats.errors] == corrupted

    def test_quarantine_sidecar_contains_exactly_the_rejects(self):
        text, corrupted = self._dirty()
        sidecar = io.StringIO()
        policy = IngestPolicy.quarantine(QuarantineSink(sidecar))
        dataset = BeaconDataset.load(io.StringIO(text), policy=policy)
        assert len(dataset) == 1000 - len(corrupted)
        sidecar.seek(0)
        records = list(read_quarantine(sidecar))
        assert [r.error.line_no for r in records] == corrupted
        original_lines = text.splitlines()
        for record in records:
            assert record.raw == original_lines[record.error.line_no - 1]
            assert record.error.reason  # every reject carries a reason

    def test_budget_exceeded_aborts(self):
        # 1% corruption must trip a 0.5% budget.
        text, _ = self._dirty()
        policy = IngestPolicy.skip(error_budget=0.005)
        with pytest.raises(ErrorBudgetExceeded):
            BeaconDataset.load(io.StringIO(text), policy=policy)

    def test_generous_budget_tolerates_the_same_file(self):
        text, corrupted = self._dirty()
        policy = IngestPolicy.skip(error_budget=0.05)
        dataset = BeaconDataset.load(io.StringIO(text), policy=policy)
        assert len(dataset) == 1000 - len(corrupted)

    def test_one_early_error_does_not_trip_percentage_budget(self):
        # First record corrupt, rest clean: 0.1% < 1% budget, and the
        # grace window stops 1/1=100% from tripping mid-stream.
        text, corrupted = beacon_jsonl(subnets=1000, corrupt_every=1000000)
        lines = text.splitlines()
        lines[1] = "garbage"
        policy = IngestPolicy.skip(error_budget=0.01)
        dataset = BeaconDataset.load(
            io.StringIO("\n".join(lines) + "\n"), policy=policy
        )
        assert len(dataset) == 999
        assert policy.stats.rejected_lines == 1

    def test_demand_skip_policy(self):
        stream = io.StringIO(
            '{"window_days":7}\n'
            '{"subnet":"10.0.0.0/24","asn":1,"country":"US","du":1.0}\n'
            "garbage\n"
            '{"subnet":"10.0.1.0/24","asn":1,"country":"US","du":2.0}\n'
        )
        policy = IngestPolicy.skip()
        dataset = DemandDataset.load(stream, policy=policy)
        assert len(dataset) == 2
        assert policy.stats.rejected_lines == 1
        assert policy.stats.errors[0].line_no == 3

    def test_read_jsonl_skip_policy_and_line_numbers(self):
        stream = io.StringIO(
            '{"day":0,"subnet":"10.0.0.0/24","asn":1,"country":"US",'
            '"requests":3}\n'
            '{"day":0,"broken\n'
            '{"day":1,"subnet":"10.0.1.0/24","asn":1,"country":"US",'
            '"requests":5}\n'
        )
        policy = IngestPolicy.skip()
        records = list(read_jsonl(stream, RequestRecord, policy=policy))
        assert [r.requests for r in records] == [3, 5]
        assert policy.stats.errors[0].line_no == 2
        assert policy.stats.errors[0].record_type == "RequestRecord"

    def test_read_jsonl_strict_names_missing_field(self):
        stream = io.StringIO(
            '{"day":0,"subnet":"10.0.0.0/24","asn":1,"country":"US"}\n'
        )
        with pytest.raises(IngestFault) as excinfo:
            list(read_jsonl(stream, RequestRecord))
        assert excinfo.value.error.field == "requests"
        assert excinfo.value.error.line_no == 1


class TestTruncatedFiles:
    """A killed writer leaves a mid-line truncation; loaders must cope."""

    def _truncated_text(self):
        text, _ = beacon_jsonl(subnets=50)
        return text[: len(text) - 25]  # chop inside the final record

    def test_truncated_beacon_strict_aborts_at_last_line(self):
        text = self._truncated_text()
        with pytest.raises(IngestFault) as excinfo:
            BeaconDataset.load(io.StringIO(text))
        assert excinfo.value.error.line_no == 51

    def test_truncated_beacon_skip_recovers_the_prefix(self):
        policy = IngestPolicy.skip()
        dataset = BeaconDataset.load(
            io.StringIO(self._truncated_text()), policy=policy
        )
        assert len(dataset) == 49
        assert policy.stats.rejected_lines == 1

    def test_atomic_writer_never_leaves_partial_files(self, tmp_path):
        from repro.runtime.checkpoint import atomic_writer

        target = tmp_path / "beacon.jsonl"
        target.write_text("intact previous content\n")
        with pytest.raises(RuntimeError):
            with atomic_writer(target) as stream:
                stream.write("half a li")
                raise RuntimeError("killed mid-write")
        # Old content survives and no temp litter remains.
        assert target.read_text() == "intact previous content\n"
        assert list(tmp_path.iterdir()) == [target]


class TestCrashThenResume:
    """``cellspot all --checkpoint`` round-trip with a forced failure."""

    ARGS = ["--scale", "0.001", "--seed", "7"]

    def test_checkpoint_resume_round_trip(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.experiments.base import INJECT_FAIL_ENV
        from repro.runtime.checkpoint import CheckpointStore

        ckpt = tmp_path / "ckpt"
        # Crash run: fig1 is forced to raise inside the guard.
        monkeypatch.setenv(INJECT_FAIL_ENV, "fig1")
        code = main(["all", "--checkpoint", str(ckpt)] + self.ARGS)
        out = capsys.readouterr().out
        assert code == 1  # the injected failure is reported
        assert "injected failure" in out
        assert "table8" in out  # later experiments still ran
        store = CheckpointStore(ckpt)
        assert "fig1" not in store.completed()
        assert "table8" in store.completed()
        manifest = store.load_manifest()
        assert manifest is not None
        assert manifest.dataset_digests.keys() == {"beacon", "demand"}
        assert any(k.startswith("pipeline.") for k in manifest.stage_timings)

        # Resume: the failure is gone; only fig1 runs, the rest skip.
        monkeypatch.delenv(INJECT_FAIL_ENV)
        code = main(["all", "--checkpoint", str(ckpt)] + self.ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "24 skipped via checkpoint" in out
        assert CheckpointStore(ckpt).is_done("fig1")

    def test_checkpoint_refuses_a_different_run(self, tmp_path, capsys):
        from repro.cli import main

        ckpt = tmp_path / "ckpt"
        assert main(["all", "--checkpoint", str(ckpt)] + self.ARGS) in (0, 1)
        capsys.readouterr()
        code = main(
            ["all", "--checkpoint", str(ckpt), "--scale", "0.001",
             "--seed", "8"]
        )
        assert code == 2
        assert "different run" in capsys.readouterr().err


class TestPipelineEdgeCases:
    def test_classifier_on_empty_table_is_empty(self):
        result = SubnetClassifier().classify(RatioTable([]))
        assert len(result) == 0
        assert result.cellular_subnets() == []
        assert result.asns_with_cellular() == {}

    def test_identify_on_empty_classification(self):
        from repro.core.asn_classifier import identify_cellular_ases

        classification = SubnetClassifier().classify(RatioTable([]))
        demand = DemandDataset.from_request_totals(
            [(p("10.0.0.0/24"), 1, "US", 1)]
        )
        beacons = BeaconDataset("2016-12")
        result = identify_cellular_ases(classification, demand, beacons)
        assert result.candidate_count == 0
        assert result.accepted_count == 0
        assert all(filtered == 0 for _, filtered, _ in result.filter_summary())
