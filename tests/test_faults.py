"""The fault-injection plane: plans, firing, determinism, overhead."""

from __future__ import annotations

import json

import pytest

from repro.runtime.faults import (
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedFault,
    KNOWN_SITES,
    _claim_fire,
    _prf,
    active_plan,
    chaos,
    default_fault_plan,
    fault_point,
    injected_counts,
    load_fault_plan,
    maybe_chaotic,
)


class TestFaultSpec:
    def test_valid_spec_roundtrip(self):
        spec = FaultSpec.from_dict(
            {"name": "x", "site": "executor.shard", "kind": "stall",
             "at": 3, "times": 2, "delay_s": 0.1, "probability": 0.5}
        )
        assert spec.at == 3 and spec.times == 2

    @pytest.mark.parametrize(
        "raw,fragment",
        [
            ({"site": "s", "kind": "stall"}, "missing 'name'"),
            ({"name": "x", "kind": "stall"}, "missing 'site'"),
            ({"name": "x", "site": "s"}, "missing 'kind'"),
            ({"name": "x", "site": "s", "kind": "nope"}, "unknown kind"),
            ({"name": "x", "site": "s", "kind": "stall", "typo": 1},
             "unknown keys"),
            ({"name": "x", "site": "s", "kind": "stall", "times": 0},
             "times must be"),
            ({"name": "x", "site": "s", "kind": "stall",
              "probability": 1.5}, "probability"),
        ],
    )
    def test_bad_specs_rejected(self, raw, fragment):
        with pytest.raises(FaultPlanError, match=fragment):
            FaultSpec.from_dict(raw)

    def test_default_plan_sites_are_known(self):
        plan = default_fault_plan()
        assert plan.faults
        for spec in plan.faults:
            assert spec.site in KNOWN_SITES
        names = [spec.name for spec in plan.faults]
        assert len(names) == len(set(names))


class TestPlanLoading:
    def test_json_plan(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "plan": {"name": "p", "seed": 3},
            "faults": [
                {"name": "a", "site": "executor.shard", "kind": "stall"},
            ],
        }))
        plan = load_fault_plan(path)
        assert plan.name == "p" and plan.seed == 3
        assert plan.faults[0].name == "a"

    def test_toml_plan(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "plan.toml"
        path.write_text(
            '[plan]\nname = "t"\nseed = 9\n\n'
            '[[faults]]\nname = "a"\nsite = "serve.request"\n'
            'kind = "error"\ntimes = 2\n'
        )
        plan = load_fault_plan(path)
        assert plan.name == "t" and plan.seed == 9
        assert plan.faults[0].times == 2

    @pytest.mark.parametrize(
        "payload,fragment",
        [
            ("{not json", "bad JSON"),
            ("[]", "'faults' array"),
            ('{"faults": []}', "empty"),
            ('{"faults": [{"name": "a", "site": "s", "kind": "stall"},'
             '{"name": "a", "site": "s", "kind": "stall"}]}',
             "duplicate"),
        ],
    )
    def test_bad_plan_files(self, tmp_path, payload, fragment):
        path = tmp_path / "plan.json"
        path.write_text(payload)
        with pytest.raises(FaultPlanError, match=fragment):
            load_fault_plan(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FaultPlanError, match="cannot read"):
            load_fault_plan(tmp_path / "nope.json")

    def test_for_sites_filters(self):
        plan = default_fault_plan()
        sub = plan.for_sites("executor.")
        assert sub.faults and all(
            spec.site.startswith("executor.") for spec in sub.faults
        )
        assert sub.seed == plan.seed


class TestFiring:
    def test_inactive_fault_point_is_a_noop(self):
        assert active_plan() is None
        fault_point("executor.shard", index=0)  # must not raise

    def test_error_fault_fires_then_exhausts(self):
        plan = FaultPlan(name="t", faults=[
            FaultSpec(name="boom", site="x.y", kind="error", times=2),
        ])
        with chaos(plan):
            with pytest.raises(InjectedFault):
                fault_point("x.y")
            with pytest.raises(InjectedFault):
                fault_point("x.y")
            fault_point("x.y")  # budget spent: no longer fires
            assert injected_counts(plan) == {"boom": 2}
        assert active_plan() is None

    def test_at_matches_only_its_index(self):
        plan = FaultPlan(name="t", faults=[
            FaultSpec(name="boom", site="x.y", kind="error", at=2),
        ])
        with chaos(plan):
            fault_point("x.y", index=0)
            fault_point("x.y", index=1)
            with pytest.raises(InjectedFault):
                fault_point("x.y", index=2)

    def test_state_dir_bounds_across_activations(self, tmp_path):
        """Mark files persist: a 'new process' cannot re-fire."""
        plan = FaultPlan(name="t", faults=[
            FaultSpec(name="boom", site="x.y", kind="error", times=1),
        ])
        with chaos(plan, state_dir=tmp_path / "state"):
            with pytest.raises(InjectedFault):
                fault_point("x.y")
        # Same plan re-activated (as a pool worker would): already spent.
        with chaos(plan, state_dir=tmp_path / "state"):
            fault_point("x.y")
            assert injected_counts(plan) == {"boom": 1}

    def test_worker_crash_downgrades_in_parent(self):
        """A crash fault outside a pool worker must not SIGKILL us."""
        plan = FaultPlan(name="t", faults=[
            FaultSpec(name="die", site="x.y", kind="worker_crash"),
        ])
        with chaos(plan):
            with pytest.raises(InjectedFault, match="in-process"):
                fault_point("x.y")

    def test_torn_write_truncates_file(self, tmp_path):
        victim = tmp_path / "data.json"
        victim.write_bytes(b"A" * 100)
        plan = FaultPlan(name="t", faults=[
            FaultSpec(name="tear", site="x.y", kind="torn_write"),
        ])
        with chaos(plan):
            fault_point("x.y", path=victim)
        assert victim.read_bytes() == b"A" * 50

    def test_prf_is_deterministic(self):
        a = _prf(7, "fault", 3)
        assert a == _prf(7, "fault", 3)
        assert 0.0 <= a < 1.0
        assert a != _prf(8, "fault", 3)

    def test_probability_zero_never_fires(self):
        plan = FaultPlan(name="t", seed=1, faults=[
            FaultSpec(name="never", site="x.y", kind="error",
                      probability=0.0, times=None),
        ])
        with chaos(plan):
            for index in range(50):
                fault_point("x.y", index=index)

    def test_claim_fire_unbounded(self):
        plan = FaultPlan(name="t")
        spec = FaultSpec(name="n", site="s", kind="stall", times=None)
        assert _claim_fire(plan, spec) and _claim_fire(plan, spec)


class TestStreamWrapper:
    def test_maybe_chaotic_returns_original_when_inactive(self):
        events = [1, 2, 3]
        assert maybe_chaotic(events) is events

    def test_maybe_chaotic_returns_original_without_source_faults(self):
        events = [1, 2, 3]
        plan = FaultPlan(name="t", faults=[
            FaultSpec(name="a", site="executor.shard", kind="stall"),
        ])
        with chaos(plan):
            assert maybe_chaotic(events) is events

    def test_chaotic_wrapper_preserves_events(self):
        events = list(range(10))
        plan = FaultPlan(name="t", faults=[
            FaultSpec(name="boom", site="stream.source", kind="error",
                      at=5, times=1),
        ])
        with chaos(plan):
            wrapped = maybe_chaotic(iter(events))
            assert wrapped is not events
            seen = []
            with pytest.raises(InjectedFault):
                for event in wrapped:
                    seen.append(event)
            assert seen == [0, 1, 2, 3, 4]
