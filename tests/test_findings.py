"""Tests for the key-findings scorecard (sections 6.4 / 7.3)."""

import pytest

from repro.analysis.findings import Finding, evaluate_key_findings


class TestFindings:
    @pytest.fixture(scope="class")
    def findings(self, lab):
        return evaluate_key_findings(lab)

    def test_all_nine_evaluated(self, findings):
        assert len(findings) == 9
        sections = {finding.section for finding in findings}
        assert any(section.startswith("6.4") for section in sections)
        assert any(section.startswith("7.3") for section in sections)

    def test_every_finding_holds(self, findings):
        failing = [f for f in findings if not f.holds]
        assert not failing, [(f.section, f.claim, f.measured) for f in failing]

    def test_measured_strings_populated(self, findings):
        for finding in findings:
            assert finding.measured.strip()
            assert finding.claim.strip()

    def test_finding_is_frozen(self):
        finding = Finding("x", "claim", "measured", True)
        with pytest.raises(Exception):
            finding.holds = False
