"""Unit tests for geography: country table, distances, queries."""

import pytest

from repro.world.geo import (
    CONTINENT_NAMES,
    Continent,
    Country,
    Geography,
    default_geography,
    haversine_km,
)


class TestCountry:
    def test_validation(self):
        with pytest.raises(ValueError):
            Country("usa", "x", Continent.NORTH_AMERICA, 1, 0, 0)
        with pytest.raises(ValueError):
            Country("US", "x", Continent.NORTH_AMERICA, -1, 0, 0)
        with pytest.raises(ValueError):
            Country("US", "x", Continent.NORTH_AMERICA, 1, 91, 0)
        with pytest.raises(ValueError):
            Country("US", "x", Continent.NORTH_AMERICA, 1, 0, 181)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(10, 20, 10, 20) == 0.0

    def test_known_distance_london_paris(self):
        distance = haversine_km(51.5, -0.12, 48.85, 2.35)
        assert 330 < distance < 360

    def test_antipodal_half_circumference(self):
        distance = haversine_km(0, 0, 0, 180)
        assert distance == pytest.approx(20015, rel=0.01)

    def test_symmetry(self):
        a = haversine_km(10, 20, -30, 40)
        b = haversine_km(-30, 40, 10, 20)
        assert a == pytest.approx(b)


class TestGeography:
    def test_default_table_integrity(self):
        geo = default_geography()
        assert len(geo) >= 70
        for country in geo:
            assert country.continent in Continent
        # Every continent is populated.
        for continent in Continent:
            assert geo.by_continent(continent)

    def test_anchor_countries_present(self):
        geo = default_geography()
        for iso2 in ("US", "GH", "LA", "ID", "FR", "BR", "CN", "DZ"):
            assert iso2 in geo

    def test_get_find(self):
        geo = default_geography()
        assert geo.get("US").name == "United States"
        assert geo.find("ZZ") is None
        with pytest.raises(KeyError):
            geo.get("ZZ")

    def test_continent_of(self):
        geo = default_geography()
        assert geo.continent_of("GH") is Continent.AFRICA
        assert geo.continent_of("JP") is Continent.ASIA

    def test_subscribers_by_continent(self):
        geo = default_geography()
        totals = geo.subscribers_by_continent()
        assert totals[Continent.ASIA] > totals[Continent.OCEANIA]
        assert all(total >= 0 for total in totals.values())

    def test_distance_km_brazil_case(self):
        # The section 6.3 case: Fortaleza-Sao Paulo is ~2,365 km; our
        # country-level representative points support distances at
        # that magnitude inside Brazil-sized countries.
        geo = default_geography()
        assert geo.distance_km("BR", "AR") > 900

    def test_duplicate_rejected(self):
        country = Country("US", "x", Continent.NORTH_AMERICA, 1, 0, 0)
        with pytest.raises(ValueError):
            Geography([country, country])

    def test_continent_names_complete(self):
        assert set(CONTINENT_NAMES) == set(Continent)
