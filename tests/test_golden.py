"""Golden-output regression suite.

Every experiment's full output (headers, rows, comparisons, notes) on
a small fixed world is snapshotted as JSON under ``tests/golden/``.
Any change to pipeline numerics -- intended or not -- shows up as a
unified diff against the snapshot, so refactors (like the parallel
layer) can prove they changed *nothing* and deliberate changes leave
a reviewable artifact in the PR.

Refresh snapshots with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden
"""

from __future__ import annotations

import difflib
import json
from pathlib import Path

import pytest

from repro.experiments.base import load_all, run_all

GOLDEN_DIR = Path(__file__).parent / "golden"
EXPERIMENT_IDS = sorted(load_all())


def _sanitize(cell):
    """JSON-safe cell: numbers/strings/bools pass through, the rest
    (Prefix, enums...) snapshot as their stable ``str`` form."""
    if isinstance(cell, bool) or cell is None or isinstance(cell, (int, str)):
        return cell
    if isinstance(cell, float):
        # repr round-trips exactly; snapshot as text so a JSON reader
        # can never re-quantize the value behind our back.
        return f"float:{cell!r}"
    return str(cell)


def snapshot_payload(result) -> str:
    """Canonical JSON snapshot text for one ExperimentResult."""
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": [str(h) for h in result.headers],
        "rows": [[_sanitize(cell) for cell in row] for row in result.rows],
        "comparisons": [
            {
                "metric": c.metric,
                "paper": _sanitize(c.paper),
                "measured": _sanitize(c.measured),
                "rel_tol": _sanitize(c.rel_tol),
                "ok": c.ok,
            }
            for c in result.comparisons
        ],
        "notes": [str(note) for note in result.notes],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


@pytest.fixture(scope="session")
def golden_results(golden_lab):
    """All experiment outputs on the golden world (computed once)."""
    return run_all(golden_lab)


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_golden(experiment_id, golden_results, update_golden):
    current = snapshot_payload(golden_results[experiment_id])
    path = GOLDEN_DIR / f"{experiment_id}.json"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(current)
        return
    if not path.exists():
        pytest.fail(
            f"no golden snapshot for {experiment_id!r} at {path}; "
            "run pytest tests/test_golden.py --update-golden to create it"
        )
    stored = path.read_text()
    if stored != current:
        diff = "\n".join(
            difflib.unified_diff(
                stored.splitlines(),
                current.splitlines(),
                fromfile=f"golden/{experiment_id}.json (stored)",
                tofile=f"golden/{experiment_id}.json (current)",
                lineterm="",
            )
        )
        pytest.fail(
            f"golden mismatch for {experiment_id!r} "
            "(intended? re-run with --update-golden):\n" + diff
        )


def test_no_stray_golden_files():
    """Every snapshot corresponds to a registered experiment."""
    stored = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert stored == set(EXPERIMENT_IDS), (
        f"stray: {sorted(stored - set(EXPERIMENT_IDS))}, "
        f"missing: {sorted(set(EXPERIMENT_IDS) - stored)}"
    )


def test_snapshots_round_trip():
    """Stored snapshots are valid canonical JSON (sorted, indented)."""
    for path in sorted(GOLDEN_DIR.glob("*.json")):
        text = path.read_text()
        payload = json.loads(text)
        assert (
            json.dumps(payload, indent=2, sort_keys=True) + "\n" == text
        ), f"{path.name} is not in canonical form"
