"""Integration: hit-level JSONL ingestion feeds the pipeline.

A real deployment streams raw beacon hits; this test writes hit-level
JSONL, streams it back, folds it into a BEACON dataset, and checks the
result matches direct aggregation.
"""

import io

import pytest

from repro.cdn.beacon import BeaconConfig, BeaconGenerator
from repro.cdn.logs import BeaconHit, read_jsonl, write_jsonl
from repro.datasets.beacon_dataset import BeaconDataset
from repro.world.build import WorldParams, build_world


@pytest.fixture(scope="module")
def generator():
    world = build_world(WorldParams(seed=17, scale=0.0015,
                                    background_as_count=100))
    return BeaconGenerator(world, BeaconConfig(demand_hits=40_000, base_hits=6))


class TestHitIngestion:
    def test_jsonl_stream_matches_direct_aggregation(self, generator):
        buffer = io.StringIO()
        count = write_jsonl(generator.iter_hits(), buffer)
        assert count > 1_000

        buffer.seek(0)
        streamed = BeaconDataset.from_hits(
            "2016-12", read_jsonl(buffer, BeaconHit)
        )
        direct = generator.dataset_from_hits()
        assert streamed.total_hits == direct.total_hits
        assert streamed.total_api_hits == direct.total_api_hits
        assert len(streamed) == len(direct)
        for counts in direct:
            other = streamed.get(counts.subnet)
            assert other is not None
            assert other.cellular_hits == counts.cellular_hits

    def test_wrong_month_rejected(self, generator):
        hits = list(generator.iter_hits())
        with pytest.raises(ValueError):
            BeaconDataset.from_hits("2015-01", hits[:10])

    def test_streamed_dataset_classifies(self, generator):
        from repro.core.classifier import SubnetClassifier
        from repro.core.ratios import RatioTable

        dataset = generator.dataset_from_hits()
        table = RatioTable.from_beacons(dataset)
        result = SubnetClassifier().classify(table)
        assert result.cellular_count(4) > 0
