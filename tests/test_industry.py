"""Tests for the request-vs-byte accounting analysis (section 7.1)."""

import pytest

from repro.analysis.industry import byte_share_report
from repro.core.classifier import SubnetClassifier
from repro.core.ratios import RatioRecord, RatioTable
from repro.datasets.demand_dataset import DemandDataset
from repro.net.prefix import Prefix


def p(text):
    return Prefix.parse(text)


@pytest.fixture()
def setup():
    table = RatioTable(
        [
            RatioRecord(p("10.0.0.0/24"), 1, "US", 10, 10, 10),  # cellular
            RatioRecord(p("10.0.1.0/24"), 1, "US", 10, 0, 10),   # fixed
        ]
    )
    classification = SubnetClassifier(0.5).classify(table)
    demand = DemandDataset.from_request_totals(
        [
            (p("10.0.0.0/24"), 1, "US", 200),
            (p("10.0.1.0/24"), 1, "US", 800),
        ]
    )
    return classification, demand


class TestByteShare:
    def test_request_fraction(self, setup):
        classification, demand = setup
        report = byte_share_report(classification, demand)
        assert report.request_fraction == pytest.approx(0.2)

    def test_byte_fraction_shrinks(self, setup):
        classification, demand = setup
        report = byte_share_report(
            classification, demand, cellular_bytes_per_request=0.5
        )
        # 0.2 requests * 0.5 bytes -> 0.1 / (0.1 + 0.8) = 1/9.
        assert report.byte_fraction == pytest.approx(1 / 9)
        assert report.metric_gap == pytest.approx(0.2 / (1 / 9))

    def test_ratio_one_is_identity(self, setup):
        classification, demand = setup
        report = byte_share_report(
            classification, demand, cellular_bytes_per_request=1.0
        )
        assert report.byte_fraction == pytest.approx(report.request_fraction)

    def test_restriction(self, setup):
        classification, demand = setup
        report = byte_share_report(
            classification, demand, restrict_to_asns={999}
        )
        assert report.request_fraction == 0.0

    def test_validation(self, setup):
        classification, demand = setup
        with pytest.raises(ValueError):
            byte_share_report(
                classification, demand, cellular_bytes_per_request=0
            )

    def test_paper_scale_gap(self, setup):
        # The paper's reconciliation: 16.2% requests, 0.45 ratio ->
        # byte share lands near industry's ~8%.
        classification, demand = setup
        cellular, total = 0.162, 1.0
        bytes_cell = cellular * 0.45
        expected = bytes_cell / (bytes_cell + (total - cellular))
        assert 0.07 < expected < 0.09
