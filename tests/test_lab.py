"""Unit tests for the Lab harness."""

import pytest

from repro.cdn.beacon import BeaconConfig
from repro.core.pipeline import CellSpotter
from repro.lab import (
    PAPER_BEACON_HITS,
    PAPER_MIN_BEACON_HITS,
    Lab,
    scaled_filter_config,
)


class TestScaledFilterConfig:
    def test_full_volume_gives_paper_threshold(self):
        config = scaled_filter_config(
            BeaconConfig(demand_hits=int(PAPER_BEACON_HITS), base_hits=40)
        )
        assert config.min_beacon_hits == PAPER_MIN_BEACON_HITS

    def test_small_volume_floors_at_base_hits(self):
        config = scaled_filter_config(BeaconConfig(demand_hits=1_000, base_hits=40))
        assert config.min_beacon_hits == 30  # 0.75 * base_hits

    def test_du_threshold_untouched(self):
        config = scaled_filter_config(BeaconConfig(demand_hits=1_000))
        assert config.min_cellular_du == 0.1  # scale-free


class TestLab:
    def test_caching(self, lab):
        assert lab.beacons is lab.beacons
        assert lab.demand is lab.demand
        assert lab.result is lab.result
        assert lab.as_classes is lab.as_classes
        assert lab.affinity is lab.affinity
        assert lab.carriers is lab.carriers

    def test_rerun_does_not_clobber_cache(self, lab):
        cached = lab.result
        other = lab.rerun(CellSpotter(threshold=0.2))
        assert lab.result is cached
        assert other is not cached

    def test_create_wires_scaled_filter(self):
        lab = Lab.create(scale=0.002, seed=99)
        assert lab.spotter.as_filter.min_beacon_hits == 30

    def test_custom_spotter_respected(self):
        spotter = CellSpotter(threshold=0.7)
        lab = Lab.create(scale=0.002, seed=99, spotter=spotter)
        assert lab.spotter is spotter
