"""Unit tests for log record types and JSONL round-trips."""

import io

import pytest

from repro.cdn.logs import BeaconHit, RequestRecord, read_jsonl, write_jsonl
from repro.cdn.netinfo import ConnectionType
from repro.net.prefix import Prefix
from repro.world.population import Browser


def make_hit(api_enabled=True, conn=ConnectionType.CELLULAR):
    return BeaconHit(
        month="2016-12",
        family=4,
        address=Prefix.parse("10.1.2.0/24").nth_address(7),
        subnet=Prefix.parse("10.1.2.0/24"),
        asn=100,
        country="US",
        browser=Browser.CHROME_MOBILE,
        api_enabled=api_enabled,
        connection_type=conn if api_enabled else None,
    )


class TestBeaconHit:
    def test_valid_enabled(self):
        hit = make_hit()
        assert hit.is_cellular_labeled

    def test_valid_disabled(self):
        hit = make_hit(api_enabled=False)
        assert not hit.is_cellular_labeled

    def test_enabled_requires_connection(self):
        with pytest.raises(ValueError):
            BeaconHit("2016-12", 4, 0, Prefix.parse("10.0.0.0/24"), 1, "US",
                      Browser.CHROME_MOBILE, True, None)

    def test_disabled_forbids_connection(self):
        with pytest.raises(ValueError):
            BeaconHit("2016-12", 4, 0, Prefix.parse("10.0.0.0/24"), 1, "US",
                      Browser.CHROME_MOBILE, False, ConnectionType.WIFI)

    def test_json_round_trip(self):
        for hit in (make_hit(), make_hit(api_enabled=False),
                    make_hit(conn=ConnectionType.WIFI)):
            assert BeaconHit.from_json(hit.to_json()) == hit

    def test_ipv6_round_trip(self):
        subnet = Prefix.parse("2001:db8::/48")
        hit = BeaconHit("2016-12", 6, subnet.nth_address(99), subnet, 7, "JP",
                        Browser.ANDROID_WEBKIT, True, ConnectionType.CELLULAR)
        assert BeaconHit.from_json(hit.to_json()) == hit


class TestRequestRecord:
    def test_valid(self):
        record = RequestRecord(0, Prefix.parse("10.0.0.0/24"), 1, "US", 100)
        assert record.requests == 100

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            RequestRecord(0, Prefix.parse("10.0.0.0/24"), 1, "US", -1)

    def test_json_round_trip(self):
        record = RequestRecord(3, Prefix.parse("2001:db8::/48"), 9, "DE", 42)
        assert RequestRecord.from_json(record.to_json()) == record


class TestStreams:
    def test_write_read_round_trip(self):
        records = [
            RequestRecord(d, Prefix.parse(f"10.0.{d}.0/24"), 1, "US", d + 1)
            for d in range(5)
        ]
        buffer = io.StringIO()
        assert write_jsonl(records, buffer) == 5
        buffer.seek(0)
        assert list(read_jsonl(buffer, RequestRecord)) == records

    def test_read_skips_blank_lines(self):
        buffer = io.StringIO("\n\n")
        assert list(read_jsonl(buffer, RequestRecord)) == []
