"""Property tests for the shard/merge algebra.

The parallel layer is only correct if its reducers form a commutative
monoid over shard partials: any grouping, any ordering of the same
shards must reduce to the identical aggregate.  These tests generate
randomized inputs from seeded hand-rolled generators (no external
property-testing dependency) and check:

* ``RatioTable.merge`` is commutative and associative, and agrees
  with single-pass accumulation over the unsharded data,
* ``BeaconDataset.merge`` / ``DemandDataset.merge`` rebuild the
  canonical dataset from any prefix-hash partition, grouping-
  independently (pinned via ``dataset_digest``, which covers order),
* conflicting inputs are rejected rather than silently merged.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest

from repro.core.ratios import RatioRecord, RatioTable
from repro.datasets.beacon_dataset import BeaconDataset, SubnetBeaconCounts
from repro.datasets.demand_dataset import DemandDataset, SubnetDemand
from repro.net.prefix import Prefix
from repro.parallel.sharding import partition_beacons, partition_demand
from repro.runtime.manifest import dataset_digest
from repro.world.population import Browser

SEEDS = [11, 29, 47, 101, 733]


# ---- seeded generators ------------------------------------------------------


def _random_prefix(rng: random.Random) -> Prefix:
    if rng.random() < 0.7:
        return Prefix(4, rng.randrange(1 << 24) << 8, 24)
    return Prefix(6, rng.randrange(1 << 48) << 80, 48)


def _subnet_universe(
    rng: random.Random, count: int
) -> Dict[Prefix, Tuple[int, str]]:
    """Distinct subnets with fixed per-subnet metadata (asn, country)."""
    universe: Dict[Prefix, Tuple[int, str]] = {}
    while len(universe) < count:
        universe[_random_prefix(rng)] = (
            rng.randrange(1, 70_000),
            rng.choice(["US", "DE", "BR", "JP", "KE"]),
        )
    return universe


def _random_counts(rng: random.Random, min_api: int = 0) -> Tuple[int, int, int]:
    """A valid (hits, api, cell) triple with ``api >= min_api``."""
    api = rng.randrange(min_api, 50)
    cell = rng.randrange(0, api + 1)
    hits = api + rng.randrange(0, 100)
    return hits, api, cell


def _random_tables(
    rng: random.Random, tables: int, subnets: int
) -> List[RatioTable]:
    """Ratio tables over a shared universe; each subnet lands in a
    random subset of tables with independent counts."""
    universe = _subnet_universe(rng, subnets)
    records: List[List[RatioRecord]] = [[] for _ in range(tables)]
    for prefix, (asn, country) in universe.items():
        for index in range(tables):
            if rng.random() < 0.6:
                hits, api, cell = _random_counts(rng, min_api=1)
                records[index].append(
                    RatioRecord(prefix, asn, country, api, cell, hits)
                )
    return [RatioTable(recs) for recs in records]


def _random_beacons(rng: random.Random, subnets: int) -> BeaconDataset:
    dataset = BeaconDataset(month="2016-12")
    for prefix, (asn, country) in _subnet_universe(rng, subnets).items():
        hits, api, cell = _random_counts(rng)  # api may be 0
        dataset.add_counts(
            SubnetBeaconCounts(prefix, asn, country, hits, api, cell)
        )
    dataset.observe_browser_batch(Browser.CHROME_MOBILE, 100, 80)
    dataset.observe_browser_batch(Browser.SAFARI_IOS, 50, 0)
    return dataset


def _random_demand(rng: random.Random, subnets: int) -> DemandDataset:
    dataset = DemandDataset(window_days=7)
    for prefix, (asn, country) in _subnet_universe(rng, subnets).items():
        dataset._add(SubnetDemand(prefix, asn, country, rng.random() * 10))
    return dataset


def _beacon_shard_datasets(
    beacons: BeaconDataset, shards: int
) -> List[BeaconDataset]:
    """Materialize one BeaconDataset per prefix-hash partition."""
    parts = partition_beacons(beacons, shards)
    out = []
    for index, part in enumerate(parts):
        shard = BeaconDataset(month=beacons.month)
        if index == 0:  # browser counters are global; park them anywhere
            for browser, (hits, api) in beacons.browser_counts.items():
                shard.observe_browser_batch(browser, hits, api)
        for _idx, family, value, length, asn, country, hits, api, cell in part:
            shard.add_counts(
                SubnetBeaconCounts(
                    Prefix(family, value, length), asn, country, hits, api, cell
                )
            )
        out.append(shard)
    return out


def _demand_shard_datasets(
    demand: DemandDataset, shards: int
) -> List[DemandDataset]:
    parts = partition_demand(demand, shards)
    out = []
    for part in parts:
        shard = DemandDataset(window_days=demand.window_days)
        for _idx, family, value, length, asn, country, du in part:
            shard._add(SubnetDemand(Prefix(family, value, length), asn, country, du))
        out.append(shard)
    return out


# ---- RatioTable.merge -------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_ratio_merge_commutative(seed):
    rng = random.Random(seed)
    a, b = _random_tables(rng, tables=2, subnets=60)
    forward = RatioTable.merge([a, b])
    backward = RatioTable.merge([b, a])
    assert forward == backward
    assert list(forward) == list(backward)  # canonical order, not just set


@pytest.mark.parametrize("seed", SEEDS)
def test_ratio_merge_associative(seed):
    rng = random.Random(seed)
    a, b, c = _random_tables(rng, tables=3, subnets=60)
    left = RatioTable.merge([RatioTable.merge([a, b]), c])
    right = RatioTable.merge([a, RatioTable.merge([b, c])])
    flat = RatioTable.merge([a, b, c])
    assert left == right == flat
    assert list(left) == list(right) == list(flat)


@pytest.mark.parametrize("seed", SEEDS)
def test_ratio_merge_agrees_with_single_pass(seed):
    """Merging per-table partials equals one-pass accumulation."""
    rng = random.Random(seed)
    tables = _random_tables(rng, tables=4, subnets=50)
    merged = RatioTable.merge(tables)
    # Accumulate the same contributions serially into one dataset.
    accumulated = BeaconDataset(month="2016-12")
    for table in tables:
        for record in table:
            accumulated.add_counts(
                SubnetBeaconCounts(
                    record.subnet,
                    record.asn,
                    record.country,
                    record.hits,
                    record.api_hits,
                    record.cellular_hits,
                )
            )
    assert merged == RatioTable.from_beacons(accumulated)


@pytest.mark.parametrize("seed", SEEDS)
def test_ratio_merge_identity_and_counts(seed):
    rng = random.Random(seed)
    (table,) = _random_tables(rng, tables=1, subnets=40)
    merged = RatioTable.merge([table])
    assert merged == table
    # Counts sum per subnet when a table appears twice.
    doubled = RatioTable.merge([table, table])
    for record in table:
        twice = doubled.get(record.subnet)
        assert twice.api_hits == 2 * record.api_hits
        assert twice.cellular_hits == 2 * record.cellular_hits
        assert twice.hits == 2 * record.hits


def test_ratio_merge_rejects_conflicting_metadata():
    prefix = Prefix(4, 0x0A000000, 24)
    a = RatioTable([RatioRecord(prefix, 1, "US", 4, 2, 8)])
    b = RatioTable([RatioRecord(prefix, 2, "US", 4, 2, 8)])
    with pytest.raises(ValueError, match="conflicting metadata"):
        RatioTable.merge([a, b])


def test_ratio_merge_empty_is_empty():
    assert len(RatioTable.merge([])) == 0
    assert len(RatioTable.merge([RatioTable([])])) == 0


# ---- dataset reducers -------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shards", [1, 3, 8])
def test_beacon_merge_rebuilds_partition(seed, shards):
    rng = random.Random(seed)
    beacons = _random_beacons(rng, subnets=80)
    merged = BeaconDataset.merge(_beacon_shard_datasets(beacons, shards))
    canonical = BeaconDataset.merge([beacons])
    assert dataset_digest(merged) == dataset_digest(canonical)
    assert merged.browser_counts == beacons.browser_counts
    assert merged.total_hits == beacons.total_hits
    assert merged.hits_by_asn() == beacons.hits_by_asn()


@pytest.mark.parametrize("seed", SEEDS)
def test_beacon_merge_grouping_invariant(seed):
    rng = random.Random(seed)
    beacons = _random_beacons(rng, subnets=80)
    shards = _beacon_shard_datasets(beacons, 4)
    left = BeaconDataset.merge(
        [BeaconDataset.merge(shards[:2]), BeaconDataset.merge(shards[2:])]
    )
    right = BeaconDataset.merge(list(reversed(shards)))
    assert dataset_digest(left) == dataset_digest(right)


def test_beacon_merge_rejects_mixed_months():
    with pytest.raises(ValueError, match="months"):
        BeaconDataset.merge(
            [BeaconDataset(month="2016-12"), BeaconDataset(month="2017-01")]
        )
    with pytest.raises(ValueError, match="nothing to merge"):
        BeaconDataset.merge([])


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shards", [1, 3, 8])
def test_demand_merge_rebuilds_partition(seed, shards):
    rng = random.Random(seed)
    demand = _random_demand(rng, subnets=80)
    merged = DemandDataset.merge(_demand_shard_datasets(demand, shards))
    canonical = DemandDataset.merge([demand])
    assert dataset_digest(merged) == dataset_digest(canonical)
    assert merged.total_du == pytest.approx(demand.total_du)
    for record in demand:
        assert merged.du_of(record.subnet) == record.du


@pytest.mark.parametrize("seed", SEEDS)
def test_demand_merge_grouping_invariant(seed):
    rng = random.Random(seed)
    demand = _random_demand(rng, subnets=80)
    shards = _demand_shard_datasets(demand, 4)
    left = DemandDataset.merge(
        [DemandDataset.merge(shards[:2]), DemandDataset.merge(shards[2:])]
    )
    right = DemandDataset.merge(list(reversed(shards)))
    assert dataset_digest(left) == dataset_digest(right)


def test_demand_merge_rejects_duplicates_and_windows():
    prefix = Prefix(4, 0x0A000000, 24)
    a = DemandDataset()
    a._add(SubnetDemand(prefix, 1, "US", 1.0))
    b = DemandDataset()
    b._add(SubnetDemand(prefix, 1, "US", 2.0))
    with pytest.raises(ValueError, match="duplicate"):
        DemandDataset.merge([a, b])
    with pytest.raises(ValueError, match="windows"):
        DemandDataset.merge([DemandDataset(7), DemandDataset(14)])
    with pytest.raises(ValueError, match="nothing to merge"):
        DemandDataset.merge([])
