"""Unit tests for dedicated/mixed operator classification."""

import pytest

from repro.core.asn_classifier import ASFilterConfig, ASFilterResult, CandidateAS
from repro.core.mixed import (
    DEDICATED_CFD_CUTOFF,
    OperatorClass,
    classify_operator,
    mixed_demand_share,
    mixed_share,
    operator_profiles,
)
from repro.net.prefix import Prefix


def candidate(asn, cellular_du, total_du, cell_subnets=2, total_subnets=10):
    entry = CandidateAS(asn=asn, country="US")
    entry.cellular_du = cellular_du
    entry.total_du = total_du
    entry.cellular_subnets = [
        Prefix.parse(f"10.{asn}.{i}.0/24") for i in range(cell_subnets)
    ]
    entry.total_subnets = total_subnets
    return entry


def filter_result(*candidates):
    accepted = {c.asn: c for c in candidates}
    return ASFilterResult(
        config=ASFilterConfig(), candidates=dict(accepted),
        excluded={}, accepted=accepted,
    )


class TestClassifyOperator:
    def test_cutoff_inclusive(self):
        assert classify_operator(candidate(1, 90, 100)) is OperatorClass.DEDICATED
        assert classify_operator(candidate(1, 89.9, 100)) is OperatorClass.MIXED

    def test_paper_cutoff_value(self):
        assert DEDICATED_CFD_CUTOFF == 0.9

    def test_custom_cutoff(self):
        assert classify_operator(candidate(1, 80, 100), cutoff=0.7) is (
            OperatorClass.DEDICATED
        )
        with pytest.raises(ValueError):
            classify_operator(candidate(1, 1, 1), cutoff=0)

    def test_zero_demand_is_mixed(self):
        assert classify_operator(candidate(1, 0, 0)) is OperatorClass.MIXED


class TestProfiles:
    def test_profiles_carry_stats(self):
        result = filter_result(candidate(1, 99, 100), candidate(2, 10, 100))
        profiles = operator_profiles(result)
        assert profiles[1].operator_class is OperatorClass.DEDICATED
        assert profiles[2].is_mixed
        assert profiles[2].cellular_subnet_fraction == pytest.approx(0.2)
        assert profiles[1].cellular_fraction_of_demand == pytest.approx(0.99)

    def test_mixed_share(self):
        result = filter_result(
            candidate(1, 99, 100), candidate(2, 10, 100), candidate(3, 20, 100)
        )
        profiles = operator_profiles(result)
        assert mixed_share(profiles.values()) == pytest.approx(2 / 3)

    def test_mixed_demand_share(self):
        result = filter_result(candidate(1, 90, 100), candidate(2, 10, 100))
        profiles = operator_profiles(result)
        assert mixed_demand_share(profiles.values()) == pytest.approx(0.1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mixed_share([])
        with pytest.raises(ValueError):
            mixed_demand_share([])
