"""Unit tests for the Network Information API noise model."""

import random

import pytest

from repro.cdn.netinfo import (
    ConnectionType,
    draw_connection_type,
    noncellular_label_for,
)
from repro.world.population import Browser


class TestConnectionType:
    def test_only_cellular_flagged(self):
        assert ConnectionType.CELLULAR.is_cellular
        for label in ConnectionType:
            if label is not ConnectionType.CELLULAR:
                assert not label.is_cellular


class TestDrawConnectionType:
    def test_rate_one_always_cellular(self):
        rng = random.Random(1)
        for _ in range(100):
            assert draw_connection_type(rng, 1.0, Browser.CHROME_MOBILE) is (
                ConnectionType.CELLULAR
            )

    def test_rate_zero_never_cellular(self):
        rng = random.Random(1)
        for _ in range(100):
            label = draw_connection_type(rng, 0.0, Browser.CHROME_MOBILE)
            assert label is not ConnectionType.CELLULAR

    def test_rate_respected_statistically(self):
        rng = random.Random(5)
        rate = 0.8
        draws = [
            draw_connection_type(rng, rate, Browser.CHROME_MOBILE)
            for _ in range(3000)
        ]
        cellular = sum(1 for d in draws if d.is_cellular) / len(draws)
        assert cellular == pytest.approx(rate, abs=0.03)

    def test_mobile_noncellular_is_mostly_wifi(self):
        rng = random.Random(2)
        labels = [
            noncellular_label_for(rng, Browser.CHROME_MOBILE)
            for _ in range(2000)
        ]
        wifi = labels.count(ConnectionType.WIFI) / len(labels)
        assert wifi > 0.95

    def test_desktop_gets_ethernet_share(self):
        rng = random.Random(2)
        labels = [
            noncellular_label_for(rng, Browser.OTHER_DESKTOP)
            for _ in range(2000)
        ]
        ethernet = labels.count(ConnectionType.ETHERNET) / len(labels)
        assert 0.3 < ethernet < 0.6

    def test_exotic_labels_rare_but_possible(self):
        rng = random.Random(3)
        labels = [
            noncellular_label_for(rng, Browser.CHROME_MOBILE)
            for _ in range(20000)
        ]
        exotic = sum(
            1
            for label in labels
            if label in (ConnectionType.BLUETOOTH, ConnectionType.WIMAX)
        )
        assert 0 < exotic / len(labels) < 0.02
