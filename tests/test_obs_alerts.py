"""Alert rules engine: parsing, debouncing, transitions, episodes."""

from __future__ import annotations

import json
import sys

import pytest

from repro.obs.alerts import (
    STATE_FIRING,
    STATE_OK,
    STATE_PENDING,
    AlertEngine,
    AlertRule,
    AlertRuleError,
    default_rules,
    episodes,
    load_rules,
    read_alert_log,
)


def _sample(ts, **metrics):
    return {"ts": float(ts), "m": metrics}


class TestAlertRule:
    def test_defaults(self):
        rule = AlertRule(name="r", metric="depth", threshold=5)
        assert rule.kind == "gauge" and rule.op == ">"

    @pytest.mark.parametrize("op,value,breaches", [
        (">", 6, True), (">", 5, False),
        (">=", 5, True), ("<", 4, True), ("<=", 5, True), ("<", 5, False),
    ])
    def test_breaches(self, op, value, breaches):
        rule = AlertRule(name="r", metric="m", op=op, threshold=5)
        assert rule.breaches(value) is breaches

    def test_unknown_kind_rejected(self):
        with pytest.raises(AlertRuleError, match="unknown kind"):
            AlertRule(name="r", metric="m", kind="derivative")

    def test_unknown_op_rejected(self):
        with pytest.raises(AlertRuleError, match="unknown op"):
            AlertRule(name="r", metric="m", op="!=")

    def test_ratio_needs_denominator(self):
        with pytest.raises(AlertRuleError, match="denominator"):
            AlertRule(name="r", metric="m", kind="ratio")

    def test_quantile_must_be_scraped(self):
        with pytest.raises(AlertRuleError, match="0.5 and 0.99"):
            AlertRule(name="r", metric="m", kind="quantile", q=0.95)

    def test_negative_for_s_rejected(self):
        with pytest.raises(AlertRuleError, match="for_s"):
            AlertRule(name="r", metric="m", for_s=-1)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(AlertRuleError, match="unknown keys"):
            AlertRule.from_dict({"name": "r", "metric": "m", "window": 5})

    def test_from_dict_requires_metric(self):
        with pytest.raises(AlertRuleError, match="metric"):
            AlertRule.from_dict({"name": "r"})

    def test_condition_strings(self):
        assert AlertRule(
            name="r", metric="m", kind="counter_rate", threshold=10
        ).condition() == "rate(m) > 10"
        assert AlertRule(
            name="r", metric="a", kind="ratio", denominator="b",
            threshold=0.1, for_s=2,
        ).condition() == "a/b > 0.1 for 2s"
        assert AlertRule(
            name="r", metric="m", kind="quantile", q=0.5, threshold=1
        ).condition() == "p50(m) > 1"


class TestLoadRules:
    def test_json_rules(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "depth", "metric": "queue_depth", "threshold": 10},
        ]}))
        rules = load_rules(path)
        assert len(rules) == 1 and rules[0].name == "depth"

    @pytest.mark.skipif(sys.version_info < (3, 11),
                        reason="tomllib needs python >= 3.11")
    def test_toml_rules(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text(
            '[[rules]]\n'
            'name = "rejects"\n'
            'kind = "ratio"\n'
            'metric = "ingest_rejected_total"\n'
            'denominator = "ingest_lines_total"\n'
            'threshold = 0.1\n'
            'for_s = 2.0\n'
        )
        rules = load_rules(path)
        assert rules[0].kind == "ratio" and rules[0].for_s == 2.0

    def test_missing_file(self, tmp_path):
        with pytest.raises(AlertRuleError, match="cannot read"):
            load_rules(tmp_path / "absent.json")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("{nope")
        with pytest.raises(AlertRuleError, match="bad JSON"):
            load_rules(path)

    def test_missing_rules_array(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text('{"alerts": []}')
        with pytest.raises(AlertRuleError, match="'rules' array"):
            load_rules(path)

    def test_empty_rules_rejected(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text('{"rules": []}')
        with pytest.raises(AlertRuleError, match="empty"):
            load_rules(path)

    def test_duplicate_names_rejected(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "x", "metric": "a"},
            {"name": "x", "metric": "b"},
        ]}))
        with pytest.raises(AlertRuleError, match="duplicate"):
            load_rules(path)

    def test_default_rules_are_valid_and_named_uniquely(self):
        rules = default_rules()
        names = [rule.name for rule in rules]
        assert len(names) == len(set(names))
        assert "census-ratio-drift" in names
        assert "ingest-reject-budget" in names


class TestEngineTransitions:
    def test_gauge_rule_fires_immediately_without_for_s(self):
        engine = AlertEngine([AlertRule(name="depth", metric="d",
                                        threshold=10)])
        events = engine.observe(_sample(1, d=["g", 50]))
        assert [(e["from"], e["to"]) for e in events] == [("ok", "firing")]
        assert engine.firing()[0]["rule"] == "depth"

    def test_for_s_debounces_through_pending(self):
        rule = AlertRule(name="depth", metric="d", threshold=10, for_s=5)
        engine = AlertEngine([rule])
        assert [e["to"] for e in engine.observe(_sample(0, d=["g", 50]))] \
            == ["pending"]
        assert engine.observe(_sample(3, d=["g", 50])) == []  # still pending
        assert [e["to"] for e in engine.observe(_sample(6, d=["g", 50]))] \
            == ["firing"]

    def test_breach_clearing_during_pending_returns_to_ok(self):
        rule = AlertRule(name="depth", metric="d", threshold=10, for_s=5)
        engine = AlertEngine([rule])
        engine.observe(_sample(0, d=["g", 50]))
        events = engine.observe(_sample(2, d=["g", 1]))
        assert [(e["from"], e["to"]) for e in events] == [("pending", "ok")]

    def test_firing_resolves_when_breach_clears(self):
        engine = AlertEngine([AlertRule(name="depth", metric="d",
                                        threshold=10)])
        engine.observe(_sample(1, d=["g", 50]))
        events = engine.observe(_sample(2, d=["g", 0]))
        assert [(e["from"], e["to"]) for e in events] == [("firing", "ok")]

    def test_missing_metric_keeps_state(self):
        engine = AlertEngine([AlertRule(name="depth", metric="d",
                                        threshold=10)])
        engine.observe(_sample(1, d=["g", 50]))
        assert engine.observe(_sample(2)) == []  # no data: stay firing
        assert engine.firing()

    def test_ratio_rule(self):
        rule = AlertRule(name="rej", kind="ratio", metric="bad",
                         denominator="all", threshold=0.10)
        engine = AlertEngine([rule])
        assert engine.observe(
            _sample(1, bad=["c", 5], all=["c", 100])
        ) == []
        events = engine.observe(_sample(2, bad=["c", 30], all=["c", 200]))
        assert events and events[0]["to"] == "firing"
        assert events[0]["value"] == pytest.approx(0.15)

    def test_zero_denominator_reads_zero(self):
        rule = AlertRule(name="rej", kind="ratio", metric="bad",
                         denominator="all", threshold=0.10)
        engine = AlertEngine([rule])
        assert engine.observe(_sample(1, bad=["c", 5], all=["c", 0])) == []

    def test_counter_rate_rule_uses_consecutive_samples(self):
        rule = AlertRule(name="rate", kind="counter_rate",
                         metric="events_total", threshold=100)
        engine = AlertEngine([rule])
        assert engine.observe(_sample(10, events_total=["c", 0])) == []
        events = engine.observe(_sample(11, events_total=["c", 500]))
        assert events and events[0]["value"] == pytest.approx(500.0)

    def test_quantile_rule_reads_scraped_p99(self):
        rule = AlertRule(name="p99", kind="quantile",
                         metric="latency_seconds", q=0.99, threshold=0.001)
        engine = AlertEngine([rule])
        histogram = ["h", 10, 0.5, 0.0005, 0.25]
        events = engine.observe(_sample(1, latency_seconds=histogram))
        assert events and events[0]["to"] == "firing"

    def test_counts_summarize_states(self):
        engine = AlertEngine([
            AlertRule(name="a", metric="x", threshold=1),
            AlertRule(name="b", metric="y", threshold=1),
        ])
        engine.observe(_sample(1, x=["g", 5], y=["g", 0]))
        counts = engine.counts()
        assert counts[STATE_FIRING] == 1
        assert counts[STATE_OK] == 1
        assert counts[STATE_PENDING] == 0


class TestAlertLog:
    def test_transitions_logged_with_trace_id(self, tmp_path):
        log = tmp_path / "alerts.jsonl"
        engine = AlertEngine(
            [AlertRule(name="depth", metric="d", threshold=10)],
            log_path=log, trace_id="abc123",
        )
        engine.observe(_sample(1, d=["g", 50]))
        engine.observe(_sample(2, d=["g", 0]))
        events = read_alert_log(log)
        assert [(e["from"], e["to"]) for e in events] == [
            ("ok", "firing"), ("firing", "ok"),
        ]
        assert all(e["trace_id"] == "abc123" for e in events)
        assert all("condition" in e for e in events)

    def test_read_skips_junk_lines(self, tmp_path):
        log = tmp_path / "alerts.jsonl"
        log.write_text('{"ts": 1, "rule": "r", "from": "ok", "to": '
                       '"firing", "value": 1, "threshold": 0}\n'
                       "not json\n"
                       "[1, 2]\n")
        events = read_alert_log(log)
        assert len(events) == 1

    def test_read_missing_log_is_empty(self, tmp_path):
        assert read_alert_log(tmp_path / "absent.jsonl") == []

    def test_episodes_group_fire_resolve_cycles(self):
        events = [
            {"ts": 1.0, "rule": "r", "from": "ok", "to": "pending",
             "value": 5, "threshold": 1, "trace_id": "t"},
            {"ts": 2.0, "rule": "r", "from": "pending", "to": "firing",
             "value": 7, "threshold": 1, "trace_id": "t"},
            {"ts": 3.0, "rule": "r", "from": "firing", "to": "ok",
             "value": 0, "threshold": 1, "trace_id": "t"},
            {"ts": 4.0, "rule": "other", "from": "ok", "to": "firing",
             "value": 9, "threshold": 1, "trace_id": "t"},
        ]
        all_episodes = episodes(events)
        assert len(all_episodes) == 2
        first = episodes(events, "r")[0]
        assert first["fired"] is True
        assert first["started"] == 1.0 and first["ended"] == 3.0
        assert first["peak_value"] == 7
        assert first["trace_id"] == "t"

    def test_unresolved_episode_has_open_end(self):
        events = [
            {"ts": 1.0, "rule": "r", "from": "ok", "to": "firing",
             "value": 5, "threshold": 1, "trace_id": "t"},
        ]
        episode = episodes(events)[0]
        assert episode["fired"] and episode["ended"] is None
