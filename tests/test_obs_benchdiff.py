"""Benchmark report schema and `cellspot bench-diff` comparison."""

from __future__ import annotations

import json

import pytest

from repro.obs.benchdiff import (
    DEFAULT_TOLERANCE,
    REPORT_VERSION,
    compare_bench_reports,
    load_bench_report,
    metric_record,
    render_diff,
    write_bench_report,
)


def _report(metrics, tests=None):
    return {
        "bench": "x",
        "report_version": REPORT_VERSION,
        "tests": tests or {},
        "metrics": metrics,
    }


class TestMetricRecord:
    def test_floor_verdict_when_higher_is_better(self):
        assert metric_record(50, threshold=10)["pass"] is True
        assert metric_record(5, threshold=10)["pass"] is False

    def test_ceiling_verdict_when_lower_is_better(self):
        record = metric_record(1.02, higher_is_better=False, threshold=1.05)
        assert record["pass"] is True
        assert metric_record(1.10, higher_is_better=False,
                             threshold=1.05)["pass"] is False

    def test_no_threshold_passes(self):
        record = metric_record(123.0, unit="op/s")
        assert record["pass"] is True and record["threshold"] is None

    def test_explicit_verdict_wins(self):
        assert metric_record(5, threshold=10, passed=True)["pass"] is True


class TestReportIO:
    def test_write_load_roundtrip(self, tmp_path):
        path = write_bench_report(
            tmp_path / "BENCH_x.json", "x",
            tests={"test_a": {"outcome": "passed", "duration_s": 1.5}},
            metrics={"rate": metric_record(100, unit="op/s", threshold=10)},
            generated_at=1700000000.0,
        )
        report = load_bench_report(path)
        assert report["bench"] == "x"
        assert report["report_version"] == REPORT_VERSION
        assert report["pass"] is True
        assert report["tests"]["test_a"]["duration_s"] == 1.5
        assert report["metrics"]["rate"]["value"] == 100.0
        assert report["generated_at"] == 1700000000.0

    def test_failed_test_fails_report(self, tmp_path):
        path = write_bench_report(
            tmp_path / "r.json", "x",
            tests={"test_a": {"outcome": "failed", "duration_s": 0.1}},
        )
        assert load_bench_report(path)["pass"] is False

    def test_failed_metric_fails_report(self, tmp_path):
        path = write_bench_report(
            tmp_path / "r.json", "x",
            tests={"test_a": {"outcome": "passed", "duration_s": 0.1}},
            metrics={"ratio": metric_record(2.0, higher_is_better=False,
                                            threshold=1.05)},
        )
        assert load_bench_report(path)["pass"] is False

    def test_load_rejects_non_reports(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"anything": 1}))
        with pytest.raises(ValueError, match="not a bench report"):
            load_bench_report(path)

    def test_load_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_bench_report(tmp_path / "absent.json")


class TestCompare:
    def test_within_tolerance_is_ok(self):
        findings = compare_bench_reports(
            _report({"rate": metric_record(100)}),
            _report({"rate": metric_record(95)}),
        )
        assert findings[0]["status"] == "ok"
        assert findings[0]["change"] == pytest.approx(-0.05)

    def test_drop_beyond_tolerance_regresses(self):
        findings = compare_bench_reports(
            _report({"rate": metric_record(100)}),
            _report({"rate": metric_record(80)}),
        )
        assert findings[0]["status"] == "regressed"

    def test_gain_beyond_tolerance_improves(self):
        findings = compare_bench_reports(
            _report({"rate": metric_record(100)}),
            _report({"rate": metric_record(150)}),
        )
        assert findings[0]["status"] == "improved"

    def test_lower_is_better_inverts_direction(self):
        old = _report({"p99": metric_record(0.001, higher_is_better=False)})
        up = _report({"p99": metric_record(0.002, higher_is_better=False)})
        down = _report({"p99": metric_record(0.0005,
                                             higher_is_better=False)})
        assert compare_bench_reports(old, up)[0]["status"] == "regressed"
        assert compare_bench_reports(old, down)[0]["status"] == "improved"

    def test_verdict_flip_always_regresses(self):
        # Value moved under tolerance but crossed its floor.
        old = _report({"rate": metric_record(10.5, threshold=10)})
        new = _report({"rate": metric_record(9.9, threshold=10)})
        findings = compare_bench_reports(old, new, tolerance=0.5)
        assert findings[0]["status"] == "regressed"

    def test_added_and_removed(self):
        findings = compare_bench_reports(
            _report({"gone": metric_record(1)}),
            _report({"fresh": metric_record(2)}),
        )
        by_name = {f["metric"]: f for f in findings}
        assert by_name["gone"]["status"] == "removed"
        assert by_name["fresh"]["status"] == "added"
        assert by_name["fresh"]["change"] is None

    def test_custom_tolerance(self):
        old = _report({"rate": metric_record(100)})
        new = _report({"rate": metric_record(94)})
        assert compare_bench_reports(old, new, tolerance=0.10)[0][
            "status"] == "ok"
        assert compare_bench_reports(old, new, tolerance=0.05)[0][
            "status"] == "regressed"
        assert DEFAULT_TOLERANCE == 0.10

    def test_zero_old_value_is_ok_not_div_by_zero(self):
        findings = compare_bench_reports(
            _report({"rate": metric_record(0)}),
            _report({"rate": metric_record(50)}),
        )
        assert findings[0]["change"] is None
        assert findings[0]["status"] == "ok"


class TestRenderDiff:
    def test_table_shape(self):
        findings = compare_bench_reports(
            _report({"rate": metric_record(100), "p99": metric_record(
                0.001, higher_is_better=False)}),
            _report({"rate": metric_record(80), "p99": metric_record(
                0.0005, higher_is_better=False)}),
        )
        text = render_diff(findings, "old.json", "new.json")
        assert "bench-diff: old.json -> new.json" in text
        assert "✖ rate" in text
        assert "▲ p99" in text
        assert "1 regressed, 1 improved" in text

    def test_empty_reports(self):
        text = render_diff([], "a", "b")
        assert "(no metrics on either side)" in text
