"""`cellspot top` dashboard: rendering, data sources, repaint loop."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.dashboard import (
    ANSI_HIDE_CURSOR,
    ANSI_HOME_CLEAR,
    ANSI_SHOW_CURSOR,
    health_from_metrics_dump,
    health_from_timeseries,
    render_dashboard,
    render_health_report,
    run_top,
    sparkline,
)


def _health(**overrides):
    health = {
        "ok": True,
        "ts": 1700000000.0,
        "engine": {
            "month": "2017-01",
            "events_consumed": 32768,
            "windows_advanced": 8,
            "window_fill": 123,
            "subnets": 456,
        },
        "rates": {
            "events_per_s": 50000.0,
            "queries_per_s": 12000.0,
            "query_p99_s": 0.0001,
        },
        "drift": {
            "windows_scored": 7,
            "baseline_windows": 1,
            "baseline_subnets": 100,
            "recent_psi": [0.01, 0.02, 0.5],
            "last": {"psi": 0.5, "ks": 0.4, "churn_rate": 0.1},
        },
        "alerts": [
            {"rule": "drift", "state": "firing",
             "condition": "census_ratio_psi > 0.25", "value": 0.5},
            {"rule": "lag", "state": "ok",
             "condition": "lag > 50000", "value": 12.0},
        ],
        "index_entries": 456,
    }
    health.update(overrides)
    return health


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_all_zero_is_flat(self):
        assert sparkline([0, 0, 0]) == "   "

    def test_peak_gets_full_bar(self):
        line = sparkline([0.0, 1.0])
        assert line[-1] == "█"

    def test_width_truncates_to_tail(self):
        assert len(sparkline(list(range(100)), width=10)) == 10


class TestRenderDashboard:
    def test_panels_present(self):
        frame = render_dashboard(_health())
        assert "engine" in frame
        assert "census drift" in frame
        assert "alerts" in frame
        assert "2017-01" in frame
        assert "32,768" in frame

    def test_firing_alerts_sort_first(self):
        frame = render_dashboard(_health())
        assert frame.index("✖ firing") < frame.index("· ok")

    def test_no_rules_placeholder(self):
        frame = render_dashboard(_health(alerts=[]))
        assert "(no alert rules loaded)" in frame

    def test_width_is_respected(self):
        for line in render_dashboard(_health(), width=60).splitlines():
            assert len(line) <= 60

    def test_empty_payload_renders(self):
        frame = render_dashboard({})
        assert "engine" in frame  # degrades, never raises


class TestDataSources:
    def test_health_from_timeseries(self, tmp_path):
        from repro.obs.timeseries import TimeSeriesStore

        store = TimeSeriesStore(tmp_path)
        store.append({"ts": 10.0, "m": {
            "stream_events_total": ["c", 1000],
            "census_ratio_psi": ["g", 0.3],
        }})
        store.append({"ts": 12.0, "m": {
            "stream_events_total": ["c", 3000],
            "census_ratio_psi": ["g", 0.6],
            "stream_tracked_subnets": ["g", 42],
        }})
        health = health_from_timeseries(tmp_path)
        assert health["ts"] == 12.0
        assert health["engine"]["events_consumed"] == 3000
        assert health["engine"]["subnets"] == 42
        assert health["drift"]["last"]["psi"] == 0.6
        # Rate from the stored counter delta: 2000 events / 2 s.
        assert health["rates"]["events_per_s"] == pytest.approx(1000.0)

    def test_health_from_empty_timeseries_raises(self, tmp_path):
        with pytest.raises(OSError):
            health_from_timeseries(tmp_path / "nothing")

    def test_health_from_json_metrics_dump(self, tmp_path):
        dump = tmp_path / "metrics.json"
        dump.write_text(json.dumps({
            "stream_events_total": {"type": "counter", "value": 777},
            "census_ratio_psi": {"type": "gauge", "value": 0.42},
            "query_latency_seconds": {"type": "histogram", "p99": 0.002},
        }))
        health = health_from_metrics_dump(dump)
        assert health["engine"]["events_consumed"] == 777
        assert health["drift"]["last"]["psi"] == 0.42
        assert health["source"] == str(dump)

    def test_health_from_prometheus_dump(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry, render_prometheus

        registry = MetricsRegistry()
        registry.counter("stream_events_total", "events").inc(55)
        registry.gauge("census_ratio_psi", "psi").set(0.9)
        dump = tmp_path / "metrics.prom"
        dump.write_text(render_prometheus(registry))
        health = health_from_metrics_dump(dump)
        assert health["engine"]["events_consumed"] == 55
        assert health["drift"]["last"]["psi"] == 0.9


class TestRunTop:
    def test_fixed_iterations(self):
        out = io.StringIO()
        frames = run_top(lambda: _health(), out, iterations=3,
                         sleep=lambda _s: None)
        assert frames == 3
        assert out.getvalue().count("cellspot top") == 3

    def test_stops_when_fetch_returns_none(self):
        feed = [_health(), _health(), None]
        out = io.StringIO()
        frames = run_top(lambda: feed.pop(0), out, iterations=None,
                         sleep=lambda _s: None)
        assert frames == 2

    def test_ansi_mode_hides_and_restores_cursor(self):
        out = io.StringIO()
        run_top(lambda: _health(), out, iterations=1, ansi=True,
                sleep=lambda _s: None)
        text = out.getvalue()
        assert text.startswith(ANSI_HIDE_CURSOR)
        assert ANSI_HOME_CLEAR in text
        assert text.endswith(ANSI_SHOW_CURSOR)

    def test_plain_mode_has_no_escapes(self):
        out = io.StringIO()
        run_top(lambda: _health(), out, iterations=2, ansi=False,
                sleep=lambda _s: None)
        assert "\x1b[" not in out.getvalue()

    def test_keyboard_interrupt_counts_painted_frames(self):
        calls = {"n": 0}

        def fetch():
            calls["n"] += 1
            if calls["n"] > 2:
                raise KeyboardInterrupt
            return _health()

        frames = run_top(fetch, io.StringIO(), iterations=None,
                         sleep=lambda _s: None)
        assert frames == 2

    def test_broken_pipe_is_tolerated(self):
        class _Closed(io.StringIO):
            def write(self, _text):
                raise BrokenPipeError

        frames = run_top(lambda: _health(), _Closed(), iterations=5,
                         ansi=True, sleep=lambda _s: None)
        assert frames == 0


class TestHealthReport:
    def test_markdown_sections(self):
        report = render_health_report(_health())
        assert report.startswith("# cellspot health rollup")
        assert "## engine" in report
        assert "## census drift" in report
        assert "| drift | firing |" in report
        assert "PSI trend" in report

    def test_no_alerts_placeholder(self):
        report = render_health_report(_health(alerts=[]))
        assert "(no live alert states)" in report

    def test_episode_section_joins_trace(self):
        events = [
            {"ts": 1.0, "rule": "drift", "from": "ok", "to": "firing",
             "value": 0.5, "threshold": 0.25, "trace_id": "t-123"},
            {"ts": 2.0, "rule": "drift", "from": "firing", "to": "ok",
             "value": 0.1, "threshold": 0.25, "trace_id": "t-123"},
        ]
        report = render_health_report(_health(), alert_events=events)
        assert "### firing episodes" in report
        assert "`drift` fired" in report
        assert "trace `t-123`" in report

    def test_html_variant_is_escaped(self):
        report = render_health_report(_health(), fmt="html")
        assert report.startswith("<!doctype html>")
        assert "<pre>" in report
        assert "census_ratio_psi &gt; 0.25" in report
