"""End-to-end alerting proof: a synthetic stream with a mid-run
cellular-ratio shift drives PSI over the alert threshold; the
pending -> firing -> resolved episode is then reconstructed offline
from the time-series store and the alert log, joined on trace_id.

This is the differential test the telemetry plane exists for: the
*live* path (stream engine -> drift monitor -> gauges -> scraper ->
alert engine) and the *post-mortem* path (TimeSeriesReader + alert
log) must tell the same story.
"""

from __future__ import annotations

import itertools

import pytest

from repro.cdn.logs import BeaconHit
from repro.cdn.netinfo import ConnectionType
from repro.net.prefix import Prefix
from repro.obs.alerts import (
    STATE_FIRING,
    STATE_OK,
    STATE_PENDING,
    AlertEngine,
    AlertRule,
    episodes,
    read_alert_log,
)
from repro.obs.health import CensusDriftMonitor
from repro.obs.metrics import reset_global_registry
from repro.obs.timeseries import MetricScraper, TimeSeriesStore, TimeSeriesReader
from repro.stream import StreamEngine, WindowPolicy
from repro.world.population import Browser

#: Events per stream window; small so the test closes many windows.
WINDOW = 400
#: Distinct /24 subnets in the synthetic population.
SUBNETS = 40

_SENTINEL_TRACE = "e2e-drift-trace"


def _hit(subnet_index: int, host: int, cellular: bool) -> BeaconHit:
    base = 0x0A000000 + subnet_index * 256
    return BeaconHit(
        month="2017-01",
        family=4,
        address=base + (host % 200) + 1,
        subnet=Prefix.make(4, base, 24),
        asn=64500 + subnet_index % 4,
        country="de",
        browser=Browser.CHROME_MOBILE,
        api_enabled=True,
        connection_type=(
            ConnectionType.CELLULAR if cellular else ConnectionType.WIFI
        ),
    )


def _phase(events: int, counter, cellular_fraction: float):
    """``events`` hits spread round-robin over the subnet population.

    The first ``cellular_fraction`` of subnets report cellular labels,
    the rest Wi-Fi -- so the per-subnet ratio distribution is bimodal
    and the *fraction* is what shifts between phases.
    """
    cellular_cut = int(SUBNETS * cellular_fraction)
    for _ in range(events):
        n = next(counter)
        subnet_index = n % SUBNETS
        yield _hit(subnet_index, n // SUBNETS, subnet_index < cellular_cut)


@pytest.fixture()
def telemetry(tmp_path):
    """One wired plane: engine + monitor + scraper + alert engine."""
    reset_global_registry()
    store = TimeSeriesStore(tmp_path / "ts")
    scraper = MetricScraper(store, interval_s=60.0)  # manual scrapes only
    rule = AlertRule(
        name="census-psi", metric="census_ratio_psi",
        threshold=0.25, for_s=2.0,
    )
    alert_log = tmp_path / "alerts.jsonl"
    alerts = AlertEngine(
        [rule], log_path=alert_log, trace_id=_SENTINEL_TRACE
    )
    scraper.subscribe(alerts.observe)
    engine = StreamEngine(policy=WindowPolicy(window_events=WINDOW))
    engine.attach_monitor(CensusDriftMonitor(baseline_windows=1))
    yield engine, scraper, alerts, tmp_path
    reset_global_registry()


def _run_shifted_stream(engine, scraper):
    """Stable -> shifted -> recovered, one scrape per second of 'time'.

    Returns the synthetic clock value after the run.
    """
    counter = itertools.count()
    clock = itertools.count(start=100)

    def feed(events, cellular_fraction):
        for hit in _phase(events, counter, cellular_fraction):
            if engine.ingest(hit):
                scraper.scrape_once(ts=float(next(clock)))

    feed(WINDOW * 6, 0.5)    # baseline + stable windows
    feed(WINDOW * 6, 0.95)   # mid-run shift: most subnets flip cellular
    feed(WINDOW * 6, 0.5)    # recovery
    return scraper


class TestEndToEndDriftAlerting:
    def test_shift_fires_and_recovery_resolves(self, telemetry):
        engine, scraper, alerts, _tmp = telemetry
        _run_shifted_stream(engine, scraper)

        transitions = [(e["from"], e["to"]) for e in alerts.events]
        # Debounced path: the PSI breach holds >= for_s before firing,
        # and the recovery phase resolves it.
        assert (STATE_OK, STATE_PENDING) in transitions
        assert (STATE_PENDING, STATE_FIRING) in transitions
        assert (STATE_FIRING, STATE_OK) in transitions
        # The engine ends the run resolved (no stuck alert).
        assert alerts.counts()[STATE_FIRING] == 0

    def test_post_mortem_reconstruction_matches_live(self, telemetry):
        engine, scraper, alerts, tmp_path = telemetry
        _run_shifted_stream(engine, scraper)

        # -- alert log replay --------------------------------------------
        logged = read_alert_log(tmp_path / "alerts.jsonl")
        assert [(e["from"], e["to"]) for e in logged] == [
            (e["from"], e["to"]) for e in alerts.events
        ]
        assert all(e["trace_id"] == _SENTINEL_TRACE for e in logged)

        fired = [e for e in episodes(logged) if e["fired"]]
        assert len(fired) == 1
        episode = fired[0]
        assert episode["rule"] == "census-psi"
        assert episode["trace_id"] == _SENTINEL_TRACE
        assert episode["ended"] is not None
        assert episode["peak_value"] > 0.25

        # -- time-series replay ------------------------------------------
        reader = TimeSeriesReader(tmp_path / "ts")
        psi_series = reader.series("census_ratio_psi")
        assert psi_series, "scrapes must persist the drift gauge"

        # The stored gauge crosses the threshold exactly while the
        # episode is open and stays under it after it resolves.
        during = [
            v for ts, v in psi_series
            if episode["started"] <= ts <= episode["ended"]
        ]
        after = [v for ts, v in psi_series if ts > episode["ended"]]
        assert max(during) > 0.25
        assert max(during) == pytest.approx(episode["peak_value"])
        assert after and all(v <= 0.25 for v in after)

        # The breach onset in the time-series agrees with the log's
        # episode start: no stored sample before it breaches.
        before = [v for ts, v in psi_series if ts < episode["started"]]
        assert all(v <= 0.25 for v in before)

    def test_windows_actually_closed_through_all_phases(self, telemetry):
        engine, scraper, alerts, _tmp = telemetry
        _run_shifted_stream(engine, scraper)
        assert engine.windows_advanced == 18  # 3 phases x 6 windows
        assert scraper.samples_taken == engine.windows_advanced
        # The monitor scored every window past the baseline.
        assert engine.monitor.windows_scored == 17
