"""Crash flight recorder: mmap ring roundtrips, torn writes, resume."""

from __future__ import annotations

import struct

import pytest

from repro.obs.flight import (
    HEADER_BYTES,
    RECORD_FIXED,
    FlightRecorder,
    FlightRecorderError,
    read_flight_ring,
)


@pytest.fixture()
def ring_path(tmp_path):
    return tmp_path / "worker-0.fr"


class TestRoundtrip:
    def test_begin_end_roundtrip(self, ring_path):
        recorder = FlightRecorder(ring_path, slots=4)
        token = recorder.begin(
            b'{"op":"query","q":"10.0.0.1"}', "req-000000000001", 7
        )
        recorder.end(token, ok=True)
        recorder.close()
        ring = read_flight_ring(ring_path)
        assert ring["slots"] == 4
        assert ring["next_seq"] == 2
        (record,) = ring["records"]
        assert record["seq"] == 1
        assert record["rid"] == "req-000000000001"
        assert record["generation"] == 7
        assert record["outcome"] == "ok"
        assert record["line"] == '{"op":"query","q":"10.0.0.1"}'
        assert record["mono_ended"] >= record["mono_started"]

    def test_error_outcome_and_missing_generation(self, ring_path):
        recorder = FlightRecorder(ring_path, slots=2)
        token = recorder.begin(b'{"op":"nope"}')
        recorder.end(token, ok=False)
        recorder.close()
        (record,) = read_flight_ring(ring_path)["records"]
        assert record["outcome"] == "error"
        assert record["generation"] is None
        assert record["rid"] == ""

    def test_empty_ring_reads_clean(self, ring_path):
        FlightRecorder(ring_path, slots=3).close()
        ring = read_flight_ring(ring_path)
        assert ring["records"] == []
        assert ring["next_seq"] == 1

    def test_long_line_is_truncated_to_line_bytes(self, ring_path):
        recorder = FlightRecorder(ring_path, slots=2, line_bytes=16)
        recorder.end(recorder.begin(b"x" * 100, "req-1"))
        recorder.close()
        (record,) = read_flight_ring(ring_path)["records"]
        assert record["line"] == "x" * 16


class TestRingSemantics:
    def test_wraparound_keeps_last_n(self, ring_path):
        recorder = FlightRecorder(ring_path, slots=3)
        for index in range(8):
            recorder.end(recorder.begin(f"line-{index}".encode()))
        recorder.close()
        records = read_flight_ring(ring_path)["records"]
        assert [r["seq"] for r in records] == [6, 7, 8]
        assert [r["line"] for r in records] == ["line-5", "line-6", "line-7"]

    def test_end_after_lap_is_a_noop(self, ring_path):
        recorder = FlightRecorder(ring_path, slots=2)
        stale = recorder.begin(b"old")
        for index in range(3):
            recorder.end(recorder.begin(f"new-{index}".encode()))
        recorder.end(stale, ok=False)  # slot was reused; must not corrupt
        recorder.close()
        records = read_flight_ring(ring_path)["records"]
        assert all(r["outcome"] == "ok" for r in records)

    def test_inflight_record_survives_without_end(self, ring_path):
        # Simulates SIGKILL mid-request: begin() ran, end() never did.
        recorder = FlightRecorder(ring_path, slots=4)
        recorder.end(recorder.begin(b"finished", "req-0"))
        recorder.begin(b'{"op":"query","q":"dying"}', "req-1", 3)
        recorder.flush()  # reader sees the mapping without close()
        ring = read_flight_ring(ring_path)
        inflight = [r for r in ring["records"] if r["outcome"] == "inflight"]
        assert len(inflight) == 1
        assert inflight[0]["rid"] == "req-1"
        assert inflight[0]["mono_ended"] is None
        assert "dying" in inflight[0]["line"]
        recorder.close()


class TestResumeAndValidation:
    def test_reopen_resumes_sequence(self, ring_path):
        recorder = FlightRecorder(ring_path, slots=4)
        recorder.end(recorder.begin(b"before"))
        recorder.close()
        resumed = FlightRecorder(ring_path, slots=4)
        resumed.end(resumed.begin(b"after"))
        resumed.close()
        records = read_flight_ring(ring_path)["records"]
        assert [r["seq"] for r in records] == [1, 2]
        assert [r["line"] for r in records] == ["before", "after"]

    def test_geometry_change_resets_the_ring(self, ring_path):
        recorder = FlightRecorder(ring_path, slots=4)
        recorder.end(recorder.begin(b"old-geometry"))
        recorder.close()
        FlightRecorder(ring_path, slots=8).close()
        assert read_flight_ring(ring_path)["records"] == []

    def test_bad_magic_raises(self, tmp_path):
        bogus = tmp_path / "not-a-ring.fr"
        bogus.write_bytes(b"Z" * (HEADER_BYTES + RECORD_FIXED.size + 240))
        with pytest.raises(FlightRecorderError):
            read_flight_ring(bogus)

    def test_truncated_file_raises(self, tmp_path):
        short = tmp_path / "short.fr"
        short.write_bytes(b"CS")
        with pytest.raises(FlightRecorderError):
            read_flight_ring(short)

    def test_torn_record_is_skipped(self, ring_path):
        # A record body without its final seq store must read as empty.
        recorder = FlightRecorder(ring_path, slots=2)
        token = recorder.begin(b"torn", "req-9")
        struct.pack_into("<Q", recorder._mm, token[0], 0)  # undo seq store
        recorder.close()
        assert read_flight_ring(ring_path)["records"] == []

    def test_bad_geometry_arguments(self, ring_path):
        with pytest.raises(ValueError):
            FlightRecorder(ring_path, slots=0)
        with pytest.raises(ValueError):
            FlightRecorder(ring_path, line_bytes=4)
