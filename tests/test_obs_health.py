"""Census drift monitors: sketches, PSI/KS, churn, stream hookup."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.obs.health import (
    RATIO_BINS,
    CensusDriftMonitor,
    RatioSketch,
    classification_churn,
    ks_statistic,
    population_stability_index,
    ratio_distribution_shift,
)
from repro.obs.metrics import global_registry, reset_global_registry


@dataclass
class _Counts:
    """Stands in for the stream layer's SubnetWindowCounts."""

    api_hits: int
    cellular_hits: int


def _window(spec):
    """{subnet: (api, cellular)} -> {subnet: _Counts}."""
    return {
        subnet: _Counts(api_hits=api, cellular_hits=cell)
        for subnet, (api, cell) in spec.items()
    }


class TestRatioSketch:
    def test_add_bins_by_decile(self):
        sketch = RatioSketch()
        sketch.add(0.05)
        sketch.add(0.95)
        sketch.add(0.95)
        assert sketch.counts[0] == 1
        assert sketch.counts[RATIO_BINS - 1] == 2
        assert len(sketch) == 3

    def test_ratio_one_lands_in_last_bin(self):
        sketch = RatioSketch()
        sketch.add(1.0)
        assert sketch.counts[RATIO_BINS - 1] == 1

    def test_out_of_domain_values_clamp(self):
        sketch = RatioSketch()
        sketch.add(-0.5)
        sketch.add(1.5)
        assert sketch.counts[0] == 1
        assert sketch.counts[RATIO_BINS - 1] == 1

    def test_merge_accumulates(self):
        left = RatioSketch.from_ratios([0.1, 0.2])
        right = RatioSketch.from_ratios([0.9])
        left.merge(right)
        assert len(left) == 3
        assert left.counts[RATIO_BINS - 1] == 1

    def test_proportions_sum_to_one(self):
        sketch = RatioSketch.from_ratios([0.1, 0.5, 0.9, 0.9])
        assert sum(sketch.proportions()) == pytest.approx(1.0)

    def test_empty_proportions_are_zero(self):
        assert RatioSketch().proportions() == [0.0] * RATIO_BINS

    def test_wrong_bin_count_rejected(self):
        with pytest.raises(ValueError):
            RatioSketch(counts=[1.0, 2.0])

    def test_roundtrip_to_dict(self):
        sketch = RatioSketch.from_ratios([0.3, 0.7])
        clone = RatioSketch(counts=sketch.to_dict()["counts"])
        assert clone.counts == sketch.counts
        assert clone.total == sketch.total


class TestScores:
    def test_identical_distributions_score_zero(self):
        a = RatioSketch.from_ratios([0.1, 0.5, 0.9] * 10)
        b = RatioSketch.from_ratios([0.1, 0.5, 0.9] * 10)
        assert population_stability_index(a, b) == pytest.approx(0.0)
        assert ks_statistic(a, b) == pytest.approx(0.0)

    def test_mode_flip_scores_major_shift(self):
        fixed = RatioSketch.from_ratios([0.02] * 100)
        cellular = RatioSketch.from_ratios([0.98] * 100)
        assert population_stability_index(fixed, cellular) > 0.25
        assert ks_statistic(fixed, cellular) == pytest.approx(1.0)

    def test_empty_sketch_scores_zero_not_nan(self):
        full = RatioSketch.from_ratios([0.5] * 10)
        assert population_stability_index(RatioSketch(), full) == 0.0
        assert population_stability_index(full, RatioSketch()) == 0.0
        assert ks_statistic(RatioSketch(), full) == 0.0

    def test_psi_is_finite_when_a_bin_drains(self):
        before = RatioSketch.from_ratios([0.05] * 50 + [0.95] * 50)
        after = RatioSketch.from_ratios([0.95] * 100)
        psi = population_stability_index(before, after)
        assert psi > 0.25
        assert psi == psi and psi != float("inf")  # finite, not NaN

    def test_churn(self):
        assert classification_churn({1, 2}, {2, 3}) == pytest.approx(2 / 3)
        assert classification_churn(set(), set()) == 0.0
        assert classification_churn({1}, {1}) == 0.0
        assert classification_churn({1, 2}, {2, 3}, universe=4) == 0.5


class TestCensusDriftMonitor:
    def test_baseline_windows_score_none(self):
        monitor = CensusDriftMonitor(baseline_windows=2)
        window = _window({"a": (10, 9), "b": (10, 1)})
        assert monitor.on_window_close(0, window) is None
        assert monitor.on_window_close(1, window) is None
        assert monitor.windows_scored == 0
        assert len(monitor.baseline) == 4

    def test_stable_windows_score_low(self):
        monitor = CensusDriftMonitor()
        window = _window({f"s{i}": (10, 9) for i in range(20)})
        monitor.on_window_close(0, window)
        score = monitor.on_window_close(1, window)
        assert score is not None
        assert score.psi == pytest.approx(0.0)
        assert score.churn_rate == 0.0
        assert score.subnets == 20

    def test_ratio_shift_scores_major_psi(self):
        monitor = CensusDriftMonitor()
        cellular = _window({f"s{i}": (10, 9) for i in range(20)})
        fixed = _window({f"s{i}": (10, 0) for i in range(20)})
        monitor.on_window_close(0, cellular)
        score = monitor.on_window_close(1, fixed)
        assert score.psi > 0.25
        assert score.churn_rate == 1.0  # every subnet flipped label

    def test_min_api_hits_filters_thin_subnets(self):
        monitor = CensusDriftMonitor(min_api_hits=5)
        window = _window({"thin": (2, 2), "thick": (10, 9)})
        monitor.on_window_close(0, window)
        score = monitor.on_window_close(1, window)
        assert score.subnets == 1

    def test_subnet_cap_bounds_sketch_size(self):
        monitor = CensusDriftMonitor(max_subnets_per_window=8)
        window = _window({f"s{i}": (10, 9) for i in range(50)})
        monitor.on_window_close(0, window)
        score = monitor.on_window_close(1, window)
        assert score.subnets == 8

    def test_cap_zero_sketches_everything(self):
        monitor = CensusDriftMonitor(max_subnets_per_window=0)
        window = _window({f"s{i}": (10, 9) for i in range(50)})
        monitor.on_window_close(0, window)
        assert monitor.on_window_close(1, window).subnets == 50

    def test_history_is_bounded(self):
        monitor = CensusDriftMonitor(max_history=4)
        window = _window({"a": (10, 9)})
        for seq in range(10):
            monitor.on_window_close(seq, window)
        assert len(monitor.history) == 4
        assert monitor.history[-1].window_seq == 9

    def test_gauges_exported(self):
        reset_global_registry()
        try:
            monitor = CensusDriftMonitor()
            cellular = _window({f"s{i}": (10, 9) for i in range(20)})
            fixed = _window({f"s{i}": (10, 0) for i in range(20)})
            monitor.on_window_close(0, cellular)
            monitor.on_window_close(1, fixed)
            registry = global_registry()
            assert registry.get("census_ratio_psi").value > 0.25
            assert registry.get("census_churn_rate").value == 1.0
            assert registry.get("census_windows_scored_total").value == 1
        finally:
            reset_global_registry()

    def test_summary_payload(self):
        monitor = CensusDriftMonitor()
        window = _window({"a": (10, 9), "b": (10, 1)})
        monitor.on_window_close(0, window)
        monitor.on_window_close(1, window)
        summary = monitor.summary()
        assert summary["baseline_windows"] == 1
        assert summary["windows_scored"] == 1
        assert summary["last"]["window"] == 1
        assert summary["recent_psi"] == [0.0]

    def test_summary_before_scoring(self):
        summary = CensusDriftMonitor().summary()
        assert summary["last"] is None
        assert summary["windows_scored"] == 0


class TestStreamIntegration:
    def test_attach_monitor_scores_closed_windows(self, beacon_hits):
        from repro.stream import StreamEngine, WindowPolicy

        engine = StreamEngine(policy=WindowPolicy(window_events=2000))
        monitor = CensusDriftMonitor()
        engine.attach_monitor(monitor)
        engine.ingest_many(beacon_hits[:10000])
        assert engine.windows_advanced >= 3
        # First close fed the baseline; the rest were scored.
        assert monitor.windows_scored == engine.windows_advanced - 1
        assert monitor.last_score is not None

    def test_detach_monitor(self, beacon_hits):
        from repro.stream import StreamEngine, WindowPolicy

        engine = StreamEngine(policy=WindowPolicy(window_events=2000))
        monitor = CensusDriftMonitor()
        engine.attach_monitor(monitor)
        engine.attach_monitor(None)
        engine.ingest_many(beacon_hits[:5000])
        assert monitor.windows_scored == 0
        assert monitor._baseline_seen == 0

    def test_snapshot_resume_drops_monitor(self, beacon_hits, tmp_path):
        from repro.stream import StreamEngine, WindowPolicy

        engine = StreamEngine(policy=WindowPolicy(window_events=2000))
        engine.attach_monitor(CensusDriftMonitor())
        engine.ingest_many(beacon_hits[:3000])
        path = engine.save_snapshot(tmp_path / "snap.json")
        resumed = StreamEngine.load_snapshot(path)
        assert resumed.monitor is None
        assert resumed.state.on_advance is None

    def test_window_lag_gauge_tracks_open_fill(self, beacon_hits, tmp_path):
        from repro.stream import StreamEngine, WindowPolicy

        reset_global_registry()
        try:
            engine = StreamEngine(policy=WindowPolicy(window_events=2000))
            engine.ingest_many(beacon_hits[:3000])
            # Snapshots flush the live gauges; afterwards the lag gauge
            # reflects the open window's fill exactly.
            engine.save_snapshot(tmp_path / "snap.json")
            lag = global_registry().get("stream_window_lag_events")
            assert lag is not None
            assert lag.value == engine.state.window_fill
        finally:
            reset_global_registry()


class TestBatchTwin:
    def test_ratio_distribution_shift_on_records(self):
        @dataclass
        class _Record:
            ratio: float

        before = [_Record(0.02)] * 50 + [_Record(0.98)] * 50
        after = [_Record(0.98)] * 100
        psi, ks = ratio_distribution_shift(before, after)
        assert psi > 0.25
        assert ks == pytest.approx(0.5)

    def test_drift_score_verdicts(self):
        from repro.evolution import DriftScore

        assert DriftScore(psi=0.05, ks=0.1).verdict == "stable"
        assert DriftScore(psi=0.15, ks=0.2).verdict == "moderate"
        assert DriftScore(psi=0.30, ks=0.4).verdict == "major"
        assert DriftScore(psi=0.30, ks=0.4).to_dict()["verdict"] == "major"

    def test_monthly_census_drift_scores(self, lab):
        from repro.evolution import MonthlyCensus, snapshot_distribution_shift

        classification = lab.result.classification
        census = MonthlyCensus(
            months=[0, 1],
            classifications={0: classification, 1: classification},
            demands={0: lab.demand, 1: lab.demand},
        )
        scores = census.drift_scores()
        assert len(scores) == 1
        assert scores[0].psi == pytest.approx(0.0)
        assert scores[0].verdict == "stable"
        same = snapshot_distribution_shift(classification, classification)
        assert same.ks == pytest.approx(0.0)
