"""Cross-layer instrumentation lands on the shared registry/tracer.

Each hot path -- ingestion, the dataset cache, the shard executor, the
experiment guard, the stream engine, the batch lab -- is asserted to
record the documented metrics and spans on the *process-global*
observability state, which is what ``--metrics-out``/``--trace-out``
export.
"""

from __future__ import annotations

import io
import json
import os
import random
import signal

import pytest

from repro.cdn.logs import BeaconHit, read_jsonl, write_jsonl
from repro.datasets.beacon_dataset import BeaconDataset, SubnetBeaconCounts
from repro.datasets.demand_dataset import DemandDataset, SubnetDemand
from repro.net.prefix import Prefix
from repro.obs import observed_command
from repro.obs.metrics import (
    global_registry,
    parse_prometheus_text,
    reset_global_registry,
    set_enabled,
)
from repro.obs.trace import get_tracer, reset_tracer, span
from repro.parallel.cache import DatasetCache
from repro.parallel.executor import ShardExecutor, ShardPlan
from repro.runtime.guard import GuardConfig, TransientError, run_guarded
from repro.runtime.policies import IngestPolicy
from repro.runtime.quarantine import QuarantineSink
from repro.stream import StreamEngine, WindowPolicy


@pytest.fixture(autouse=True)
def _fresh_obs_state():
    set_enabled(True)
    reset_global_registry()
    reset_tracer()
    yield
    set_enabled(True)
    reset_global_registry()
    reset_tracer()


def _value(name: str):
    return global_registry().get(name).value


def _span_names():
    return [sp.name for sp in get_tracer().spans()]


# ---- ingestion --------------------------------------------------------------


def _hit_jsonl(beacon_hits, count: int) -> str:
    buffer = io.StringIO()
    write_jsonl(beacon_hits[:count], buffer)
    return buffer.getvalue()


class TestIngestCounters:
    def test_skip_policy_counts_lines_and_rejections(self, beacon_hits):
        text = _hit_jsonl(beacon_hits, 10) + "not json\n{\"half\": 1}\n"
        policy = IngestPolicy.skip()
        rows = list(read_jsonl(io.StringIO(text), BeaconHit, policy=policy))
        assert len(rows) == 10
        assert _value("ingest_lines_total") == 12
        assert _value("ingest_rejected_total") == 2
        assert _value("ingest_quarantined_total") == 0

    def test_quarantined_lines_bump_their_own_counter(self, beacon_hits):
        text = _hit_jsonl(beacon_hits, 5) + "garbage\n"
        sink = QuarantineSink(io.StringIO())
        policy = IngestPolicy.quarantine(sink)
        list(read_jsonl(io.StringIO(text), BeaconHit, policy=policy))
        assert _value("ingest_quarantined_total") == 1
        assert _value("ingest_rejected_total") == 1

    def test_closed_generator_still_flushes_its_tail_batch(self, beacon_hits):
        # Accepted lines are batched; a generator abandoned mid-stream
        # must flush what it counted from its ``finally`` block.
        text = _hit_jsonl(beacon_hits, 20)
        policy = IngestPolicy.skip()
        stream = read_jsonl(io.StringIO(text), BeaconHit, policy=policy)
        for _ in range(7):
            next(stream)
        stream.close()
        assert _value("ingest_lines_total") == 7


# ---- dataset cache ----------------------------------------------------------


def _tiny_datasets():
    rng = random.Random(20260806)
    beacons = BeaconDataset(month="2016-12")
    demand = DemandDataset(window_days=7)
    for _ in range(40):
        prefix = Prefix(4, rng.randrange(1 << 24) << 8, 24)
        asn = rng.randrange(1, 50)
        api = rng.randrange(1, 20)
        beacons.add_counts(
            SubnetBeaconCounts(
                prefix, asn, "US",
                hits=api + rng.randrange(0, 30),
                api_hits=api,
                cellular_hits=rng.randrange(0, api + 1),
            )
        )
        demand._add(SubnetDemand(prefix, asn, "US", rng.random()))
    return beacons, demand


class TestCacheMetrics:
    PARAMS = {"seed": 1, "scale": 0.001, "note": "obs"}

    def test_miss_store_hit_eviction_counters(self, tmp_path):
        cache = DatasetCache(tmp_path / "cache")
        beacons, demand = _tiny_datasets()
        key = cache.key_for(self.PARAMS)

        assert cache.fetch(key) is None
        assert _value("dataset_cache_misses_total") == 1

        cache.store(key, beacons, demand, shards=2, params=self.PARAMS)
        assert _value("dataset_cache_stored_bytes_total") > 0

        assert cache.fetch(key) is not None
        assert _value("dataset_cache_hits_total") == 1

        other = {**self.PARAMS, "seed": 2}
        cache.store(cache.key_for(other), beacons, demand, params=other)
        evicted = cache.prune(max_entries=1)
        assert len(evicted) == 1
        assert _value("dataset_cache_evictions_total") == 1

    def test_corruption_counts_as_corruption_and_miss(self, tmp_path):
        cache = DatasetCache(tmp_path / "cache")
        beacons, demand = _tiny_datasets()
        key = cache.key_for(self.PARAMS)
        entry = cache.store(key, beacons, demand, params=self.PARAMS)
        with open(entry.beacon_shards[0][0], "w") as stream:
            stream.write("{}")
        assert cache.fetch(key) is None
        assert _value("dataset_cache_corruptions_total") == 1
        assert _value("dataset_cache_misses_total") == 1


# ---- shard executor ---------------------------------------------------------


def _square(x: int) -> int:
    return x * x


class TestExecutorObservation:
    def test_serial_map_records_metrics_and_spans(self):
        executor = ShardExecutor(ShardPlan.plan(workers=1, shards=3))
        with span("stage.test") as stage:
            timed = executor.map(_square, [1, 2, 3])
        assert [result for _secs, result in timed] == [1, 4, 9]
        assert _value("shards_executed_total") == 3
        registry = global_registry()
        assert registry.get("shard_wall_seconds").count == 3
        assert registry.get("shard_queue_wait_seconds").count == 3
        shard_spans = [
            sp for sp in get_tracer().spans() if sp.name == "shard.square"
        ]
        assert [sp.attributes["shard"] for sp in shard_spans] == [0, 1, 2]
        assert all(sp.parent_id == stage.span_id for sp in shard_spans)

    def test_process_pool_timings_reach_the_parent_registry(self):
        executor = ShardExecutor(
            ShardPlan.plan(workers=2, shards=2, force_processes=True)
        )
        executor.map(_square, [3, 4])
        assert _value("shards_executed_total") == 2
        # Worker-side perf_counter readings are comparable with the
        # parent's submit reading, so queue wait is never negative.
        hist = global_registry().get("shard_queue_wait_seconds")
        assert hist.count == 2
        assert hist.total >= 0.0


# ---- experiment guard -------------------------------------------------------


class TestGuardTelemetry:
    def test_retries_and_success_are_counted_and_spanned(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("blip")
            return "done"

        outcome = run_guarded(
            "exp-1", flaky, GuardConfig(retries=3, backoff_s=0.001)
        )
        assert outcome.ok and outcome.attempts == 3
        assert _value("experiments_total") == 1
        assert _value("experiment_retries_total") == 2
        assert _value("experiment_failures_total") == 0
        (sp,) = [
            s for s in get_tracer().spans() if s.name == "experiment.run"
        ]
        assert sp.attributes["experiment"] == "exp-1"
        assert sp.attributes["attempts"] == 3
        assert sp.attributes["status"] == "ok"

    def test_failures_bump_the_failure_counter(self):
        outcome = run_guarded("exp-2", lambda: 1 / 0)
        assert outcome.is_failure
        assert _value("experiment_failures_total") == 1
        (sp,) = [
            s for s in get_tracer().spans() if s.name == "experiment.run"
        ]
        assert sp.attributes["status"] == "failed"


# ---- stream engine ----------------------------------------------------------


class TestStreamTelemetry:
    def test_events_flush_at_window_close_granularity(self, beacon_hits):
        engine = StreamEngine(policy=WindowPolicy(window_events=1000))
        engine.ingest_many(beacon_hits[:2500])
        # Only the two closed windows' events have been flushed.
        assert _value("stream_events_total") == 2000
        assert _value("stream_window_advances_total") == 2

    def test_snapshot_flushes_the_open_window_and_times_itself(
        self, beacon_hits, tmp_path
    ):
        engine = StreamEngine(policy=WindowPolicy(window_events=1000))
        engine.ingest_many(beacon_hits[:2500])
        engine.save_snapshot(tmp_path / "snap.json")
        assert _value("stream_events_total") == 2500
        registry = global_registry()
        assert registry.get("stream_snapshot_seconds").count == 1
        assert (
            registry.get("stream_tracked_subnets").value
            == engine.subnet_count()
        )

    def test_resumed_engines_do_not_recount_snapshot_events(
        self, beacon_hits, tmp_path
    ):
        engine = StreamEngine(policy=WindowPolicy(window_events=1000))
        engine.ingest_many(beacon_hits[:1500])
        path = engine.save_snapshot(tmp_path / "snap.json")
        reset_global_registry()
        resumed = StreamEngine.load_snapshot(path)
        resumed.ingest_many(beacon_hits[1500:2000])
        resumed.save_snapshot(path)
        assert _value("stream_events_total") == 500


# ---- observed_command -------------------------------------------------------


class TestObservedCommand:
    def test_dumps_metrics_and_trace_on_success(self, tmp_path):
        metrics_out = tmp_path / "m.prom"
        trace_out = tmp_path / "t.json"
        with observed_command(
            "demo", metrics_out=metrics_out, trace_out=trace_out
        ) as run:
            global_registry().counter("demo_total", "demo").inc(4)
            with span("demo.step"):
                pass
        parsed = parse_prometheus_text(metrics_out.read_text())
        samples = {
            name: value
            for name, _labels, value in parsed["demo_total"]["samples"]
        }
        assert samples["demo_total"] == 4
        trace = json.loads(trace_out.read_text())
        names = [event["name"] for event in trace["traceEvents"]]
        assert "cellspot.demo" in names
        assert "demo.step" in names
        assert trace["otherData"]["trace_id"] == run.trace_id

    def test_dumps_telemetry_even_when_the_body_raises(self, tmp_path):
        metrics_out = tmp_path / "m.prom"
        trace_out = tmp_path / "t.json"
        with pytest.raises(RuntimeError):
            with observed_command(
                "demo", metrics_out=metrics_out, trace_out=trace_out
            ):
                global_registry().counter("partial_total").inc()
                raise RuntimeError("boom")
        assert "partial_total 1" in metrics_out.read_text()
        trace = json.loads(trace_out.read_text())
        root = next(
            event for event in trace["traceEvents"]
            if event["name"] == "cellspot.demo"
        )
        assert root["args"]["error"] == "RuntimeError"

    def test_fresh_registry_and_tracer_per_command(self):
        global_registry().counter("stale_total").inc()
        with observed_command("demo") as run:
            assert "stale_total" not in run.registry.names()
            assert len(run.tracer) == 0

    @pytest.mark.skipif(
        not hasattr(signal, "SIGUSR1"), reason="no SIGUSR1 on this platform"
    )
    def test_sigusr1_dumps_mid_run(self, tmp_path):
        metrics_out = tmp_path / "m.prom"
        before = signal.getsignal(signal.SIGUSR1)
        with observed_command("demo", metrics_out=metrics_out):
            during = signal.getsignal(signal.SIGUSR1)
            global_registry().counter("live_total").inc(2)
            os.kill(os.getpid(), signal.SIGUSR1)
            assert metrics_out.exists()
            assert "live_total 2" in metrics_out.read_text()
        # The dump handler is swapped out again after the command
        # (back to whatever was installed before, or SIG_DFL).
        after = signal.getsignal(signal.SIGUSR1)
        assert after is not during
        assert after in (before, signal.SIG_DFL)

    @pytest.mark.skipif(
        not hasattr(signal, "SIGUSR1"), reason="no SIGUSR1 on this platform"
    )
    def test_sigusr1_dump_racing_command_exit_stays_atomic(self, tmp_path):
        """A dump signal landing during command exit must never corrupt.

        The handler and the exit path both write ``metrics_out`` /
        ``trace_out`` through tmp-then-rename; a background thread
        hammers SIGUSR1 (delivered to the main thread between
        bytecodes) while the context manager unwinds, so handler dumps
        interleave with the final exit dump.  Whatever interleaving
        happens, both artifacts parse and no orphaned ``*.tmp`` files
        survive.
        """
        import threading
        import time

        metrics_out = tmp_path / "m.json"
        trace_out = tmp_path / "t.json"
        stop = threading.Event()

        def hammer():
            # Bounded burst: an unbounded hammer can livelock the main
            # thread -- each Python-level handler dump takes longer
            # than a sub-millisecond inter-signal gap, so handlers
            # re-enter back to back and the context exit that would
            # stop the hammer never runs.  A fixed signal budget still
            # straddles the unwind while guaranteeing forward progress.
            for _ in range(40):
                if stop.is_set():
                    break
                os.kill(os.getpid(), signal.SIGUSR1)
                time.sleep(0.002)

        thread = threading.Thread(target=hammer, daemon=True)
        # Park a benign outer handler: when observed_command restores
        # the previous handler on exit, any hammer signal still in
        # flight must not hit SIG_DFL (whose default action is fatal).
        outer = signal.signal(signal.SIGUSR1, lambda *_args: None)
        try:
            with observed_command(
                "demo", metrics_out=metrics_out, trace_out=trace_out
            ):
                global_registry().counter("raced_total").inc(7)
                thread.start()
                # Give the hammer a head start so signals straddle
                # the context-manager unwind below.
                time.sleep(0.02)
            stop.set()
            thread.join(timeout=5.0)
        finally:
            stop.set()
            signal.signal(signal.SIGUSR1, outer)
        # Both artifacts are valid, complete documents.
        metrics = json.loads(metrics_out.read_text())
        assert metrics["raced_total"]["value"] == 7
        trace = json.loads(trace_out.read_text())
        assert any(
            event["name"] == "cellspot.demo"
            for event in trace["traceEvents"]
        )
        # Tmp-then-rename leaves no partial files behind.
        leftovers = [
            p.name for p in tmp_path.iterdir()
            if p.name not in ("m.json", "t.json")
        ]
        assert leftovers == []


# ---- batch lab + sharded pipeline ------------------------------------------


class TestPipelineSpans:
    def test_sharded_run_produces_the_documented_span_tree(self):
        from repro.lab import Lab

        lab = Lab.create(scale=0.002, seed=3, background_as_count=200,
                         workers=2, shards=2)
        lab.result
        names = _span_names()
        for expected in (
            "dataset.generate_beacons",
            "dataset.generate_demand",
            "stage.partition",
            "stage.spot_shards",
            "stage.merge",
            "stage.demand_map",
            "stage.as_identification",
            "stage.operator_profiles",
            "pipeline.run",
        ):
            assert expected in names, expected
        shard_spans = [
            sp for sp in get_tracer().spans()
            if sp.name == "shard.spot_shard"
        ]
        assert len(shard_spans) == 2
        assert _value("shards_executed_total") >= 2
        # Shards nest under the spot_shards stage, which nests under
        # the pipeline.run span.
        by_id = {sp.span_id: sp for sp in get_tracer().spans()}
        stage = by_id[shard_spans[0].parent_id]
        assert stage.name == "stage.spot_shards"
        assert by_id[stage.parent_id].name == "pipeline.run"
