"""Unified metrics layer: thread safety, exports, global registry."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.metrics import (
    BATCH_STAGE_BUCKETS,
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MeterCache,
    MetricsRegistry,
    NULL_METRIC,
    PrometheusFormatError,
    global_registry,
    instrument,
    metrics_enabled,
    parse_prometheus_text,
    reset_global_registry,
    set_enabled,
)


@pytest.fixture(autouse=True)
def _fresh_global_state():
    """Every test gets its own global registry, observability on."""
    set_enabled(True)
    reset_global_registry()
    yield
    set_enabled(True)
    reset_global_registry()


class TestThreadSafety:
    def test_counter_increments_do_not_race(self):
        counter = Counter("c")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(10_000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000

    def test_histogram_observations_do_not_race(self):
        hist = Histogram("h", bounds=(0.5,))
        threads = [
            threading.Thread(
                target=lambda: [hist.observe(0.1) for _ in range(10_000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.count == 80_000
        assert hist.bucket_counts[0] == 80_000


class TestQuantileSentinels:
    """The documented edge-case contract (regression pin)."""

    def test_empty_histogram_returns_none_for_every_quantile(self):
        hist = Histogram("h", bounds=(0.1, 1.0))
        assert hist.quantile(0.5) is None
        assert hist.quantile(0.99) is None
        assert hist.quantile(1.0) is None

    def test_quantile_of_exactly_one_is_max_populated_bound(self):
        hist = Histogram("h", bounds=(0.1, 1.0, 10.0))
        hist.observe(0.05)
        hist.observe(0.7)
        assert hist.quantile(1.0) == 1.0

    def test_quantile_of_one_with_overflow_is_inf(self):
        hist = Histogram("h", bounds=(0.1,))
        hist.observe(0.05)
        hist.observe(99.0)
        assert hist.quantile(1.0) == float("inf")

    def test_quantile_of_one_never_underreports_from_float_error(self):
        # Many observations: a naive rank accumulation (0.999... * n)
        # can land one bucket short; q == 1.0 must short-circuit.
        hist = Histogram("h", bounds=(0.1, 1.0))
        for _ in range(1_000_000):
            hist.observe(0.05)
        hist.observe(0.5)
        assert hist.quantile(1.0) == 1.0

    def test_out_of_range_quantiles_rejected(self):
        hist = Histogram("h", bounds=(1.0,))
        with pytest.raises(ValueError):
            hist.quantile(0.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)


class TestBucketPresets:
    def test_single_definition_is_reexported_by_serve(self):
        from repro.serve import metrics as serve_metrics

        assert serve_metrics.DEFAULT_LATENCY_BUCKETS is DEFAULT_LATENCY_BUCKETS

    def test_default_latency_buckets_resolve_sub_millisecond(self):
        # The serving plane's p99 < 1ms SLO needs resolution *below*
        # the SLO bound: 10us floor, 750us as the last sub-ms edge,
        # and at least five edges strictly under 1ms.
        assert DEFAULT_LATENCY_BUCKETS[0] == 0.00001
        assert 0.00075 in DEFAULT_LATENCY_BUCKETS
        assert 1.0 == DEFAULT_LATENCY_BUCKETS[-1]
        sub_ms = [b for b in DEFAULT_LATENCY_BUCKETS if b < 0.001]
        assert len(sub_ms) >= 5
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_batch_stage_buckets_cover_seconds_scale(self):
        assert BATCH_STAGE_BUCKETS[0] == 0.001
        assert BATCH_STAGE_BUCKETS[-1] == 60.0
        assert list(BATCH_STAGE_BUCKETS) == sorted(BATCH_STAGE_BUCKETS)

    def test_count_buckets_cover_event_counts(self):
        assert COUNT_BUCKETS[0] == 1.0
        assert COUNT_BUCKETS[-1] == 10_000_000.0
        assert list(COUNT_BUCKETS) == sorted(COUNT_BUCKETS)


class TestExportSnapshots:
    """Exports are deep snapshots -- no aliasing of live state."""

    def test_mutating_export_does_not_corrupt_histogram(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", bounds=(0.1, 1.0))
        hist.observe(0.05)
        snapshot = registry.as_dict()
        snapshot["h"]["buckets"]["0.1"] = 999
        snapshot["h"]["count"] = 999
        again = registry.as_dict()
        assert again["h"]["buckets"]["0.1"] == 1
        assert again["h"]["count"] == 1
        assert hist.bucket_counts[0] == 1

    def test_bucket_lists_are_not_shared_references(self):
        hist = Histogram("h", bounds=(0.1,))
        hist.observe(0.05)
        export = hist.as_dict()
        export["buckets"].clear()
        assert hist.as_dict()["buckets"] == {"0.1": 1}

    def test_json_render_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        raw = json.loads(registry.render_json())
        assert raw["c"]["value"] == 3


class TestRegistry:
    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_exist_ok_returns_the_existing_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("x", exist_ok=True)
        second = registry.counter("x", exist_ok=True)
        assert first is second

    def test_exist_ok_still_rejects_kind_mismatch(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x", exist_ok=True)


class TestPrometheusExport:
    def test_render_parses_back(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs").inc(7)
        registry.gauge("depth", "queue depth").set(2.5)
        hist = registry.histogram("lat_seconds", "latency", bounds=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(50.0)
        parsed = parse_prometheus_text(registry.render_prometheus())
        assert parsed["jobs_total"]["type"] == "counter"
        samples = {
            name: value
            for name, _labels, value in parsed["lat_seconds"]["samples"]
        }
        assert samples["lat_seconds_count"] == 2
        # Buckets are cumulative and +Inf covers everything.
        bucket = {
            labels: value
            for name, labels, value in parsed["lat_seconds"]["samples"]
            if name == "lat_seconds_bucket"
        }
        assert bucket['le="0.1"'] == 1
        assert bucket['le="+Inf"'] == 2

    def test_every_metric_carries_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "the a counter")
        text = registry.render_prometheus()
        assert "# HELP a_total the a counter" in text
        assert "# TYPE a_total counter" in text

    def test_parser_rejects_duplicate_names(self):
        bad = (
            "# HELP x_total x\n# TYPE x_total counter\nx_total 1\n"
            "# HELP x_total x\n# TYPE x_total counter\nx_total 2\n"
        )
        with pytest.raises(PrometheusFormatError):
            parse_prometheus_text(bad)

    def test_parser_rejects_samples_without_declarations(self):
        with pytest.raises(PrometheusFormatError):
            parse_prometheus_text("mystery_total 1\n")

    def test_parser_rejects_bad_values(self):
        bad = "# HELP x x\n# TYPE x gauge\nx banana\n"
        with pytest.raises(PrometheusFormatError):
            parse_prometheus_text(bad)


class TestGlobalRegistry:
    def test_instrument_registers_on_the_global_registry(self):
        counter = instrument("counter", "things_total", "things")
        counter.inc(2)
        assert global_registry().get("things_total").value == 2

    def test_instrument_is_idempotent(self):
        first = instrument("counter", "things_total")
        second = instrument("counter", "things_total")
        assert first is second

    def test_disabled_instrumentation_is_a_null_metric(self):
        set_enabled(False)
        assert not metrics_enabled()
        metric = instrument("counter", "things_total")
        assert metric is NULL_METRIC
        metric.inc(5)  # no-op, no error
        set_enabled(True)
        assert "things_total" not in global_registry().names()

    def test_reset_swaps_the_registry(self):
        instrument("counter", "things_total").inc(1)
        fresh = reset_global_registry()
        assert "things_total" not in fresh.names()
        assert global_registry() is fresh


class TestMeterCache:
    def test_handles_survive_within_one_registry(self):
        cache = MeterCache(lambda: (instrument("counter", "c_total"),))
        (first,) = cache.resolve()
        (second,) = cache.resolve()
        assert first is second

    def test_cache_invalidates_on_registry_reset(self):
        cache = MeterCache(lambda: (instrument("counter", "c_total"),))
        (stale,) = cache.resolve()
        stale.inc(5)
        reset_global_registry()
        (fresh,) = cache.resolve()
        assert fresh is not stale
        fresh.inc(1)
        assert global_registry().get("c_total").value == 1

    def test_cache_invalidates_on_enable_toggle(self):
        cache = MeterCache(lambda: (instrument("counter", "c_total"),))
        cache.resolve()
        set_enabled(False)
        (nulled,) = cache.resolve()
        assert nulled is NULL_METRIC
        set_enabled(True)
        (live,) = cache.resolve()
        assert live is not NULL_METRIC
