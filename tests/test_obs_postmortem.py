"""Distributed observability: span logs, federation, skew, postmortem."""

from __future__ import annotations

import json

import pytest

from repro.obs.alerts import AlertEngine, AlertRule, default_rules
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.postmortem import (
    build_postmortem,
    collect_spans,
    render_text,
    to_chrome_trace,
)
from repro.obs.timeseries import (
    MetricScraper,
    TimeSeriesStore,
    read_latest_sample,
    split_metric_tag,
    tag_metric,
)
from repro.obs.trace import SpanLog, read_span_log


class TestSpanLog:
    def test_record_roundtrip(self, tmp_path):
        log = SpanLog(tmp_path / "front", source="front")
        record = log.record(
            "front.request",
            "trace-1",
            started=10.0,
            duration=0.25,
            request_id="req-000000000001",
            outcome="ok",
        )
        assert record["src"] == "front"
        (read,) = read_span_log(tmp_path / "front")
        assert read["name"] == "front.request"
        assert read["tid"] == "trace-1"
        assert read["rid"] == "req-000000000001"
        assert read["mono"] == 10.0
        assert read["dur"] == 0.25
        assert read["attrs"] == {"outcome": "ok"}

    def test_parent_child_ids(self, tmp_path):
        log = SpanLog(tmp_path, source="worker-0")
        parent = log.record("worker.request", "t", started=0.0, duration=1.0)
        log.record(
            "worker.lpm",
            "t",
            started=0.1,
            duration=0.5,
            parent_id=parent["sid"],
        )
        records = {r["name"]: r for r in read_span_log(tmp_path)}
        assert records["worker.lpm"]["pid"] == records["worker.request"]["sid"]

    def test_span_ring_shares_directory_with_metric_ring(self, tmp_path):
        # spans-* and segment-* rings must not see each other's files.
        log = SpanLog(tmp_path, source="worker-0")
        log.record("a", "t", started=0.0, duration=0.1)
        store = TimeSeriesStore(tmp_path)
        store.append({"ts": 1.0, "m": {"x": ["c", 1]}})
        assert len(read_span_log(tmp_path)) == 1
        sample = read_latest_sample(tmp_path)
        assert sample["m"]["x"] == ["c", 1]


class TestFederationPrimitives:
    def test_read_latest_sample_skips_torn_tail(self, tmp_path):
        store = TimeSeriesStore(tmp_path)
        store.append({"ts": 1.0, "m": {"x": ["c", 1]}})
        store.append({"ts": 2.0, "m": {"x": ["c", 2]}})
        with store.active_segment.open("a") as stream:
            stream.write('{"ts": 3.0, "m": {"x"')  # torn final line
        sample = read_latest_sample(tmp_path)
        assert sample["ts"] == 2.0

    def test_read_latest_sample_empty_dir(self, tmp_path):
        assert read_latest_sample(tmp_path) is None

    def test_tag_metric_roundtrip(self):
        key = tag_metric("lat_seconds", worker="3")
        assert key == 'lat_seconds{worker="3"}'
        assert split_metric_tag(key) == ("lat_seconds", {"worker": "3"})
        assert split_metric_tag("plain") == ("plain", {})

    def test_scraper_source_and_enricher_merge(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("local_total", "local").inc(5)
        scraper = MetricScraper(
            TimeSeriesStore(tmp_path), registry=registry, source="front"
        )
        scraper.add_enricher(
            lambda: {tag_metric("remote_total", worker="0"): ["c", 9]}
        )
        sample = scraper.scrape_once(ts=50.0)
        assert sample["src"] == "front"
        assert sample["m"]["local_total"] == ["c", 5]
        assert sample["m"]['remote_total{worker="0"}'] == ["c", 9]
        # The stored copy carries the enriched keys too.
        stored = read_latest_sample(tmp_path)
        assert stored["m"]['remote_total{worker="0"}'] == ["c", 9]

    def test_raising_enricher_is_isolated(self, tmp_path):
        scraper = MetricScraper(
            TimeSeriesStore(tmp_path), registry=MetricsRegistry()
        )

        def boom():
            raise RuntimeError("federation down")

        scraper.add_enricher(boom)
        scraper.scrape_once(ts=1.0)
        assert scraper.enricher_errors == 1
        assert scraper.samples_taken == 1


class TestWorkerLatencySkew:
    def _engine(self, for_s: float = 0.0) -> AlertEngine:
        rule = AlertRule(
            name="skew",
            kind="skew",
            metric="lat_seconds",
            q=0.99,
            op=">",
            threshold=4.0,
            for_s=for_s,
        )
        return AlertEngine([rule])

    @staticmethod
    def _sample(ts: float, p99s) -> dict:
        return {
            "ts": ts,
            "m": {
                tag_metric("lat_seconds", worker=str(slot)): [
                    "h", 100, 1.0, p99 / 2, p99
                ]
                for slot, p99 in enumerate(p99s)
            },
        }

    def test_fires_on_divergent_worker_and_resolves(self):
        engine = self._engine()
        engine.observe(self._sample(1.0, [0.001, 0.001, 0.1]))
        (state,) = engine.snapshot()
        assert state["state"] == "firing"
        assert state["value"] == pytest.approx(100.0)
        engine.observe(self._sample(2.0, [0.001, 0.001, 0.001]))
        (state,) = engine.snapshot()
        assert state["state"] == "ok"

    def test_single_worker_is_no_data(self):
        engine = self._engine()
        engine.observe(self._sample(1.0, [0.1]))
        (state,) = engine.snapshot()
        assert state["state"] == "ok"
        assert state["value"] is None

    def test_for_s_holds_before_firing(self):
        engine = self._engine(for_s=1.0)
        engine.observe(self._sample(1.0, [0.001, 0.1]))
        assert engine.snapshot()[0]["state"] == "pending"
        engine.observe(self._sample(2.5, [0.001, 0.1]))
        assert engine.snapshot()[0]["state"] == "firing"

    def test_baseline_excludes_the_worst(self):
        # Two workers: the ratio is slow/fast, not capped by a median
        # that includes the outlier itself.
        engine = self._engine()
        engine.observe(self._sample(1.0, [0.01, 0.02]))
        assert engine.snapshot()[0]["value"] == pytest.approx(2.0)

    def test_default_rules_include_worker_latency_skew(self):
        rules = {rule.name: rule for rule in default_rules()}
        skew = rules["worker-latency-skew"]
        assert skew.kind == "skew"
        assert skew.metric == "scale_worker_query_latency_seconds"
        assert skew.for_s > 0


@pytest.fixture()
def obs_dir(tmp_path):
    """A synthetic obs directory: front + worker spans, ring, artifact."""
    obs = tmp_path / "obs"
    front = SpanLog(obs / "front", source="front")
    parent = front.record(
        "front.request",
        "trace-A",
        started=100.0,
        duration=0.5,
        request_id="req-000000000001",
    )
    worker = SpanLog(obs / "worker-0", source="worker-0")
    worker.record(
        "worker.request",
        "trace-A",
        started=100.1,
        duration=0.3,
        parent_id=parent["sid"],
        request_id="req-000000000001",
        slot=0,
    )
    builder = SpanLog(obs / "builder", source="builder")
    builder.record(
        "builder.publish", "trace-A", started=99.0, duration=0.2, generation=4
    )
    # A second, minority trace: must not hijack the dominant join.
    worker.record("worker.request", "trace-B", started=50.0, duration=0.1)
    recorder = FlightRecorder(obs / "worker-0.fr", slots=4)
    recorder.begin(b'{"op":"query","q":"10.0.0.9"}', "req-000000000001", 4)
    recorder.close()
    (obs / "postmortem-worker0-0001.json").write_text(
        json.dumps(
            {
                "kind": "worker-death",
                "slot": 0,
                "pid": 4242,
                "reason": "process exited (exit -9)",
                "dying_request": {
                    "rid": "req-000000000001",
                    "outcome": "inflight",
                    "line": '{"op":"query","q":"10.0.0.9"}',
                },
            }
        )
    )
    return obs


class TestBuildPostmortem:
    def test_joins_dominant_trace_across_sources(self, obs_dir):
        postmortem = build_postmortem(obs_dir)
        assert postmortem["trace_id"] == "trace-A"
        assert postmortem["trace_ids"] == ["trace-A", "trace-B"]
        assert postmortem["sources"] == ["builder", "front", "worker-0"]
        assert [s["name"] for s in postmortem["spans"]] == [
            "builder.publish", "front.request", "worker.request"
        ]  # sorted by monotonic start
        assert len(postmortem["artifacts"]) == 1
        assert "worker-0" in postmortem["rings"]

    def test_explicit_trace_id(self, obs_dir):
        postmortem = build_postmortem(obs_dir, trace_id="trace-B")
        assert [s["tid"] for s in postmortem["spans"]] == ["trace-B"]

    def test_collect_spans_stamps_source(self, obs_dir):
        sources = {span["src"] for span in collect_spans(obs_dir)}
        assert sources == {"builder", "front", "worker-0"}

    def test_empty_directory(self, tmp_path):
        postmortem = build_postmortem(tmp_path)
        assert postmortem["spans"] == []
        assert postmortem["trace_id"] is None

    def test_render_text_names_dying_request(self, obs_dir):
        text = render_text(build_postmortem(obs_dir))
        assert "postmortem: trace trace-A -- 3 span(s)" in text
        assert "builder, front, worker-0" in text
        assert "rid=req-000000000001" in text
        assert "dying request rid=req-000000000001" in text
        assert "flight ring worker-0: 1 record(s), 1 in flight" in text

    def test_render_text_limit(self, obs_dir):
        text = render_text(build_postmortem(obs_dir), limit=1)
        assert "... 2 more span(s)" in text

    def test_chrome_trace_one_lane_per_source(self, obs_dir):
        payload = to_chrome_trace(build_postmortem(obs_dir))
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta} == {
            "builder", "front", "worker-0"
        }
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 3
        assert all(e["ts"] >= 0 for e in spans)  # relative to first span
        assert {e["pid"] for e in spans} <= {e["pid"] for e in meta}


class TestPostmortemCli:
    def test_cli_joins_and_exports_chrome(self, obs_dir, tmp_path, capsys):
        from repro.cli import main

        chrome = tmp_path / "pm-trace.json"
        code = main(
            ["postmortem", str(obs_dir), "--chrome-out", str(chrome)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "postmortem: trace trace-A" in out
        payload = json.loads(chrome.read_text())
        assert payload["otherData"]["trace_id"] == "trace-A"

    def test_cli_descends_into_obs_subdirectory(self, obs_dir, capsys):
        from repro.cli import main

        assert main(["postmortem", str(obs_dir.parent)]) == 0
        assert "trace-A" in capsys.readouterr().out

    def test_cli_empty_dir_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["postmortem", str(tmp_path)]) == 1
        assert "no spans" in capsys.readouterr().err
