"""Opt-in cProfile hooks: reports, atomicity, failure behavior."""

from __future__ import annotations

import cProfile

import pytest

from repro.obs.profile import DEFAULT_TOP_N, maybe_profile, write_profile_report


def _busy_work(n: int = 2_000) -> int:
    return sum(i * i for i in range(n))


class TestMaybeProfile:
    def test_disabled_yields_none_and_writes_nothing(self, tmp_path):
        out = tmp_path / "profile.txt"
        with maybe_profile(False, out) as profiler:
            assert profiler is None
            _busy_work()
        assert not out.exists()

    def test_enabled_writes_report_and_pstats(self, tmp_path):
        out = tmp_path / "profile.txt"
        with maybe_profile(True, out) as profiler:
            assert isinstance(profiler, cProfile.Profile)
            _busy_work()
        text = out.read_text()
        assert f"top {DEFAULT_TOP_N} functions by cumulative time" in text
        assert "_busy_work" in text
        assert (tmp_path / "profile.txt.pstats").exists()

    def test_report_is_written_even_when_the_body_raises(self, tmp_path):
        out = tmp_path / "profile.txt"
        with pytest.raises(RuntimeError):
            with maybe_profile(True, out):
                _busy_work()
                raise RuntimeError("boom")
        assert "_busy_work" in out.read_text()

    def test_enabled_without_a_path_profiles_but_writes_nothing(
        self, tmp_path
    ):
        with maybe_profile(True, None) as profiler:
            _busy_work()
        assert profiler is not None
        assert list(tmp_path.iterdir()) == []


class TestWriteProfileReport:
    def test_top_n_is_respected(self, tmp_path):
        profiler = cProfile.Profile()
        profiler.enable()
        _busy_work()
        profiler.disable()
        out = write_profile_report(profiler, tmp_path / "p.txt", top_n=5)
        assert "top 5 functions by cumulative time" in out.read_text()

    def test_no_stale_temp_files_left_behind(self, tmp_path):
        profiler = cProfile.Profile()
        profiler.enable()
        _busy_work()
        profiler.disable()
        write_profile_report(profiler, tmp_path / "p.txt")
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["p.txt", "p.txt.pstats"]
