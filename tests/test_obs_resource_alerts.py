"""Resource alerting: the memory-budget and rss-growth rule kinds.

Unit coverage drives the rule machinery with synthetic samples; the
end-to-end class then proves the whole chain on a *real* leak -- a
``LeakDrill`` attached to the stream engine retains page-touched
ballast every window close, the ``ResourceSampler`` reads the climbing
RSS out of ``/proc``, the scraper feeds a live ``AlertEngine``, and
both new rules fire and resolve.  The post-mortem story (alert log
episodes + time-series reader) must agree with the live one, same as
tests/test_obs_e2e_alerting.py does for drift.
"""

from __future__ import annotations

import itertools
from pathlib import Path

import pytest

from repro.obs.alerts import (
    STATE_FIRING,
    STATE_OK,
    STATE_PENDING,
    AlertEngine,
    AlertRule,
    AlertRuleError,
    _sample_value,
    default_rules,
    episodes,
    read_alert_log,
)
from repro.obs.metrics import reset_global_registry
from repro.obs.resources import LeakDrill, ResourceSampler, read_statm
from repro.obs.timeseries import (
    MetricScraper,
    TimeSeriesReader,
    TimeSeriesStore,
)
from repro.stream import StreamEngine, WindowPolicy

MIB = 1024 * 1024

_HAS_PROC = Path("/proc/self/statm").exists()


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_global_registry()
    yield
    reset_global_registry()


def _growth_rule(**overrides) -> AlertRule:
    kwargs = dict(
        name="growth", kind="rss_growth", metric="process_rss_bytes",
        threshold=10.0, window_s=6.0, for_s=0.0,
    )
    kwargs.update(overrides)
    return AlertRule(**kwargs)


def _sample(ts: float, **series) -> dict:
    return {"ts": ts, "m": {k: ("g", float(v)) for k, v in series.items()}}


class TestDefaultRules:
    def test_pack_includes_resource_rules(self):
        rules = default_rules()
        assert len(rules) == 11
        by_name = {rule.name: rule for rule in rules}
        assert by_name["memory-budget"].kind == "memory_budget"
        assert by_name["memory-budget"].percent == 85.0
        assert by_name["rss-growth"].kind == "rss_growth"
        assert by_name["rss-growth"].window_s == 10.0
        # Every rule renders a human condition string.
        for rule in rules:
            assert rule.metric in rule.condition()

    def test_resource_rules_watch_the_sampler_gauge(self):
        for rule in default_rules()[-2:]:
            assert rule.metric == "process_rss_bytes"


class TestMemoryBudgetRule:
    def test_percent_out_of_range_rejected(self):
        for bad in (0.0, -5.0, 101.0):
            with pytest.raises(AlertRuleError):
                AlertRule(
                    name="b", kind="memory_budget",
                    metric="process_rss_bytes", threshold=1.0, percent=bad,
                )

    def test_percent_only_on_memory_budget(self):
        with pytest.raises(AlertRuleError):
            AlertRule(
                name="b", kind="gauge", metric="x",
                threshold=1.0, percent=50.0,
            )

    def test_needs_positive_threshold_without_percent(self):
        with pytest.raises(AlertRuleError):
            AlertRule(
                name="b", kind="memory_budget", metric="x", threshold=0.0,
            )

    def test_absolute_threshold_preserved(self):
        rule = AlertRule(
            name="b", kind="memory_budget", metric="x", threshold=123.0,
        )
        assert rule.threshold == 123.0

    @pytest.mark.skipif(
        not Path("/proc/meminfo").exists(), reason="needs /proc/meminfo"
    )
    def test_percent_resolves_against_total_memory(self):
        from repro.obs.resources import total_memory_bytes

        total = total_memory_bytes()
        assert total is not None
        rule = AlertRule(
            name="b", kind="memory_budget", metric="x",
            threshold=1.0, percent=50.0,
        )
        assert rule.threshold == pytest.approx(total * 0.5)
        assert "% of mem" in rule.condition()

    def test_value_is_worst_series_across_workers(self):
        rule = AlertRule(
            name="b", kind="memory_budget", metric="process_rss_bytes",
            threshold=1.0,
        )
        sample = _sample(1.0, process_rss_bytes=100.0)
        sample["m"]['process_rss_bytes{worker="0"}'] = ("g", 50.0)
        sample["m"]['process_rss_bytes{worker="1"}'] = ("g", 900.0)
        assert _sample_value(rule, sample, None) == 900.0

    def test_no_series_is_no_data(self):
        rule = AlertRule(
            name="b", kind="memory_budget", metric="process_rss_bytes",
            threshold=1.0,
        )
        assert _sample_value(rule, _sample(1.0, other=5.0), None) is None

    def test_fires_and_resolves_through_engine(self):
        rule = AlertRule(
            name="budget", kind="memory_budget",
            metric="process_rss_bytes", threshold=100.0, for_s=2.0,
        )
        engine = AlertEngine([rule])
        for ts, value in enumerate([50, 60, 150, 160, 170, 180, 40, 30]):
            engine.observe(_sample(float(ts), process_rss_bytes=value))
        transitions = [(e["from"], e["to"]) for e in engine.events]
        assert transitions == [
            (STATE_OK, STATE_PENDING),
            (STATE_PENDING, STATE_FIRING),
            (STATE_FIRING, STATE_OK),
        ]


class TestRssGrowthRule:
    def test_window_must_be_positive(self):
        with pytest.raises(AlertRuleError):
            _growth_rule(window_s=0.0)

    def test_from_dict_roundtrip(self):
        raw = {
            "name": "growth", "kind": "rss_growth",
            "metric": "process_rss_bytes", "threshold": 1024.0,
            "window_s": 12.5, "for_s": 3.0,
        }
        rule = AlertRule.from_dict(raw)
        assert rule.window_s == 12.5
        assert rule.for_s == 3.0
        assert "slope" in rule.condition()
        with pytest.raises(AlertRuleError):
            AlertRule.from_dict({**raw, "bogus_key": 1})

    def test_steady_climb_fires(self):
        engine = AlertEngine([_growth_rule()])
        # 100 bytes/s, one sample per second: breaches once half the
        # 6s window of evidence has accumulated.
        for ts in range(10):
            engine.observe(
                _sample(float(ts), process_rss_bytes=1000 + 100 * ts)
            )
        transitions = [(e["from"], e["to"]) for e in engine.events]
        assert transitions == [(STATE_OK, STATE_FIRING)]

    def test_flat_rss_never_fires(self):
        engine = AlertEngine([_growth_rule()])
        for ts in range(12):
            engine.observe(_sample(float(ts), process_rss_bytes=5000))
        assert engine.events == []

    def test_reset_clears_history_and_resolves(self):
        engine = AlertEngine([_growth_rule()])
        ts = itertools.count()
        for _ in range(8):  # climb -> firing
            t = next(ts)
            engine.observe(_sample(float(t), process_rss_bytes=1000 + 100 * t))
        assert engine.states["growth"].state == STATE_FIRING
        # The drop itself clears the series history (reset-aware): no
        # negative slope, and no verdict until evidence re-accumulates.
        for _ in range(2):
            engine.observe(_sample(float(next(ts)), process_rss_bytes=500))
        assert engine.states["growth"].state == STATE_FIRING  # no data yet
        for _ in range(6):  # flat post-release samples rebuild the window
            engine.observe(_sample(float(next(ts)), process_rss_bytes=500))
        assert engine.states["growth"].state == STATE_OK
        transitions = [(e["from"], e["to"]) for e in engine.events]
        assert transitions == [
            (STATE_OK, STATE_FIRING),
            (STATE_FIRING, STATE_OK),
        ]

    def test_worst_series_wins_across_workers(self):
        engine = AlertEngine([_growth_rule()])
        for ts in range(10):
            sample = _sample(float(ts), process_rss_bytes=5000)
            sample["m"]['process_rss_bytes{worker="1"}'] = (
                "g", 1000.0 + 200.0 * ts
            )
            engine.observe(sample)
        assert engine.states["growth"].state == STATE_FIRING

    def test_for_s_gates_through_pending(self):
        engine = AlertEngine([_growth_rule(for_s=2.0)])
        for ts in range(10):
            engine.observe(
                _sample(float(ts), process_rss_bytes=1000 + 100 * ts)
            )
        transitions = [(e["from"], e["to"]) for e in engine.events]
        assert transitions == [
            (STATE_OK, STATE_PENDING),
            (STATE_PENDING, STATE_FIRING),
        ]


# ---------------------------------------------------------------------------
# End-to-end: a real leak through the real plane.
# ---------------------------------------------------------------------------

#: Events per stream window; small so windows (and scrapes) are cheap.
WINDOW = 200
#: Ballast retained per closed window during the leak phase.
DRILL_BYTES = 16 * MIB
#: Windows the drill leaks for before releasing everything.
DRILL_WINDOWS = 10

_SENTINEL_TRACE = "e2e-resource-trace"


@pytest.mark.skipif(not _HAS_PROC, reason="needs /proc for real RSS")
class TestEndToEndResourceAlerting:
    @pytest.fixture()
    def plane(self, tmp_path):
        """Engine + sampler + scraper + alert engine, fully wired."""
        store = TimeSeriesStore(tmp_path / "ts")
        scraper = MetricScraper(store, interval_s=60.0)  # manual scrapes
        sampler = ResourceSampler()
        sampler.attach(scraper)
        baseline = read_statm("/proc/self/statm")
        assert baseline is not None
        rules = [
            AlertRule(
                name="e2e-rss-growth", kind="rss_growth",
                metric="process_rss_bytes",
                threshold=4 * MIB,  # bytes/s; drill climbs ~16MiB/s
                window_s=6.0, for_s=2.0,
            ),
            AlertRule(
                name="e2e-memory-budget", kind="memory_budget",
                metric="process_rss_bytes",
                # Absolute budget pinned to this process: baseline plus
                # 40MiB, which the 160MiB drill blows through and the
                # release drops back under.
                threshold=float(baseline[0]) + 40 * MIB,
                for_s=2.0,
            ),
        ]
        alert_log = tmp_path / "alerts.jsonl"
        alerts = AlertEngine(
            rules, log_path=alert_log, trace_id=_SENTINEL_TRACE
        )
        scraper.subscribe(alerts.observe)
        engine = StreamEngine(policy=WindowPolicy(window_events=WINDOW))
        yield engine, scraper, alerts, sampler, tmp_path
        sampler.uninstall()

    def _run_leak(self, engine, scraper):
        """Stable -> drill leak -> release, one scrape per window close."""
        from tests.test_obs_e2e_alerting import _hit

        counter = itertools.count()
        clock = itertools.count(start=100)

        def feed(windows):
            closed = 0
            while closed < windows:
                n = next(counter)
                if engine.ingest(_hit(n % 20, n // 20, n % 3 == 0)):
                    scraper.scrape_once(ts=float(next(clock)))
                    closed += 1

        feed(8)  # stable baseline: flat RSS, both rules ok
        engine.leak_drill = LeakDrill(DRILL_BYTES, DRILL_WINDOWS)
        feed(DRILL_WINDOWS + 1)  # leak, then the release window
        feed(12)  # post-release: growth history rebuilds flat, budget clears

    def test_drill_fires_and_release_resolves(self, plane):
        engine, scraper, alerts, _sampler, tmp_path = plane
        self._run_leak(engine, scraper)

        assert engine.leak_drill.released

        by_rule = {}
        for event in alerts.events:
            by_rule.setdefault(event["rule"], []).append(
                (event["from"], event["to"])
            )
        assert by_rule["e2e-rss-growth"] == [
            (STATE_OK, STATE_PENDING),
            (STATE_PENDING, STATE_FIRING),
            (STATE_FIRING, STATE_OK),
        ]
        assert by_rule["e2e-memory-budget"] == [
            (STATE_OK, STATE_PENDING),
            (STATE_PENDING, STATE_FIRING),
            (STATE_FIRING, STATE_OK),
        ]
        assert all(e["trace_id"] == _SENTINEL_TRACE for e in alerts.events)

    def test_post_mortem_matches_live_engine(self, plane):
        engine, scraper, alerts, _sampler, tmp_path = plane
        self._run_leak(engine, scraper)

        events = read_alert_log(tmp_path / "alerts.jsonl")
        assert [
            (e["rule"], e["from"], e["to"]) for e in events
        ] == [
            (e["rule"], e["from"], e["to"]) for e in alerts.events
        ]
        eps = episodes(events)
        resolved = {
            ep["rule"] for ep in eps
            if ep["fired"] and ep["ended"] is not None
        }
        assert resolved == {"e2e-rss-growth", "e2e-memory-budget"}
        assert all(ep["trace_id"] == _SENTINEL_TRACE for ep in eps)

    def test_timeseries_records_the_leak_shape(self, plane):
        engine, scraper, alerts, _sampler, tmp_path = plane
        self._run_leak(engine, scraper)

        reader = TimeSeriesReader(tmp_path / "ts")
        points = reader.series("process_rss_bytes")
        assert len(points) >= 20
        values = [v for _, v in points]
        baseline = values[0]
        peak = max(values)
        final = values[-1]
        # The drill retained ~160MiB; demand the series saw most of it
        # climb and most of it come back.
        assert peak - baseline > 100 * MIB
        assert peak - final > 100 * MIB
