"""Resource-plane tests: /proc parsing against fixture files, sampler
lifecycle, labelled-gauge export, watermark attribution, profiler
arbitration, and SIGUSR1 dump atomicity while sampling."""

from __future__ import annotations

import gc
import os
import signal
import threading
import time

import pytest

from repro.obs import observed_command
from repro.obs.metrics import (
    LabeledGauge,
    MetricsRegistry,
    NullMetric,
    parse_prometheus_text,
    reset_global_registry,
)
from repro.obs.profile import (
    acquire_profiler,
    active_profiler,
    maybe_profile,
    release_profiler,
)
from repro.obs.resources import (
    LeakDrill,
    ResourceSampler,
    count_open_fds,
    read_io,
    read_statm,
    read_status,
    rusage_snapshot,
    total_memory_bytes,
)
from repro.obs.sampler import SamplingProfiler
from repro.obs.timeseries import MetricScraper, TimeSeriesStore
from repro.obs.trace import _SPAN_EXIT_HOOKS, get_tracer, reset_tracer


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_global_registry()
    yield
    reset_global_registry()


@pytest.fixture()
def proc_dir(tmp_path):
    """A synthetic /proc/self with parseable files."""
    root = tmp_path / "proc"
    root.mkdir()
    # 2000 resident pages, 3000 total, at whatever the page size is.
    (root / "statm").write_text("3000 2000 100 1 0 500 0\n")
    (root / "status").write_text(
        "Name:\tpytest\n"
        "VmSize:\t  12000 kB\n"
        "VmHWM:\t  9000 kB\n"
        "VmRSS:\t  8000 kB\n"
        "Threads:\t3\n"
    )
    (root / "io").write_text(
        "rchar: 100\nwchar: 50\nread_bytes: 4096\nwrite_bytes: 8192\n"
    )
    fd_dir = root / "fd"
    fd_dir.mkdir()
    for n in range(4):
        (fd_dir / str(n)).write_text("")
    return root


class TestProcParsing:
    def test_statm_good(self, proc_dir):
        rss, vms = read_statm(proc_dir / "statm", page_size=4096)
        assert rss == 2000 * 4096
        assert vms == 3000 * 4096

    def test_statm_missing(self, tmp_path):
        assert read_statm(tmp_path / "nope") is None

    def test_statm_truncated(self, tmp_path):
        path = tmp_path / "statm"
        path.write_text("3000")
        assert read_statm(path) is None
        path.write_text("")
        assert read_statm(path) is None

    def test_statm_garbled(self, tmp_path):
        path = tmp_path / "statm"
        path.write_text("lots of garbage here\n")
        assert read_statm(path) is None
        path.write_text("-3 -4 0 0\n")
        assert read_statm(path) is None

    def test_status_good(self, proc_dir):
        fields = read_status(proc_dir / "status")
        assert fields["VmRSS"] == 8000 * 1024
        assert fields["VmHWM"] == 9000 * 1024
        assert fields["VmSize"] == 12000 * 1024
        assert fields["Threads"] == 3

    def test_status_garbled_lines_skipped(self, tmp_path):
        path = tmp_path / "status"
        path.write_text(
            "VmRSS:\tnot-a-number kB\n"
            "no colon separator\n"
            "VmHWM:\t  500 kB\n"
            "Threads:\n"
        )
        fields = read_status(path)
        assert fields == {"VmHWM": 500 * 1024}

    def test_status_missing(self, tmp_path):
        assert read_status(tmp_path / "nope") == {}

    def test_io_good_and_garbled(self, proc_dir, tmp_path):
        assert read_io(proc_dir / "io") == {
            "read_bytes": 4096, "write_bytes": 8192,
        }
        bad = tmp_path / "io"
        bad.write_text("read_bytes: xx\nwrite_bytes: -1\n")
        assert read_io(bad) == {}
        assert read_io(tmp_path / "nope") == {}

    def test_count_open_fds(self, proc_dir, tmp_path):
        assert count_open_fds(proc_dir / "fd") == 4
        assert count_open_fds(tmp_path / "nope") is None

    def test_rusage_snapshot(self):
        usage = rusage_snapshot()
        assert usage["maxrss_bytes"] > 0
        assert usage["cpu_seconds"] >= 0

    def test_total_memory_bytes_fixture(self, tmp_path):
        meminfo = tmp_path / "meminfo"
        meminfo.write_text("MemTotal:  2048 kB\nMemFree: 1024 kB\n")
        assert total_memory_bytes(meminfo) == 2048 * 1024
        assert total_memory_bytes(tmp_path / "nope") is None
        meminfo.write_text("MemTotal: garbage kB\n")
        assert total_memory_bytes(meminfo) is None


class TestResourceSampler:
    def test_sample_from_fixture_proc(self, proc_dir):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry=registry, proc_root=proc_dir)
        assert sampler.proc_available
        out = sampler.sample_once()
        page = sampler.page_size
        assert out["rss_bytes"] == 2000 * page
        assert out["vms_bytes"] == 3000 * page
        assert out["rss_peak_bytes"] == 9000 * 1024
        assert out["threads"] == 3
        assert out["open_fds"] == 4
        assert registry.get("process_rss_bytes").value == 2000 * page
        assert registry.get("process_threads").value == 3

    def test_non_linux_fallback_uses_rusage(self, tmp_path):
        registry = MetricsRegistry()
        empty = tmp_path / "empty"
        empty.mkdir()
        sampler = ResourceSampler(registry=registry, proc_root=empty)
        assert not sampler.proc_available
        out = sampler.sample_once()
        # No statm: the rusage peak stands in for current RSS so the
        # memory-budget rule still has a value to evaluate.
        assert out["rss_peak_bytes"] > 0
        assert out["rss_bytes"] == out["rss_peak_bytes"]
        assert "vms_bytes" not in out

    def test_io_counters_are_deltas(self, proc_dir):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry=registry, proc_root=proc_dir)
        sampler.sample_once()
        # First sample primes the baseline; counters stay at zero.
        assert registry.get("process_io_read_bytes_total").value == 0
        (proc_dir / "io").write_text(
            "read_bytes: 6144\nwrite_bytes: 8192\n"
        )
        sampler.sample_once()
        assert registry.get("process_io_read_bytes_total").value == 2048
        assert registry.get("process_io_write_bytes_total").value == 0

    def test_cpu_percent_between_samples(self, proc_dir):
        clock = iter([100.0, 101.0, 102.0, 103.0]).__next__
        registry = MetricsRegistry()
        sampler = ResourceSampler(
            registry=registry, proc_root=proc_dir, clock=clock
        )
        first = sampler.sample_once()
        assert "cpu_percent" not in first  # needs a previous sample
        second = sampler.sample_once()
        assert "cpu_percent" in second
        assert second["cpu_percent"] >= 0

    def test_start_stop_idempotent(self, proc_dir):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry=registry, proc_root=proc_dir)
        hooks_before = len(_SPAN_EXIT_HOOKS)
        callbacks_before = len(gc.callbacks)
        sampler.start(interval_s=0.01)
        thread = sampler._thread
        sampler.start(interval_s=0.01)  # no second thread
        assert sampler._thread is thread
        assert len(_SPAN_EXIT_HOOKS) == hooks_before + 1
        assert len(gc.callbacks) == callbacks_before + 1
        sampler.stop()
        sampler.stop()  # idempotent
        assert not sampler.running
        assert len(_SPAN_EXIT_HOOKS) == hooks_before
        assert len(gc.callbacks) == callbacks_before
        assert sampler.samples_taken >= 1  # final sample on stop

    def test_span_watermark_attribution(self, proc_dir):
        registry = MetricsRegistry()
        sampler = ResourceSampler(
            registry=registry, proc_root=proc_dir,
            watermark_interval_s=0.0,
        )
        sampler.install()
        try:
            reset_tracer()
            with get_tracer().span("stage.unit-test"):
                pass
            marks = sampler.watermarks()
            assert marks["stage.unit-test"] == 2000 * sampler.page_size
        finally:
            sampler.uninstall()

    def test_watermark_only_rises(self, proc_dir):
        registry = MetricsRegistry()
        sampler = ResourceSampler(
            registry=registry, proc_root=proc_dir,
            watermark_interval_s=0.0,
        )
        sampler.install()
        try:
            reset_tracer()
            with get_tracer().span("stage.peak"):
                pass
            (proc_dir / "statm").write_text("3000 100 0 0 0 0 0\n")
            with get_tracer().span("stage.peak"):
                pass
            # Second pass saw a lower RSS: the watermark must hold.
            assert sampler.watermarks()["stage.peak"] == (
                2000 * sampler.page_size
            )
        finally:
            sampler.uninstall()

    def test_attach_rides_scraper_cadence(self, proc_dir, tmp_path):
        registry = MetricsRegistry()
        scraper = MetricScraper(
            TimeSeriesStore(tmp_path / "ts"),
            registry=registry, interval_s=60.0,
        )
        sampler = ResourceSampler(registry=registry, proc_root=proc_dir)
        sampler.attach(scraper)
        try:
            sample = scraper.scrape_once(ts=100.0)
            # The collector ran *before* the registry scrape, so the
            # persisted sample already carries the resource gauges.
            assert sample["m"]["process_rss_bytes"][1] == (
                2000 * sampler.page_size
            )
            assert sampler.samples_taken == 1
        finally:
            sampler.uninstall()

    def test_collector_errors_counted_not_fatal(self, tmp_path):
        registry = MetricsRegistry()
        scraper = MetricScraper(
            TimeSeriesStore(tmp_path / "ts"),
            registry=registry, interval_s=60.0,
        )

        def bad_collector():
            raise RuntimeError("collector boom")

        scraper.add_collector(bad_collector)
        sample = scraper.scrape_once(ts=100.0)
        assert sample is not None
        assert scraper.collector_errors == 1

    def test_enricher_errors_counted_on_registry(self, tmp_path):
        registry = MetricsRegistry()
        scraper = MetricScraper(
            TimeSeriesStore(tmp_path / "ts"),
            registry=registry, interval_s=60.0,
        )

        def bad_enricher():
            raise RuntimeError("enricher boom")

        scraper.add_enricher(bad_enricher)
        scraper.scrape_once(ts=100.0)
        assert scraper.enricher_errors == 1
        assert registry.get("scraper_enricher_errors_total").value == 1

    def test_alloc_diffing_opt_in(self, proc_dir):
        registry = MetricsRegistry()
        sampler = ResourceSampler(
            registry=registry, proc_root=proc_dir, alloc_top_n=5
        )
        sampler.install()
        try:
            sampler.sample_once()
            ballast = [bytearray(64 * 1024) for _ in range(32)]
            sampler.sample_once()
            assert sampler.alloc_top, "allocation diff must be captured"
            assert {"location", "size_diff_bytes", "count_diff"} <= set(
                sampler.alloc_top[0]
            )
            del ballast
        finally:
            sampler.uninstall()


class TestLabeledGauge:
    def test_set_max_is_a_watermark(self):
        gauge = LabeledGauge("rss_peak_bytes", label="stage")
        gauge.set_max("a", 10)
        gauge.set_max("a", 5)
        assert gauge.get("a") == 10
        gauge.set_max("a", 20)
        assert gauge.get("a") == 20
        assert gauge.values() == {"a": 20.0}

    def test_registry_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.labeled_gauge("family", label="stage")
        with pytest.raises(ValueError):
            registry.labeled_gauge("family", label="worker", exist_ok=True)

    def test_prometheus_roundtrip(self):
        registry = MetricsRegistry()
        gauge = registry.labeled_gauge(
            "rss_peak_bytes", "peaks", label="stage"
        )
        gauge.set("stage.a", 123.0)
        gauge.set("stage.b", 456.0)
        registry.labeled_gauge("empty_family", "nothing yet", label="gen")
        parsed = parse_prometheus_text(registry.render_prometheus())
        samples = {
            labels: value
            for _n, labels, value in parsed["rss_peak_bytes"]["samples"]
        }
        assert samples == {
            'stage="stage.a"': 123.0, 'stage="stage.b"': 456.0,
        }
        # An empty family renders a placeholder so strict parsing
        # ("metric has no samples") still passes.
        assert parsed["empty_family"]["samples"] == [
            ("empty_family", 'gen=""', 0.0)
        ]

    def test_null_metric_supports_labeled_api(self):
        null = NullMetric()
        null.set("a", 1)
        null.set_max("a", 2)
        assert null.get("a") is None
        assert null.values() == {}


class TestLeakDrill:
    def test_parse(self):
        drill = LeakDrill.parse("4096:3")
        assert drill.bytes_per_window == 4096
        assert drill.windows == 3

    @pytest.mark.parametrize(
        "spec", ["", "4096", "4096:3:9", "a:b", "4096:", "0:3", "4096:0"]
    )
    def test_parse_rejects(self, spec):
        with pytest.raises(ValueError):
            LeakDrill.parse(spec)

    def test_retain_then_release(self):
        drill = LeakDrill(4096, 3)
        for expect in (4096, 8192, 12288):
            drill.on_window_close()
            assert drill.retained_bytes == expect
        assert not drill.released
        drill.on_window_close()  # the release window
        assert drill.released
        assert drill.retained_bytes == 0
        drill.on_window_close()  # stays released, no re-leak
        assert drill.retained_bytes == 0

    def test_stream_engine_invokes_drill(self):
        from repro.stream import StreamEngine, WindowPolicy
        from tests.test_obs_e2e_alerting import _hit

        engine = StreamEngine(policy=WindowPolicy(window_events=10))
        engine.leak_drill = LeakDrill(1024, 2)
        for n in range(35):
            engine.ingest(_hit(n % 5, n, True))
        assert engine.windows_advanced == 3
        # 2 leaked windows + the third close released the ballast.
        assert engine.leak_drill.released
        assert engine.leak_drill.retained_bytes == 0


class TestProfilerArbitration:
    def teardown_method(self):
        release_profiler("cprofile")
        release_profiler("sample")

    def test_slot_is_exclusive(self):
        assert acquire_profiler("cprofile")
        assert active_profiler() == "cprofile"
        assert not acquire_profiler("sample")
        release_profiler("sample")  # non-holder release is a no-op
        assert active_profiler() == "cprofile"
        release_profiler("cprofile")
        assert active_profiler() is None
        assert acquire_profiler("sample")

    def test_sampler_defers_to_cprofile(self):
        assert acquire_profiler("cprofile")
        sampler = SamplingProfiler(interval_s=0.001)
        assert sampler.start() is False
        assert not sampler.running
        release_profiler("cprofile")
        assert sampler.start() is True
        sampler.stop()
        assert active_profiler() is None

    def test_cprofile_defers_to_sampler(self, tmp_path):
        sampler = SamplingProfiler(interval_s=0.001)
        assert sampler.start()
        try:
            with maybe_profile(True, tmp_path / "p.txt") as prof:
                assert prof is None  # refused, not stacked
            assert not (tmp_path / "p.txt").exists()
        finally:
            sampler.stop()


class TestSamplingProfiler:
    def test_start_stop_idempotent_and_collapsed_format(self, tmp_path):
        sampler = SamplingProfiler(interval_s=0.001)
        assert sampler.start()
        assert sampler.start()  # already running: True, no respawn
        deadline = time.time() + 2.0
        while sampler.samples == 0 and time.time() < deadline:
            sum(n * n for n in range(20_000))
        sampler.stop()
        sampler.stop()
        assert sampler.samples > 0
        lines = sampler.collapsed()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0
            assert ";" in stack or "(" in stack
        out = sampler.write_collapsed(tmp_path / "prof.collapsed")
        assert out.read_text().splitlines() == lines

    def test_chrome_trace_joined_to_trace_id(self):
        sampler = SamplingProfiler(interval_s=0.001)
        sampler._counts[("root (a.py:1)", "leaf (b.py:2)")] = 7
        sampler.samples = 7
        trace = sampler.to_chrome_trace(trace_id="trace-xyz")
        assert trace["otherData"]["kind"] == "sampling-profile"
        assert trace["otherData"]["trace_id"] == "trace-xyz"
        (event,) = trace["traceEvents"]
        assert event["name"] == "leaf (b.py:2)"
        assert event["args"]["stack"] == "root (a.py:1);leaf (b.py:2)"
        assert event["dur"] == pytest.approx(7 * 0.001 * 1e6)

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_depth=0)


@pytest.mark.skipif(
    not hasattr(signal, "SIGUSR1"), reason="needs SIGUSR1"
)
class TestSigusr1DuringSampling:
    def test_dump_mid_sample_parses_strictly(self, tmp_path):
        """A SIGUSR1 dump racing the resource sampler and the stack
        sampler must still produce a strictly-parseable snapshot."""
        metrics_out = tmp_path / "mid.prom"
        with observed_command(
            "unit", metrics_out=metrics_out, prof_sample=True,
            prof_sample_out=tmp_path / "mid.collapsed",
            prof_sample_interval_s=0.001,
        ):
            sampler = ResourceSampler()
            sampler.start(interval_s=0.001)
            try:
                deadline = time.time() + 2.0
                while sampler.samples_taken < 3 and time.time() < deadline:
                    time.sleep(0.005)
                os.kill(os.getpid(), signal.SIGUSR1)
                # Give the handler a beat while sampling continues.
                time.sleep(0.02)
                parsed = parse_prometheus_text(metrics_out.read_text())
                assert "process_rss_bytes" in parsed
            finally:
                sampler.stop()
        # The exit dump (racing the final sample) must also parse.
        parsed = parse_prometheus_text(metrics_out.read_text())
        assert parsed["process_rss_bytes"]["samples"][0][2] > 0
        assert (tmp_path / "mid.collapsed").exists()
        assert (tmp_path / "mid.collapsed.trace.json").exists()
