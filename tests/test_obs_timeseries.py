"""Metric time-series: tagged samples, segment ring, reader, scraper."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry, reset_global_registry
from repro.obs.timeseries import (
    MetricScraper,
    TimeSeriesReader,
    TimeSeriesStore,
    scrape_registry,
)


@pytest.fixture()
def registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("events_total", "events")
    registry.gauge("depth", "queue depth")
    registry.histogram("latency_seconds", "latency")
    return registry


class TestScrapeRegistry:
    def test_counters_and_gauges_are_tagged_scalars(self, registry):
        registry.get("events_total").inc(7)
        registry.get("depth").set(3.5)
        sample = scrape_registry(registry, clock=lambda: 42.0)
        assert sample["ts"] == 42.0
        assert sample["m"]["events_total"] == ["c", 7]
        assert sample["m"]["depth"] == ["g", 3.5]

    def test_histograms_carry_count_sum_and_quantiles(self, registry):
        for value in (0.01, 0.02, 0.03):
            registry.get("latency_seconds").observe(value)
        sample = scrape_registry(registry, clock=lambda: 1.0)
        tag, count, total, p50, p99 = sample["m"]["latency_seconds"]
        assert tag == "h"
        assert count == 3
        assert total == pytest.approx(0.06)
        assert p50 is not None and p99 is not None

    def test_empty_histogram_has_null_quantiles(self, registry):
        sample = scrape_registry(registry, clock=lambda: 1.0)
        assert sample["m"]["latency_seconds"][1] == 0
        assert sample["m"]["latency_seconds"][3] is None


class TestStoreRotation:
    def test_single_segment_until_limit(self, tmp_path):
        store = TimeSeriesStore(tmp_path, max_segment_samples=3,
                                max_segments=4)
        for ts in range(3):
            store.append({"ts": float(ts), "m": {}})
        assert store.segment_count() == 1

    def test_rotation_opens_new_segment(self, tmp_path):
        store = TimeSeriesStore(tmp_path, max_segment_samples=2,
                                max_segments=4)
        for ts in range(5):
            store.append({"ts": float(ts), "m": {}})
        assert store.segment_count() == 3

    def test_ring_drops_oldest_segment(self, tmp_path):
        store = TimeSeriesStore(tmp_path, max_segment_samples=2,
                                max_segments=2)
        for ts in range(10):
            store.append({"ts": float(ts), "m": {}})
        assert store.segment_count() <= 2
        reader = TimeSeriesReader(tmp_path)
        timestamps = [s["ts"] for s in reader.samples()]
        # The newest samples survive; the oldest were rotated away.
        assert timestamps[-1] == 9.0
        assert timestamps[0] >= 4.0

    def test_bad_limits_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TimeSeriesStore(tmp_path, max_segment_samples=0)
        with pytest.raises(ValueError):
            TimeSeriesStore(tmp_path, max_segments=0)


class TestReader:
    def _store(self, tmp_path, samples):
        store = TimeSeriesStore(tmp_path, max_segment_samples=2,
                                max_segments=8)
        for sample in samples:
            store.append(sample)
        return store

    def test_samples_ordered_across_segments(self, tmp_path):
        self._store(tmp_path, [
            {"ts": float(ts), "m": {"events_total": ["c", ts]}}
            for ts in range(7)
        ])
        reader = TimeSeriesReader(tmp_path)
        assert [s["ts"] for s in reader.samples()] == [
            0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0
        ]

    def test_range_query(self, tmp_path):
        self._store(tmp_path, [
            {"ts": float(ts), "m": {}} for ts in range(10)
        ])
        reader = TimeSeriesReader(tmp_path)
        got = [s["ts"] for s in reader.samples(start=3.0, end=6.0)]
        assert got == [3.0, 4.0, 5.0, 6.0]

    def test_torn_lines_are_skipped(self, tmp_path):
        store = self._store(tmp_path, [
            {"ts": 1.0, "m": {"events_total": ["c", 1]}}
        ])
        with store.active_segment.open("a") as stream:
            stream.write('{"ts": 2.0, "m": {"events_to')  # torn write
        reader = TimeSeriesReader(tmp_path)
        assert [s["ts"] for s in reader.samples()] == [1.0]

    def test_series_and_latest(self, tmp_path):
        self._store(tmp_path, [
            {"ts": 1.0, "m": {"depth": ["g", 5.0]}},
            {"ts": 2.0, "m": {"depth": ["g", 7.0]}},
        ])
        reader = TimeSeriesReader(tmp_path)
        assert reader.series("depth") == [(1.0, 5.0), (2.0, 7.0)]
        assert reader.latest("depth") == (2.0, 7.0)
        assert reader.latest("missing") is None
        assert "depth" in reader.metric_names()

    def test_rate_from_counter_deltas(self, tmp_path):
        self._store(tmp_path, [
            {"ts": 10.0, "m": {"events_total": ["c", 100]}},
            {"ts": 12.0, "m": {"events_total": ["c", 300]}},
        ])
        reader = TimeSeriesReader(tmp_path)
        assert reader.rate("events_total") == [(12.0, 100.0)]

    def test_rate_survives_counter_reset(self, tmp_path):
        """A restarted process restarts its counters; rate must not
        go negative -- the post-reset raw value is the new delta."""
        self._store(tmp_path, [
            {"ts": 10.0, "m": {"events_total": ["c", 500]}},
            {"ts": 11.0, "m": {"events_total": ["c", 40]}},
        ])
        reader = TimeSeriesReader(tmp_path)
        assert reader.rate("events_total") == [(11.0, 40.0)]

    def test_empty_directory_reads_empty(self, tmp_path):
        reader = TimeSeriesReader(tmp_path / "nothing")
        assert list(reader.samples()) == []
        assert reader.metric_names() == []


class TestScraper:
    def test_scrape_once_appends_and_notifies(self, tmp_path, registry):
        store = TimeSeriesStore(tmp_path)
        scraper = MetricScraper(store, registry=registry)
        seen = []
        scraper.subscribe(seen.append)
        registry.get("events_total").inc(3)
        sample = scraper.scrape_once(ts=5.0)
        assert sample["ts"] == 5.0
        assert seen == [sample]
        assert scraper.samples_taken == 1
        assert TimeSeriesReader(tmp_path).latest("events_total") == (5.0, 3)

    def test_raising_callback_is_isolated(self, tmp_path, registry):
        scraper = MetricScraper(TimeSeriesStore(tmp_path), registry=registry)

        def boom(_sample):
            raise RuntimeError("observer bug")

        seen = []
        scraper.subscribe(boom)
        scraper.subscribe(seen.append)
        scraper.scrape_once(ts=1.0)
        assert scraper.callback_errors == 1
        assert len(seen) == 1  # later subscribers still ran

    def test_thread_scrapes_periodically(self, tmp_path, registry):
        store = TimeSeriesStore(tmp_path)
        scraper = MetricScraper(store, registry=registry, interval_s=0.01)
        ticked = threading.Event()
        scraper.subscribe(lambda _s: ticked.set())
        scraper.start()
        try:
            assert scraper.running
            assert ticked.wait(timeout=5.0)
        finally:
            scraper.stop(final_scrape=False)
        assert not scraper.running
        assert scraper.samples_taken >= 1

    def test_stop_takes_a_final_scrape(self, tmp_path, registry):
        scraper = MetricScraper(TimeSeriesStore(tmp_path), registry=registry,
                                interval_s=60.0)
        scraper.start()
        scraper.stop(final_scrape=True)
        assert scraper.samples_taken >= 1

    def test_default_registry_follows_global_swap(self, tmp_path):
        scraper = MetricScraper(TimeSeriesStore(tmp_path))
        fresh = reset_global_registry()
        try:
            assert scraper.registry is fresh
        finally:
            reset_global_registry()

    def test_bad_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            MetricScraper(TimeSeriesStore(tmp_path), interval_s=0)


class TestOnDiskFormat:
    def test_segments_are_plain_jsonl(self, tmp_path, registry):
        store = TimeSeriesStore(tmp_path)
        MetricScraper(store, registry=registry).scrape_once(ts=1.0)
        lines = store.active_segment.read_text().splitlines()
        parsed = json.loads(lines[0])
        assert set(parsed) == {"ts", "m"}

    def test_scrape_ts_defaults_to_clock(self, tmp_path, registry):
        scraper = MetricScraper(TimeSeriesStore(tmp_path), registry=registry,
                                clock=lambda: 99.0)
        assert scraper.scrape_once()["ts"] == 99.0

    def test_wall_clock_default(self, tmp_path, registry):
        scraper = MetricScraper(TimeSeriesStore(tmp_path), registry=registry)
        before = time.time()
        ts = scraper.scrape_once()["ts"]
        assert before - 1 <= ts <= time.time() + 1
