"""Span tracing: nesting, attributes, export, global tracer."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.trace import (
    MAX_SPANS,
    Span,
    Tracer,
    current_trace_id,
    get_tracer,
    reset_tracer,
    span,
    traced,
)
from repro.runtime.logging import current_trace_context


@pytest.fixture(autouse=True)
def _fresh_tracer():
    reset_tracer()
    yield
    reset_tracer()


class TestSpanNesting:
    def test_child_records_parent_id(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                pass
        assert child.parent_id == parent.span_id
        assert parent.parent_id is None

    def test_sibling_spans_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id

    def test_spans_complete_in_exit_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_all_spans_share_the_tracer_trace_id(self):
        tracer = Tracer(trace_id="t1234")
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert {s.trace_id for s in tracer.spans()} == {"t1234"}

    def test_durations_are_monotonic_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.duration is not None and inner.duration >= 0
        assert outer.duration >= inner.duration
        assert outer.started <= inner.started

    def test_thread_spans_root_at_top_level(self):
        # Worker threads start a fresh contextvar context, so their
        # spans do not accidentally parent under the main thread's.
        tracer = Tracer()
        seen = {}

        def work():
            with tracer.span("worker") as sp:
                seen["span"] = sp

        with tracer.span("main"):
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        assert seen["span"].parent_id is None


class TestAttributes:
    def test_kwargs_become_attributes(self):
        tracer = Tracer()
        with tracer.span("s", shard=3, workers=2) as sp:
            pass
        assert sp.attributes == {"shard": 3, "workers": 2}

    def test_set_attribute_inside_the_block(self):
        tracer = Tracer()
        with tracer.span("s") as sp:
            sp.set_attribute("status", "ok")
        assert sp.attributes["status"] == "ok"

    def test_exception_sets_error_attribute_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(KeyError):
            with tracer.span("boom") as sp:
                raise KeyError("x")
        assert sp.attributes["error"] == "KeyError"
        assert sp.ended
        # The failed span is still recorded.
        assert [s.name for s in tracer.spans()] == ["boom"]


class TestAddSpan:
    def test_externally_timed_work_is_recorded(self):
        tracer = Tracer()
        sp = tracer.add_span("shard.spot", started=1.0, duration=0.5, shard=0)
        assert sp.duration == 0.5
        assert sp.attributes == {"shard": 0}
        assert len(tracer) == 1

    def test_parent_defaults_to_the_current_span(self):
        tracer = Tracer()
        with tracer.span("stage") as stage:
            child = tracer.add_span("shard.spot", started=0.0, duration=0.1)
        assert child.parent_id == stage.span_id

    def test_explicit_parent_wins(self):
        tracer = Tracer()
        other = Span(name="other", trace_id=tracer.trace_id)
        with tracer.span("stage"):
            child = tracer.add_span(
                "shard.spot", started=0.0, duration=0.1, parent=other
            )
        assert child.parent_id == other.span_id


class TestBoundedBuffer:
    def test_spans_beyond_the_cap_are_dropped_and_counted(self):
        tracer = Tracer(max_spans=2)
        for index in range(5):
            tracer.add_span(f"s{index}", started=0.0, duration=0.0)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        export = tracer.to_chrome_trace()
        assert export["otherData"]["dropped_spans"] == 3

    def test_default_cap_is_large(self):
        assert Tracer().max_spans == MAX_SPANS == 100_000

    def test_nonpositive_cap_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestChromeExport:
    def test_complete_events_with_microsecond_timestamps(self):
        tracer = Tracer()
        tracer.add_span(
            "work", started=tracer.epoch + 0.25, duration=0.5, shard=1
        )
        export = tracer.to_chrome_trace()
        assert export["displayTimeUnit"] == "ms"
        assert export["otherData"]["trace_id"] == tracer.trace_id
        (event,) = export["traceEvents"]
        assert event["ph"] == "X"
        assert event["cat"] == "cellspot"
        assert event["ts"] == pytest.approx(250_000.0)
        assert event["dur"] == pytest.approx(500_000.0)
        assert event["args"]["shard"] == 1
        assert event["args"]["trace_id"] == tracer.trace_id

    def test_parent_id_rides_in_args_only_when_present(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        by_name = {
            event["name"]: event
            for event in tracer.to_chrome_trace()["traceEvents"]
        }
        assert "parent_id" not in by_name["parent"]["args"]
        assert (
            by_name["child"]["args"]["parent_id"]
            == by_name["parent"]["args"]["span_id"]
        )

    def test_render_is_valid_json(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        parsed = json.loads(tracer.render_chrome_json())
        assert isinstance(parsed["traceEvents"], list)


class TestTracedDecorator:
    def test_records_a_span_on_the_global_tracer(self):
        @traced("compute", kind="test")
        def compute(x):
            return x + 1

        assert compute(1) == 2
        (sp,) = get_tracer().spans()
        assert sp.name == "compute"
        assert sp.attributes == {"kind": "test"}

    def test_name_defaults_to_the_qualified_name(self):
        @traced()
        def helper():
            return None

        helper()
        (sp,) = get_tracer().spans()
        assert sp.name.endswith("helper")

    def test_wrapped_function_keeps_its_metadata(self):
        @traced()
        def documented():
            """docstring"""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "docstring"


class TestGlobalTracer:
    def test_reset_swaps_the_tracer(self):
        first = get_tracer()
        second = reset_tracer()
        assert first is not second
        assert get_tracer() is second

    def test_reset_accepts_an_explicit_trace_id(self):
        reset_tracer("fixed-id")
        assert current_trace_id() == "fixed-id"

    def test_module_level_span_uses_the_global_tracer(self):
        with span("global.work", n=1):
            pass
        (sp,) = get_tracer().spans()
        assert sp.name == "global.work"


class TestLogContextHandoff:
    """The span machinery drives runtime.logging's trace contextvar."""

    def test_context_is_set_inside_and_cleared_outside(self):
        assert current_trace_context() is None
        tracer = Tracer()
        with tracer.span("outer") as sp:
            assert current_trace_context() == (tracer.trace_id, sp.span_id)
        assert current_trace_context() is None

    def test_nested_spans_restore_the_parent_context(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert current_trace_context() == (
                    tracer.trace_id, inner.span_id
                )
            assert current_trace_context() == (
                tracer.trace_id, outer.span_id
            )
