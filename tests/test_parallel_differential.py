"""Differential suite: serial ≡ sharded, for any execution shape.

The parallel layer's whole contract is that worker count, shard
count, and executor mode are *invisible* in the output -- every run
over the same datasets produces a result equal to the serial
pipeline's, down to exported CSV bytes and per-AS demand floats.
These tests pin that contract across N ∈ {1, 2, 4, 7} workers,
decoupled worker/shard combinations, and the forced process-pool
path (so the pickle machinery is exercised even on one-core CI).
"""

from __future__ import annotations

import io

import pytest

from repro.core.export import CellularPrefixList
from repro.parallel.executor import ShardPlan
from repro.parallel.pipeline import run_sharded

WORKER_COUNTS = [1, 2, 4, 7]


def _export_csv(result, demand) -> str:
    stream = io.StringIO()
    CellularPrefixList.from_classification(
        result.classification, demand
    ).to_csv(stream)
    return stream.getvalue()


@pytest.fixture(scope="module")
def serial(lab):
    """The serial baseline every differential case compares against."""
    return lab.result  # lab defaults to workers=1: the plain pipeline


@pytest.fixture(scope="module")
def serial_csv(serial, lab):
    return _export_csv(serial, lab.demand)


def _assert_identical(result, serial, lab, serial_csv):
    # Stage outputs, compared by value...
    assert result.ratios == serial.ratios
    assert result.classification.threshold == serial.classification.threshold
    assert result.classification.labels == serial.classification.labels
    assert result.classification.records == serial.classification.records
    assert result.as_result == serial.as_result
    assert result.operators == serial.operators
    # ...and by *order*, which is what keeps float accumulation exact.
    assert list(result.classification.labels) == list(
        serial.classification.labels
    )
    assert list(result.ratios) == list(serial.ratios)
    # Per-AS demand floats must be bit-identical, not approximately so.
    for asn, accepted in serial.as_result.accepted.items():
        ours = result.as_result.accepted[asn]
        assert ours.cellular_du == accepted.cellular_du
        assert ours.total_du == accepted.total_du
        assert ours.beacon_hits == accepted.beacon_hits
    # The exported artifact is byte-identical.
    assert _export_csv(result, lab.demand) == serial_csv


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_sharded_equals_serial(lab, serial, serial_csv, workers):
    """N workers, N shards, real process pool where N > 1."""
    plan = ShardPlan.plan(workers=workers, force_processes=True)
    result = run_sharded(
        lab.spotter, lab.beacons, lab.demand, lab.as_classes, plan=plan
    )
    _assert_identical(result, serial, lab, serial_csv)


@pytest.mark.parametrize(
    "workers,shards",
    [(1, 4), (2, 7), (4, 2), (3, 1), (2, 13)],
)
def test_workers_and_shards_decoupled(lab, serial, serial_csv, workers, shards):
    """Any worker x shard combination reduces to the same result."""
    plan = ShardPlan.plan(workers=workers, shards=shards)
    result = run_sharded(
        lab.spotter, lab.beacons, lab.demand, lab.as_classes, plan=plan
    )
    _assert_identical(result, serial, lab, serial_csv)


def test_spotter_run_workers_parameter(lab, serial, serial_csv):
    """The public ``CellSpotter.run(workers=...)`` entry point routes
    through the sharded pipeline and stays identical."""
    result = lab.spotter.run(
        lab.beacons,
        lab.demand,
        lab.as_classes,
        workers=4,
        force_processes=True,
    )
    _assert_identical(result, serial, lab, serial_csv)
    assert any(
        stage.startswith("spot.shard") for stage in result.stage_timings
    )


def test_spotter_run_serial_path_untouched(lab, serial):
    """workers=1 without shards still takes the plain serial path."""
    result = lab.spotter.run(lab.beacons, lab.demand, lab.as_classes)
    assert "ratios" in result.stage_timings  # serial stage names
    assert result.as_result == serial.as_result


def test_shard_timings_recorded(lab):
    plan = ShardPlan.plan(workers=2, shards=3, force_processes=True)
    result = run_sharded(
        lab.spotter, lab.beacons, lab.demand, lab.as_classes, plan=plan
    )
    shard_stages = [
        stage for stage in result.stage_timings if stage.startswith("spot.shard")
    ]
    assert len(shard_stages) == 3
    for stage in ("partition", "merge", "demand_map", "as_identification",
                  "operator_profiles"):
        assert stage in result.stage_timings
        assert result.stage_timings[stage] >= 0.0
