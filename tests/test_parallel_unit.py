"""Unit tests for the parallel layer's building blocks.

Sharding must be a stable pure function of the prefix, plans must
respect the hardware, executors must preserve submission order, and
the demand view must be indistinguishable from the dataset it
projects.  The differential suite proves end-to-end equality; these
tests localize the failure when one brick breaks.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets.demand_dataset import DemandDataset, SubnetDemand
from repro.net.prefix import Prefix
from repro.parallel.executor import ShardExecutor, ShardPlan, available_cpus
from repro.parallel.sharding import (
    beacon_rows,
    demand_rows,
    partition_beacons,
    partition_demand,
    partition_rows,
    shard_of,
    stable_shard_index,
)
from repro.parallel.views import DemandEntry, DemandMap


# ---- sharding ---------------------------------------------------------------


def test_shard_index_pinned_values():
    """FNV-1a assignment is part of the on-disk format: pin it.

    If these values ever change, existing cache entries must be
    invalidated by bumping CACHE_FORMAT_VERSION.
    """
    assert stable_shard_index(4, 0x0A000000, 24, 8) == 2
    assert stable_shard_index(4, 0x0A000100, 24, 8) == 3
    assert stable_shard_index(6, 0x20010DB8 << 96, 48, 8) == 1
    assert stable_shard_index(4, 0x0A000000, 24, 5) == 0


def test_shard_index_range_and_determinism():
    prefixes = [Prefix(4, value << 8, 24) for value in range(500)]
    for shards in (1, 2, 7, 16):
        seen = set()
        for prefix in prefixes:
            index = shard_of(prefix, shards)
            assert 0 <= index < shards
            assert index == shard_of(prefix, shards)  # pure function
            seen.add(index)
        if shards > 1:
            assert len(seen) > 1, "degenerate distribution"
    assert shard_of(prefixes[0], 1) == 0


def test_shard_dispersion_survives_zero_low_bits():
    """Aggregation prefixes end in structurally zero bits (/24: 8,
    /48: 80); power-of-two shard counts must still balance.  Guards
    the avalanche finalizer -- raw FNV-1a fails this badly."""
    from collections import Counter

    prefixes = [Prefix(4, value << 8, 24) for value in range(2000)]
    prefixes += [Prefix(6, value << 80, 48) for value in range(500)]
    for shards in (2, 8, 16):
        counts = Counter(shard_of(prefix, shards) for prefix in prefixes)
        assert len(counts) == shards
        expected = len(prefixes) / shards
        assert max(counts.values()) < 1.5 * expected
        assert min(counts.values()) > 0.5 * expected


def test_shard_index_rejects_bad_counts():
    with pytest.raises(ValueError):
        stable_shard_index(4, 0, 24, 0)
    with pytest.raises(ValueError):
        partition_rows([], 0)


def test_partition_is_complete_and_disjoint(lab):
    rows = list(beacon_rows(lab.beacons))
    parts = partition_beacons(lab.beacons, 7)
    assert len(parts) == 7
    assert sum(len(part) for part in parts) == len(rows)
    assert sorted(row for part in parts for row in part) == sorted(rows)
    for index, part in enumerate(parts):
        for row in part:
            assert stable_shard_index(row[1], row[2], row[3], 7) == index


def test_partition_membership_ignores_row_order(lab):
    rows = list(demand_rows(lab.demand))
    forward = partition_rows(rows, 5)
    backward = partition_rows(reversed(rows), 5)
    for a, b in zip(forward, backward):
        assert sorted(a) == sorted(b)


def test_demand_rows_carry_dataset_order(lab):
    rows = list(demand_rows(lab.demand))
    assert [row[0] for row in rows] == list(range(len(lab.demand)))
    assert sum(len(p) for p in partition_demand(lab.demand, 3)) == len(rows)


# ---- plans ------------------------------------------------------------------


def test_plan_defaults_are_serial():
    plan = ShardPlan.plan()
    assert plan.workers == 1
    assert plan.shards == 1
    assert plan.is_serial
    assert not plan.use_processes


def test_plan_clamps_to_hardware():
    plan = ShardPlan.plan(workers=10_000)
    assert plan.requested_workers == 10_000
    assert plan.workers == min(10_000, available_cpus())
    assert plan.shards == plan.workers


def test_plan_force_processes_bypasses_clamp():
    plan = ShardPlan.plan(workers=4, force_processes=True)
    assert plan.workers == 4
    assert plan.use_processes
    assert not plan.is_serial


def test_plan_decouples_shards_from_workers():
    plan = ShardPlan.plan(workers=1, shards=6)
    assert plan.workers == 1
    assert plan.shards == 6
    assert not plan.is_serial  # sharded merge path, in-process


def test_plan_rejects_bad_requests():
    with pytest.raises(ValueError):
        ShardPlan.plan(workers=0)
    with pytest.raises(ValueError):
        ShardPlan.plan(workers=2, shards=0)


def test_available_cpus_positive():
    assert available_cpus() >= 1


# ---- executor ---------------------------------------------------------------


def _describe(arg):
    """Module-level so it pickles into pool workers."""
    return arg * 2, os.getpid()


def test_executor_preserves_submission_order_in_process():
    executor = ShardExecutor(ShardPlan.plan(workers=1, shards=4))
    results = executor.map(_describe, [3, 1, 2, 0])
    assert [value for _, (value, _) in results] == [6, 2, 4, 0]
    assert all(seconds >= 0 for seconds, _ in results)
    assert {pid for _, (_, pid) in results} == {os.getpid()}


def test_executor_preserves_submission_order_across_processes():
    executor = ShardExecutor(
        ShardPlan.plan(workers=2, shards=4, force_processes=True)
    )
    results = executor.map(_describe, list(range(8)))
    assert [value for _, (value, _) in results] == [i * 2 for i in range(8)]
    pids = {pid for _, (_, pid) in results}
    assert os.getpid() not in pids, "work must run in pool workers"


def test_executor_single_job_stays_in_process():
    executor = ShardExecutor(
        ShardPlan.plan(workers=4, force_processes=True)
    )
    results = executor.map(_describe, [21])
    assert results[0][1] == (42, os.getpid())


# ---- demand view ------------------------------------------------------------


def _tiny_demand() -> DemandDataset:
    dataset = DemandDataset(window_days=7)
    for index in range(1, 6):
        dataset._add(
            SubnetDemand(Prefix(4, index << 8, 24), index, "US", float(index))
        )
    return dataset


def test_demand_map_matches_dataset():
    dataset = _tiny_demand()
    view = DemandMap.from_dataset(dataset)
    assert len(view) == len(dataset)
    assert view.total_du == dataset.total_du
    for record in dataset:
        assert view.du_of(record.subnet) == record.du
    assert [(e.asn, e.du) for e in view] == [
        (r.asn, r.du) for r in dataset
    ]


def test_demand_map_from_rows_restores_order():
    dataset = _tiny_demand()
    rows = list(demand_rows(dataset))
    shuffled = [rows[3], rows[0], rows[4], rows[1], rows[2]]
    view = DemandMap.from_rows(shuffled)
    assert [entry.du for entry in view] == [r.du for r in dataset]
    assert view.du_of(Prefix(4, 9_999 << 8, 24)) == 0.0  # unobserved


def test_demand_map_rejects_duplicate_subnets():
    rows = list(demand_rows(_tiny_demand()))
    with pytest.raises(ValueError, match="duplicate"):
        DemandMap.from_rows(rows + [rows[0]])


def test_demand_entry_shape():
    entry = DemandEntry(asn=7, du=1.5)
    assert entry.asn == 7 and entry.du == 1.5


# ---- fused cache run --------------------------------------------------------


def test_run_from_entry_equals_serial(lab, tmp_path):
    from repro.parallel.cache import DatasetCache
    from repro.parallel.pipeline import run_from_entry

    cache = DatasetCache(tmp_path)
    key = cache.key_for(lab.cache_params())
    cache.store(key, lab.beacons, lab.demand, params=lab.cache_params())
    entry = cache.fetch(key)
    assert entry is not None
    serial = lab.result
    fused = run_from_entry(
        lab.spotter, entry, lab.as_classes, plan=ShardPlan.plan(workers=4)
    )
    assert fused.ratios == serial.ratios
    assert fused.classification.labels == serial.classification.labels
    assert fused.as_result == serial.as_result
    assert fused.operators == serial.operators
    assert list(fused.ratios) == list(serial.ratios)  # exact serial order
    assert any(
        stage.startswith("load_beacon.shard") for stage in fused.stage_timings
    )
    assert "fused_spot" in fused.stage_timings
