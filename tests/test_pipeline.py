"""Integration tests: the full pipeline against planted ground truth.

These are the reproduction's core integration checks -- the pipeline
never reads truth labels, so recovering the planted structure is a real
end-to-end property.
"""

import pytest

from repro.core.pipeline import CellSpotter


class TestEndToEnd:
    def test_stages_populated(self, lab):
        result = lab.result
        assert len(result.ratios) > 1000
        assert len(result.classification) == len(result.ratios)
        assert result.as_result.candidate_count > result.cellular_as_count
        assert result.cellular_as_count > 0
        assert set(result.operators) == set(result.as_result.accepted)

    def test_subnet_level_recovery(self, lab):
        # Precision of detected cellular subnets *within accepted
        # cellular ASes* -- the straw-man global set intentionally
        # contains the planted proxy/stray false positives that the AS
        # filter exists to remove (section 5).
        result = lab.result
        world = lab.world
        accepted = set(result.operators)
        tp = fp = 0
        for subnet in result.classification.cellular_subnets():
            truth = world.truth_is_cellular(subnet)
            assert truth is not None  # classified subnets exist in the world
            if result.classification.records[subnet].asn not in accepted:
                continue
            if truth:
                tp += 1
            else:
                fp += 1
        precision = tp / (tp + fp)
        assert precision > 0.95  # paper: >= 0.97 per carrier

    def test_as_level_recovery(self, lab):
        result = lab.result
        truth = lab.world.truth_cellular_asns()
        detected = set(result.operators)
        tp = len(detected & truth)
        precision = tp / len(detected)
        recall = tp / len(truth)
        assert precision > 0.95
        assert recall > 0.9

    def test_as_count_near_paper(self, lab):
        # Paper: 668 detected cellular ASes (the planted truth is ~669).
        assert 560 <= lab.result.cellular_as_count <= 720

    def test_mixed_classification_recovers_truth(self, lab):
        from repro.net.asn import ASType

        registry = lab.world.topology.registry
        agreements = total = 0
        for asn, profile in lab.result.operators.items():
            record = registry.find(asn)
            if record is None or not record.is_cellular:
                continue
            total += 1
            truth_mixed = record.as_type is ASType.CELLULAR_MIXED
            if truth_mixed == profile.is_mixed:
                agreements += 1
        assert total > 0
        assert agreements / total > 0.85

    def test_pipeline_blind_to_truth(self, lab):
        # Structural guarantee: the spotter only receives datasets,
        # never the world object.
        import inspect

        signature = inspect.signature(CellSpotter.run)
        assert "world" not in signature.parameters

    def test_rerun_with_other_threshold(self, lab):
        strict = lab.rerun(CellSpotter(threshold=0.96))
        default = lab.result
        # The high threshold loses hot CGN subnets diluted by tethering.
        assert strict.cellular_subnet_count(4) < default.cellular_subnet_count(4)

    def test_deterministic(self, lab):
        again = lab.spotter.run(lab.beacons, lab.demand, lab.as_classes)
        assert again.cellular_as_count == lab.result.cellular_as_count
        assert again.classification.cellular_set() == (
            lab.result.classification.cellular_set()
        )


class TestSpotterDefaults:
    def test_as_filter_default_not_shared(self):
        """Regression: the dataclass default must be a factory.

        `as_filter: ASFilterConfig = ASFilterConfig()` evaluated one
        config at class-definition time and aliased it across every
        CellSpotter(); two spotters must own independent configs.
        """
        from repro.core.asn_classifier import ASFilterConfig

        first = CellSpotter()
        second = CellSpotter()
        assert first.as_filter is not second.as_filter
        assert first.as_filter == ASFilterConfig()

    def test_as_filter_default_is_factory(self):
        import dataclasses

        (field,) = [
            f for f in dataclasses.fields(CellSpotter) if f.name == "as_filter"
        ]
        assert field.default is dataclasses.MISSING
        assert field.default_factory is not dataclasses.MISSING
