"""Property-based tests on pipeline invariants.

Hypothesis generates random BEACON-shaped data; the invariants must
hold for *any* input, not just generator output:

- threshold monotonicity: raising the threshold can only shrink the
  detected cellular set;
- the detected set is always a subset of the observed set;
- Demand Units always renormalize to 100,000 regardless of input;
- AS filtering is monotone: tightening any rule never grows the
  accepted set.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.asn_classifier import ASFilterConfig, identify_cellular_ases
from repro.core.classifier import SubnetClassifier
from repro.core.ratios import RatioTable
from repro.datasets.beacon_dataset import BeaconDataset, SubnetBeaconCounts
from repro.datasets.demand_dataset import DEMAND_UNIT_TOTAL, DemandDataset
from repro.net.prefix import Prefix


@st.composite
def beacon_datasets(draw):
    """Random but internally consistent BEACON datasets."""
    count = draw(st.integers(min_value=1, max_value=30))
    dataset = BeaconDataset("2016-12")
    for index in range(count):
        hits = draw(st.integers(min_value=1, max_value=500))
        api = draw(st.integers(min_value=0, max_value=hits))
        cell = draw(st.integers(min_value=0, max_value=api))
        asn = draw(st.integers(min_value=1, max_value=5))
        dataset.add_counts(
            SubnetBeaconCounts(
                subnet=Prefix(4, (10 << 24) + (index << 8), 24),
                asn=asn,
                country="US",
                hits=hits,
                api_hits=api,
                cellular_hits=cell,
            )
        )
    return dataset


@settings(max_examples=50, deadline=None)
@given(beacon_datasets(), st.floats(min_value=0.05, max_value=0.95),
       st.floats(min_value=0.01, max_value=0.9))
def test_threshold_monotonicity(beacons, threshold, delta):
    table = RatioTable.from_beacons(beacons)
    low = SubnetClassifier(threshold=threshold).classify(table)
    high = SubnetClassifier(
        threshold=min(threshold + delta, 1.0)
    ).classify(table)
    assert high.cellular_set() <= low.cellular_set()


@settings(max_examples=50, deadline=None)
@given(beacon_datasets())
def test_detected_subset_of_observed(beacons):
    table = RatioTable.from_beacons(beacons)
    result = SubnetClassifier().classify(table)
    observed = set(result.labels)
    assert result.cellular_set() <= observed
    # And observed = exactly the subnets with API data.
    assert observed == {c.subnet for c in beacons if c.api_hits > 0}


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=10_000), min_size=1,
             max_size=40)
)
def test_demand_units_always_renormalize(requests):
    rows = [
        (Prefix(4, (20 << 24) + (index << 8), 24), 1, "US", count)
        for index, count in enumerate(requests)
    ]
    dataset = DemandDataset.from_request_totals(rows)
    assert dataset.total_du == pytest.approx(DEMAND_UNIT_TOTAL)
    assert all(record.du > 0 for record in dataset)


@settings(max_examples=30, deadline=None)
@given(beacon_datasets(), st.floats(min_value=0.0, max_value=5.0),
       st.integers(min_value=0, max_value=200))
def test_as_filter_monotone(beacons, min_du, min_hits):
    table = RatioTable.from_beacons(beacons)
    classification = SubnetClassifier().classify(table)
    demand = DemandDataset.from_request_totals(
        [(counts.subnet, counts.asn, counts.country, counts.hits)
         for counts in beacons]
    )
    loose = identify_cellular_ases(
        classification, demand, beacons, None,
        ASFilterConfig(min_cellular_du=min_du, min_beacon_hits=min_hits),
    )
    tight = identify_cellular_ases(
        classification, demand, beacons, None,
        ASFilterConfig(min_cellular_du=min_du * 2 + 0.1,
                       min_beacon_hits=min_hits * 2 + 10),
    )
    assert set(tight.accepted) <= set(loose.accepted)
    # Accounting always balances.
    for result in (loose, tight):
        assert result.accepted_count + len(result.excluded) == (
            result.candidate_count
        )
