"""Tests for the CDN platform deployment and routing."""

import pytest

from repro.cdn.platform import (
    PlatformDeployment,
    ServerRegion,
    deploy_platform,
)
from repro.datasets.demand_dataset import DemandDataset
from repro.net.prefix import Prefix
from repro.world.geo import default_geography


def region(region_id="US-0", country="US", lat=38.9, lon=-77.0,
           servers=10, host_asn=100):
    return ServerRegion(region_id, country, lat, lon, servers, host_asn)


class TestServerRegion:
    def test_rejects_empty_region(self):
        with pytest.raises(ValueError):
            region(servers=0)


class TestRouting:
    @pytest.fixture()
    def platform(self):
        regions = [
            region("US-0", "US", 38.9, -77.0, servers=100, host_asn=1),
            region("DE-0", "DE", 52.5, 13.4, servers=50, host_asn=2),
            region("JP-0", "JP", 35.7, 139.7, servers=50, host_asn=3),
        ]
        return PlatformDeployment(regions, default_geography())

    def test_requires_regions(self):
        with pytest.raises(ValueError):
            PlatformDeployment([], default_geography())

    def test_routes_to_nearest(self, platform):
        assert platform.route("CA").region_id == "US-0"
        assert platform.route("FR").region_id == "DE-0"
        assert platform.route("KR").region_id == "JP-0"

    def test_route_cached_and_stable(self, platform):
        first = platform.route("BR")
        assert platform.route("BR") is first

    def test_counts(self, platform):
        assert platform.total_servers == 200
        assert platform.network_count == 3
        assert len(platform.regions_in("US")) == 1

    def test_service_report(self, platform):
        demand = DemandDataset.from_request_totals(
            [
                (Prefix.parse("10.0.0.0/24"), 9, "US", 700),
                (Prefix.parse("10.0.1.0/24"), 9, "FR", 200),
                (Prefix.parse("10.0.2.0/24"), 9, "JP", 100),
            ]
        )
        report = platform.service_report(demand)
        assert report.in_country_fraction == pytest.approx(0.8)  # US + JP
        assert report.in_continent_fraction == pytest.approx(1.0)
        assert report.busiest_regions(1)[0][0] == "US-0"

    def test_service_report_requires_demand(self, platform):
        demand = DemandDataset.from_request_totals(
            [(Prefix.parse("10.0.0.0/24"), 9, "ZZ", 100)]
        )
        with pytest.raises(ValueError):
            platform.service_report(demand)


class TestDeployment:
    def test_deploy_from_world(self, tiny_world):
        platform = deploy_platform(tiny_world)
        assert len(platform) > 20
        assert platform.total_servers > 50
        # Hosts are real access/transit ASes of the world.
        for deployed in platform.regions[:20]:
            record = tiny_world.topology.registry.get(deployed.host_asn)
            assert record.as_type.is_access

    def test_server_mass_follows_demand(self, tiny_world):
        platform = deploy_platform(tiny_world)
        us_servers = sum(r.servers for r in platform.regions_in("US"))
        fj_servers = sum(r.servers for r in platform.regions_in("FJ"))
        assert us_servers > fj_servers

    def test_deterministic(self, tiny_world):
        a = deploy_platform(tiny_world)
        b = deploy_platform(tiny_world)
        assert [r.region_id for r in a.regions] == [
            r.region_id for r in b.regions
        ]
        assert a.total_servers == b.total_servers
