"""Unit tests for the browser population and API adoption model."""

import random

import pytest

from repro.world.population import (
    CELLULAR_BROWSER_MIX,
    FIG1_MONTHS,
    FIXED_BROWSER_MIX,
    STUDY_MONTH,
    Browser,
    api_adoption,
    default_population,
    month_index,
    month_range,
)


class TestMonths:
    def test_month_index_ordering(self):
        assert month_index("2016-12") == month_index("2017-01") - 1
        assert month_index("2016-01") == month_index("2015-12") + 1

    def test_month_index_validation(self):
        with pytest.raises(ValueError):
            month_index("2016-13")

    def test_month_range(self):
        months = month_range("2016-11", "2017-02")
        assert months == ["2016-11", "2016-12", "2017-01", "2017-02"]
        with pytest.raises(ValueError):
            month_range("2017-01", "2016-01")

    def test_fig1_window(self):
        assert FIG1_MONTHS[0] == "2015-09"
        assert FIG1_MONTHS[-1] == "2017-06"
        assert STUDY_MONTH in FIG1_MONTHS


class TestMixes:
    def test_mixes_normalized(self):
        assert sum(CELLULAR_BROWSER_MIX.values()) == pytest.approx(1.0)
        assert sum(FIXED_BROWSER_MIX.values()) == pytest.approx(1.0)

    def test_cellular_mix_more_mobile(self):
        mobile = (Browser.CHROME_MOBILE, Browser.ANDROID_WEBKIT,
                  Browser.SAFARI_IOS, Browser.FIREFOX_MOBILE)
        cellular_mobile = sum(CELLULAR_BROWSER_MIX[b] for b in mobile)
        fixed_mobile = sum(FIXED_BROWSER_MIX[b] for b in mobile)
        assert cellular_mobile > fixed_mobile

    def test_google_flag(self):
        assert Browser.CHROME_MOBILE.is_google
        assert Browser.ANDROID_WEBKIT.is_google
        assert not Browser.SAFARI_IOS.is_google


class TestAdoption:
    def test_interpolation_monotone_for_chrome(self):
        values = [api_adoption(Browser.CHROME_MOBILE, m) for m in FIG1_MONTHS]
        assert values == sorted(values)

    def test_clamped_outside_window(self):
        early = api_adoption(Browser.CHROME_MOBILE, "2014-01")
        assert early == api_adoption(Browser.CHROME_MOBILE, "2015-09")
        late = api_adoption(Browser.CHROME_MOBILE, "2020-01")
        assert late == api_adoption(Browser.CHROME_MOBILE, "2017-06")

    def test_ios_never_adopts(self):
        for month in FIG1_MONTHS:
            assert api_adoption(Browser.SAFARI_IOS, month) == 0.0

    def test_all_probabilities(self):
        for browser in Browser:
            for month in FIG1_MONTHS:
                assert 0.0 <= api_adoption(browser, month) <= 1.0


class TestPopulationModel:
    def test_fig1_anchors(self):
        population = default_population()
        dec16 = population.total_api_share("2016-12")
        jun17 = population.total_api_share("2017-06")
        assert 0.10 <= dec16 <= 0.16  # paper: 13.2%
        assert 0.12 <= jun17 <= 0.19  # paper: ~15%
        assert jun17 > dec16

    def test_google_dominance(self):
        population = default_population()
        assert population.google_share_of_enabled("2016-12") > 0.9

    def test_api_shares_sum_to_total(self):
        population = default_population()
        shares = population.api_share_by_browser("2016-12")
        assert sum(shares.values()) == pytest.approx(
            population.total_api_share("2016-12")
        )

    def test_draw_browser_respects_mix(self):
        population = default_population()
        rng = random.Random(3)
        draws = [population.draw_browser(rng, True) for _ in range(4000)]
        chrome_share = draws.count(Browser.CHROME_MOBILE) / len(draws)
        assert chrome_share == pytest.approx(
            CELLULAR_BROWSER_MIX[Browser.CHROME_MOBILE], abs=0.03
        )

    def test_global_mix_weighted(self):
        population = default_population()
        mix = population.global_mix()
        assert sum(mix.values()) == pytest.approx(1.0)
        # Global mix sits between the two class mixes.
        for browser in Browser:
            low = min(CELLULAR_BROWSER_MIX[browser], FIXED_BROWSER_MIX[browser])
            high = max(CELLULAR_BROWSER_MIX[browser], FIXED_BROWSER_MIX[browser])
            assert low - 1e-9 <= mix[browser] <= high + 1e-9
