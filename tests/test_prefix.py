"""Unit tests for repro.net.prefix."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import AddressError
from repro.net.prefix import Prefix, slash24_of, slash48_of, subnet_key


class TestConstruction:
    def test_make_masks_host_bits(self):
        prefix = Prefix.make(4, (192 << 24) | 0xFFFF, 24)
        assert str(prefix) == "192.0.255.0/24"

    def test_parse_round_trip(self):
        for text in ("10.0.0.0/8", "192.0.2.0/24", "2001:db8::/48", "::/0"):
            assert str(Prefix.parse(text)) == text

    def test_parse_bare_address_is_host_prefix(self):
        assert Prefix.parse("10.0.0.1").length == 32
        assert Prefix.parse("::1").length == 128

    def test_equal_spellings_hash_equal(self):
        assert Prefix.parse("10.0.0.5/8") == Prefix.parse("10.255.0.0/8")
        assert hash(Prefix.parse("10.0.0.5/8")) == hash(Prefix.parse("10.0.0.0/8"))

    @pytest.mark.parametrize("bad", ["10.0.0.0/33", "10.0.0.0/-1", "::/129"])
    def test_rejects_bad_lengths(self, bad):
        with pytest.raises(AddressError):
            Prefix.parse(bad)

    def test_rejects_garbage_length(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0/abc")


class TestGeometry:
    def test_num_addresses(self):
        assert Prefix.parse("10.0.0.0/24").num_addresses == 256
        assert Prefix.parse("10.0.0.0/32").num_addresses == 1

    def test_first_last_address(self):
        prefix = Prefix.parse("10.0.1.0/24")
        assert prefix.first_address == (10 << 24) | (1 << 8)
        assert prefix.last_address == prefix.first_address + 255

    def test_contains_address(self):
        prefix = Prefix.parse("10.0.1.0/24")
        assert prefix.contains_address(4, prefix.first_address)
        assert prefix.contains_address(4, prefix.last_address)
        assert not prefix.contains_address(4, prefix.last_address + 1)
        assert not prefix.contains_address(6, prefix.first_address)

    def test_contains_prefix(self):
        big = Prefix.parse("10.0.0.0/8")
        small = Prefix.parse("10.1.2.0/24")
        assert big.contains_prefix(small)
        assert not small.contains_prefix(big)
        assert big.contains_prefix(big)

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.200.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_supernet(self):
        assert str(Prefix.parse("10.1.2.0/24").supernet(8)) == "10.0.0.0/8"
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0/8").supernet(16)

    def test_subnets(self):
        subs = list(Prefix.parse("10.0.0.0/23").subnets(24))
        assert [str(s) for s in subs] == ["10.0.0.0/24", "10.0.1.0/24"]
        with pytest.raises(AddressError):
            next(Prefix.parse("10.0.0.0/24").subnets(23))

    def test_nth_address_bounds(self):
        prefix = Prefix.parse("10.0.0.0/24")
        assert prefix.nth_address(0) == prefix.first_address
        assert prefix.nth_address(255) == prefix.last_address
        with pytest.raises(AddressError):
            prefix.nth_address(256)

    def test_key_bits(self):
        assert Prefix.parse("128.0.0.0/1").key_bits() == "1"
        assert Prefix.parse("0.0.0.0/0").key_bits() == ""
        assert len(Prefix.parse("2001:db8::/48").key_bits()) == 48


class TestAggregationKeys:
    def test_slash24_of(self):
        address = (192 << 24) | (168 << 16) | (5 << 8) | 77
        assert str(slash24_of(address)) == "192.168.5.0/24"

    def test_slash48_of(self):
        address = (0x20010DB8 << 96) | 12345
        assert str(slash48_of(address)) == "2001:db8::/48"

    def test_subnet_key_dispatch(self):
        assert subnet_key(4, 0).length == 24
        assert subnet_key(6, 0).length == 48
        with pytest.raises(AddressError):
            subnet_key(9, 0)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_slash24_contains_source(self, address):
        assert slash24_of(address).contains_address(4, address)

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_slash48_contains_source(self, address):
        assert slash48_of(address).contains_address(6, address)


@given(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
    st.integers(min_value=0, max_value=32),
)
def test_supernet_always_contains(value, length, shorter):
    prefix = Prefix.make(4, value, length)
    if shorter <= length:
        assert prefix.supernet(shorter).contains_prefix(prefix)


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_parse_str_round_trip(value):
    prefix = Prefix.make(4, value, 24)
    assert Prefix.parse(str(prefix)) == prefix
