"""Unit tests for the country calibration profiles."""

import pytest

from repro.world.geo import Continent, default_geography
from repro.world.profiles import (
    ACTIVE_SLASH24_BY_CONTINENT,
    CELLULAR_SLASH24_BY_CONTINENT,
    CELLULAR_SLASH48_BY_CONTINENT,
    MIXED_FRACTION_BY_CONTINENT,
    CountryProfile,
    default_profiles,
    normalized_demand_shares,
    total_cellular_as_count,
)


class TestProfileValidation:
    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            CountryProfile("XX", -1, 0.5, 1)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            CountryProfile("XX", 1, 1.5, 1)

    def test_rejects_ipv6_exceeding_cellular(self):
        with pytest.raises(ValueError):
            CountryProfile("XX", 1, 0.5, 2, ipv6_as_count=3)

    def test_rejects_overpinned_shares(self):
        with pytest.raises(ValueError):
            CountryProfile("XX", 1, 0.5, 3, top_as_shares=((0.7, True), (0.5, True)))

    def test_rejects_bad_public_dns(self):
        with pytest.raises(ValueError):
            CountryProfile("XX", 1, 0.5, 1, public_dns_fraction=1.5)


class TestDefaultTable:
    def test_every_profile_has_geography(self):
        geo = default_geography()
        for iso2 in default_profiles():
            assert iso2 in geo

    def test_total_cellular_as_count_near_paper(self):
        total = total_cellular_as_count(list(default_profiles().values()))
        assert abs(total - 668) <= 5  # paper: 668 detected

    def test_paper_anchor_fractions(self):
        profiles = default_profiles()
        assert profiles["GH"].cellular_fraction == pytest.approx(0.959)
        assert profiles["LA"].cellular_fraction == pytest.approx(0.871)
        assert profiles["ID"].cellular_fraction == pytest.approx(0.63)
        assert profiles["US"].cellular_fraction == pytest.approx(0.166)
        assert profiles["FR"].cellular_fraction == pytest.approx(0.121)

    def test_paper_anchor_as_counts(self):
        profiles = default_profiles()
        assert profiles["US"].cellular_as_count == 40
        assert profiles["RU"].cellular_as_count == 29
        assert profiles["CN"].cellular_as_count == 25
        assert profiles["JP"].cellular_as_count == 17
        assert profiles["IN"].cellular_as_count == 13

    def test_china_flagged_excluded(self):
        assert default_profiles()["CN"].excluded_from_demand

    def test_public_dns_anchors_ordered(self):
        profiles = default_profiles()
        assert profiles["US"].public_dns_fraction < 0.05
        assert profiles["DZ"].public_dns_fraction > 0.9
        assert (
            profiles["US"].public_dns_fraction
            < profiles["IN"].public_dns_fraction
            < profiles["HK"].public_dns_fraction
            < profiles["DZ"].public_dns_fraction
        )

    def test_ipv6_deployment_anchors(self):
        profiles = default_profiles()
        # Paper section 4.3: Brazil 6; Myanmar, the U.S. and Japan 5 each.
        assert profiles["BR"].ipv6_as_count == 6
        assert profiles["MM"].ipv6_as_count == 5
        assert profiles["US"].ipv6_as_count == 5
        assert profiles["JP"].ipv6_as_count == 5
        total = sum(p.ipv6_as_count for p in profiles.values())
        assert abs(total - 52) <= 5  # paper: 52 IPv6 cellular ASes

    def test_calibrated_global_cellular_fraction(self):
        # Weighted cellular fraction should sit near the paper's 16.2%.
        profiles = [
            p for p in default_profiles().values() if not p.excluded_from_demand
        ]
        total = sum(p.demand_share for p in profiles)
        cellular = sum(p.demand_share * p.cellular_fraction for p in profiles)
        assert 0.12 <= cellular / total <= 0.22


class TestContinentTables:
    def test_continent_tables_complete(self):
        for table in (
            ACTIVE_SLASH24_BY_CONTINENT,
            CELLULAR_SLASH24_BY_CONTINENT,
            CELLULAR_SLASH48_BY_CONTINENT,
            MIXED_FRACTION_BY_CONTINENT,
        ):
            assert set(table) == set(Continent)

    def test_cellular_subset_of_active(self):
        for continent in Continent:
            assert (
                CELLULAR_SLASH24_BY_CONTINENT[continent]
                <= ACTIVE_SLASH24_BY_CONTINENT[continent]
            )

    def test_paper_totals(self):
        assert sum(CELLULAR_SLASH24_BY_CONTINENT.values()) == 350_687
        assert sum(CELLULAR_SLASH48_BY_CONTINENT.values()) == 23_230


class TestNormalizedShares:
    def test_sums_to_one(self):
        shares = normalized_demand_shares(list(default_profiles().values()))
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_includes_china(self):
        # China generates traffic; it is excluded from analyses only.
        shares = normalized_demand_shares(list(default_profiles().values()))
        assert shares["CN"] > 0

    def test_rejects_zero_demand(self):
        with pytest.raises(ValueError):
            normalized_demand_shares([CountryProfile("XX", 0, 0.5, 1)])
