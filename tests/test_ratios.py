"""Unit tests for cellular ratio computation."""

import pytest

from repro.core.ratios import RatioRecord, RatioTable
from repro.datasets.beacon_dataset import BeaconDataset, SubnetBeaconCounts
from repro.datasets.demand_dataset import DemandDataset
from repro.net.prefix import Prefix


def record(subnet="10.0.0.0/24", api=10, cell=5, asn=1, country="US", hits=None):
    return RatioRecord(
        subnet=Prefix.parse(subnet),
        asn=asn,
        country=country,
        api_hits=api,
        cellular_hits=cell,
        hits=hits if hits is not None else api * 2,
    )


def dataset_with(*counts):
    beacons = BeaconDataset("2016-12")
    for entry in counts:
        beacons.add_counts(entry)
    return beacons


class TestRatioRecord:
    def test_ratio(self):
        assert record(api=4, cell=1).ratio == 0.25

    def test_family(self):
        assert record().family == 4
        assert record(subnet="2001:db8::/48").family == 6


class TestRatioTable:
    def test_from_beacons(self):
        beacons = dataset_with(
            SubnetBeaconCounts(Prefix.parse("10.0.0.0/24"), 1, "US", 20, 10, 9),
            SubnetBeaconCounts(Prefix.parse("10.0.1.0/24"), 1, "US", 20, 0, 0),
        )
        table = RatioTable.from_beacons(beacons)
        # Subnets without API hits cannot have a ratio and are dropped.
        assert len(table) == 1
        assert table.get(Prefix.parse("10.0.0.0/24")).ratio == 0.9

    def test_min_api_hits_filter(self):
        beacons = dataset_with(
            SubnetBeaconCounts(Prefix.parse("10.0.0.0/24"), 1, "US", 20, 3, 3),
            SubnetBeaconCounts(Prefix.parse("10.0.1.0/24"), 1, "US", 20, 10, 0),
        )
        table = RatioTable.from_beacons(beacons, min_api_hits=5)
        assert len(table) == 1
        with pytest.raises(ValueError):
            RatioTable.from_beacons(beacons, min_api_hits=0)

    def test_rejects_zero_api_records(self):
        with pytest.raises(ValueError):
            RatioTable([record(api=0, cell=0)])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            RatioTable([record(), record()])

    def test_family_views(self):
        table = RatioTable([record(), record(subnet="2001:db8::/48")])
        assert len(table.records(4)) == 1
        assert len(table.records(6)) == 1
        assert len(table.records()) == 2


class TestDistributions:
    def test_ratio_cdf(self):
        table = RatioTable(
            [
                record("10.0.0.0/24", api=10, cell=0),
                record("10.0.1.0/24", api=10, cell=10),
            ]
        )
        cdf = table.ratio_cdf(4)
        assert cdf.evaluate(0.0) == 0.5
        assert cdf.evaluate(1.0) == 1.0
        with pytest.raises(ValueError):
            table.ratio_cdf(6)

    def test_demand_weighted_cdf(self):
        table = RatioTable(
            [
                record("10.0.0.0/24", api=10, cell=0),
                record("10.0.1.0/24", api=10, cell=10),
            ]
        )
        demand = DemandDataset.from_request_totals(
            [
                (Prefix.parse("10.0.0.0/24"), 1, "US", 900),
                (Prefix.parse("10.0.1.0/24"), 1, "US", 100),
            ]
        )
        cdf = table.demand_weighted_cdf(4, demand)
        assert cdf.evaluate(0.0) == pytest.approx(0.9)

    def test_bucket_fractions(self):
        table = RatioTable(
            [
                record("10.0.0.0/24", api=100, cell=1),   # low
                record("10.0.1.0/24", api=100, cell=50),  # intermediate
                record("10.0.2.0/24", api=100, cell=99),  # high
                record("10.0.3.0/24", api=100, cell=0),   # low
            ]
        )
        buckets = table.bucket_fractions(4)
        assert buckets["low"] == 0.5
        assert buckets["intermediate"] == 0.25
        assert buckets["high"] == 0.25
        assert sum(buckets.values()) == pytest.approx(1.0)

    def test_bucket_validation(self):
        table = RatioTable([record()])
        with pytest.raises(ValueError):
            table.bucket_fractions(4, low=0.9, high=0.1)
