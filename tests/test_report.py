"""Unit tests for the plain-text table renderer."""

import pytest

from repro.analysis.report import fmt_num, fmt_pct, render_table


class TestFormatters:
    def test_fmt_pct(self):
        assert fmt_pct(0.162) == "16.2%"
        assert fmt_pct(0.5, digits=0) == "50%"

    def test_fmt_num(self):
        assert fmt_num(1234567) == "1,234,567"
        assert fmt_num(3.14159) == "3.14"
        assert fmt_num(2.0) == "2"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "count"], [["alpha", 10], ["b", 2000]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title(self):
        text = render_table(["a"], [["x"]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"
        assert text.splitlines()[1].startswith("=")

    def test_numbers_right_aligned(self):
        text = render_table(["h"], [["1,000"]])
        last = text.splitlines()[-1]
        assert last.endswith("1,000")

    def test_bool_cells(self):
        text = render_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_docstring_example(self):
        assert render_table(["k", "v"], [["a", 1]]) == "k | v\n--+--\na | 1"
