"""Unit tests for the fault-tolerance runtime (repro.runtime)."""

import io
import json
import time

import pytest

from repro.runtime.checkpoint import (
    CheckpointMismatch,
    CheckpointStore,
    atomic_write_text,
    atomic_writer,
)
from repro.runtime.guard import (
    ExperimentOutcome,
    GuardConfig,
    OutcomeStatus,
    TransientError,
    run_guarded,
    skipped_outcome,
)
from repro.runtime.manifest import RunManifest, dataset_digest
from repro.runtime.policies import (
    ErrorBudgetExceeded,
    IngestError,
    IngestFault,
    IngestPolicy,
    IngestStats,
    PolicyMode,
    line_error,
)
from repro.runtime.quarantine import (
    QuarantineSink,
    read_quarantine,
    replay_lines,
)


class TestIngestPolicy:
    def test_strict_raises_immediately(self):
        policy = IngestPolicy.strict()
        error = IngestError(3, "BeaconHit", "missing field", field="asn")
        with pytest.raises(IngestFault) as excinfo:
            policy.reject(error, "raw")
        assert "line 3" in str(excinfo.value)
        assert "asn" in str(excinfo.value)

    def test_skip_records_and_continues(self):
        policy = IngestPolicy.skip()
        policy.accept()
        policy.reject(IngestError(2, "T", "bad"), "raw")
        policy.accept()
        stats = policy.finish()
        assert (stats.total_lines, stats.ok_lines, stats.rejected_lines) == (
            3, 2, 1,
        )
        assert stats.error_rate == pytest.approx(1 / 3)

    def test_quarantine_requires_sink(self):
        with pytest.raises(ValueError):
            IngestPolicy(mode=PolicyMode.QUARANTINE)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            IngestPolicy.skip(error_budget=1.5)

    def test_finish_enforces_budget_on_small_streams(self):
        # Below budget_min_lines the mid-stream check never fires, but
        # end-of-stream still refuses a stream that was 50% garbage.
        policy = IngestPolicy.skip(error_budget=0.01)
        policy.accept()
        policy.reject(IngestError(2, "T", "bad"), "raw")
        with pytest.raises(ErrorBudgetExceeded):
            policy.finish()

    def test_stats_cap_records_but_keeps_counting(self):
        stats = IngestStats(max_recorded=2)
        for line_no in range(5):
            stats.record_error(IngestError(line_no, "T", "bad"))
        assert stats.rejected_lines == 5
        assert len(stats.errors) == 2

    def test_line_error_classifies_json_and_keyerror(self):
        json_exc = None
        try:
            json.loads("{broken")
        except json.JSONDecodeError as exc:
            json_exc = exc
        error = line_error(4, "T", "{broken", json_exc)
        assert "invalid JSON" in error.reason
        error = line_error(5, "T", "{}", KeyError("subnet"))
        assert error.field == "subnet"
        assert error.snippet == "{}"

    def test_snippet_is_trimmed(self):
        error = line_error(1, "T", "x" * 500, ValueError("boom"))
        assert len(error.snippet) <= 80
        assert error.snippet.endswith("...")


class TestQuarantine:
    def test_round_trip_and_replay(self):
        sidecar = io.StringIO()
        sink = QuarantineSink(sidecar)
        sink.write(IngestError(7, "BeaconHit", "bad", field="ip"), "rawline\n")
        sink.write(IngestError(9, "BeaconHit", "worse"), "other")
        assert sink.count == 2
        sidecar.seek(0)
        records = list(read_quarantine(sidecar))
        assert [r.error.line_no for r in records] == [7, 9]
        assert records[0].error.field == "ip"
        sidecar.seek(0)
        assert list(replay_lines(sidecar)) == ["rawline", "other"]

    def test_path_sink_opens_lazily(self, tmp_path):
        path = tmp_path / "sub" / "q.jsonl"
        with QuarantineSink(path) as sink:
            pass
        assert not path.exists()  # clean load leaves no empty sidecar
        with QuarantineSink(path) as sink:
            sink.write(IngestError(1, "T", "bad"), "raw")
        assert path.exists()
        with path.open() as stream:
            assert len(list(read_quarantine(stream))) == 1


class TestGuard:
    def test_ok_outcome_carries_result(self):
        outcome = run_guarded("exp", lambda: 42)
        assert outcome.status is OutcomeStatus.OK
        assert outcome.ok and not outcome.is_failure
        assert outcome.result == 42
        assert outcome.attempts == 1

    def test_failure_is_captured_not_raised(self):
        def boom():
            raise ZeroDivisionError("1/0")

        outcome = run_guarded("exp", boom)
        assert outcome.status is OutcomeStatus.FAILED
        assert outcome.is_failure
        assert "ZeroDivisionError" in outcome.error

    def test_logic_errors_are_not_retried(self):
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("deterministic")

        run_guarded("exp", boom, GuardConfig(retries=3, backoff_s=0.0))
        assert len(calls) == 1

    def test_transient_errors_retry_until_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientError("blip")
            return "done"

        outcome = run_guarded(
            "exp", flaky, GuardConfig(retries=3, backoff_s=0.0)
        )
        assert outcome.ok and outcome.result == "done"
        assert outcome.attempts == 3

    def test_retries_are_bounded(self):
        def always():
            raise TransientError("blip")

        outcome = run_guarded(
            "exp", always, GuardConfig(retries=2, backoff_s=0.0)
        )
        assert outcome.status is OutcomeStatus.FAILED
        assert outcome.attempts == 3  # 1 initial + 2 retries

    def test_timeout_produces_timed_out(self):
        outcome = run_guarded(
            "exp", lambda: time.sleep(5), GuardConfig(timeout_s=0.05)
        )
        assert outcome.status is OutcomeStatus.TIMED_OUT
        assert outcome.is_failure
        assert "wall-clock" in outcome.error

    def test_skipped_outcome(self):
        outcome = skipped_outcome("exp", "already done")
        assert outcome.status is OutcomeStatus.SKIPPED
        assert not outcome.is_failure and not outcome.ok

    def test_describe_mentions_attempts_and_error(self):
        outcome = ExperimentOutcome(
            "exp", OutcomeStatus.FAILED, error="boom", attempts=2
        )
        text = outcome.describe()
        assert "exp" in text and "2 attempts" in text and "boom" in text

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GuardConfig(timeout_s=0)
        with pytest.raises(ValueError):
            GuardConfig(retries=-1)


class TestAtomicWrites:
    def test_atomic_write_text(self, tmp_path):
        target = tmp_path / "nested" / "file.txt"
        atomic_write_text(target, "hello")
        assert target.read_text() == "hello"
        atomic_write_text(target, "world")
        assert target.read_text() == "world"

    def test_no_temp_litter_on_success(self, tmp_path):
        target = tmp_path / "file.txt"
        with atomic_writer(target) as stream:
            stream.write("data")
        assert [p.name for p in tmp_path.iterdir()] == ["file.txt"]


class TestCheckpointStore:
    def test_mark_and_query(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        assert store.completed() == []
        assert not store.is_done("fig1")
        store.mark_done("fig1", duration_s=1.25)
        assert store.is_done("fig1")
        assert store.completed() == ["fig1"]
        record = store.completion_record("fig1")
        assert record["status"] == "ok"
        assert record["duration_s"] == pytest.approx(1.25)
        assert store.completion_record("fig2") is None

    def test_bind_fresh_then_resume(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        manifest = RunManifest.for_run(seed=1, scale=0.01)
        bound = store.bind(manifest)
        assert bound is manifest
        # A second bind with an equivalent manifest resumes the stored
        # one (its accumulated timings survive).
        stored = store.load_manifest()
        stored.record_timing("experiment.fig1", 2.0)
        store.save_manifest(stored)
        resumed = CheckpointStore(tmp_path / "ckpt").bind(
            RunManifest.for_run(seed=1, scale=0.01)
        )
        assert resumed.stage_timings["experiment.fig1"] == pytest.approx(2.0)

    def test_bind_rejects_mismatched_run(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.bind(RunManifest.for_run(seed=1, scale=0.01))
        with pytest.raises(CheckpointMismatch):
            store.bind(RunManifest.for_run(seed=2, scale=0.01))
        with pytest.raises(CheckpointMismatch):
            store.bind(RunManifest.for_run(seed=1, scale=0.02))

    def test_bind_rejects_digest_mismatch(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.bind(
            RunManifest.for_run(
                seed=1, scale=0.01, dataset_digests={"beacon": "aaa"}
            )
        )
        with pytest.raises(CheckpointMismatch):
            store.bind(
                RunManifest.for_run(
                    seed=1, scale=0.01, dataset_digests={"beacon": "bbb"}
                )
            )

    def test_truncated_manifest_is_a_checkpoint_error(self, tmp_path):
        """Half-written JSON must surface a remedy, not a traceback."""
        store = CheckpointStore(tmp_path / "ckpt")
        store.bind(RunManifest.for_run(seed=1, scale=0.01))
        full = store.manifest_path.read_text()
        store.manifest_path.write_text(full[: len(full) // 2])
        with pytest.raises(CheckpointMismatch, match="truncated"):
            store.load_manifest()
        with pytest.raises(CheckpointMismatch, match="start fresh"):
            CheckpointStore(tmp_path / "ckpt").bind(
                RunManifest.for_run(seed=1, scale=0.01)
            )

    def test_wrong_shape_manifest_is_a_checkpoint_error(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.directory.mkdir(parents=True)
        store.manifest_path.write_text('{"not": "a manifest"}')
        with pytest.raises(CheckpointMismatch, match="malformed"):
            store.load_manifest()


class TestManifest:
    def test_json_round_trip(self):
        manifest = RunManifest.for_run(
            seed=3,
            scale=0.005,
            dataset_digests={"beacon": "abc"},
            stage_timings={"ratios": 0.5},
        )
        clone = RunManifest.from_json(manifest.to_json())
        assert clone.seed == 3
        assert clone.scale == 0.005
        assert clone.dataset_digests == {"beacon": "abc"}
        assert clone.stage_timings == {"ratios": 0.5}
        assert clone.versions["python"]
        assert clone.incompatibility(manifest) is None

    def test_record_timing_accumulates(self):
        manifest = RunManifest.for_run(seed=0, scale=1.0)
        manifest.record_timing("stage", 1.0)
        manifest.record_timing("stage", 0.5)
        assert manifest.stage_timings["stage"] == pytest.approx(1.5)

    def test_dataset_digest_is_stable_and_sensitive(self):
        from repro.datasets.demand_dataset import DemandDataset
        from repro.net.prefix import Prefix

        def build(du):
            return DemandDataset.from_request_totals(
                [(Prefix.parse("10.0.0.0/24"), 1, "US", du)]
            )

        assert dataset_digest(build(5)) == dataset_digest(build(5))
        # Same normalized DU but different window metadata must differ.
        other = DemandDataset.from_request_totals(
            [(Prefix.parse("10.0.0.0/24"), 1, "US", 5)], window_days=14
        )
        assert dataset_digest(build(5)) != dataset_digest(other)


class TestRunAllGuarded:
    """Integration with the experiment registry (shared session lab)."""

    def test_injected_failure_is_isolated(self, lab, monkeypatch):
        from repro.experiments.base import INJECT_FAIL_ENV, run_all_guarded

        monkeypatch.setenv(INJECT_FAIL_ENV, "table1")
        outcomes = run_all_guarded(lab)
        assert outcomes["table1"].status is OutcomeStatus.FAILED
        assert "injected failure" in outcomes["table1"].error
        others = [o for eid, o in outcomes.items() if eid != "table1"]
        assert others and all(o.ok for o in others)

    def test_checkpoint_marks_and_skips(self, lab, tmp_path, monkeypatch):
        from repro.experiments.base import INJECT_FAIL_ENV, run_all_guarded

        store = CheckpointStore(tmp_path / "ckpt")
        monkeypatch.setenv(INJECT_FAIL_ENV, "table1")
        first = run_all_guarded(lab, checkpoint=store)
        assert not store.is_done("table1")
        assert store.is_done("table2")

        monkeypatch.delenv(INJECT_FAIL_ENV)
        second = run_all_guarded(lab, checkpoint=store)
        assert second["table1"].ok
        assert second["table2"].status is OutcomeStatus.SKIPPED
        assert sum(1 for o in second.values() if o.status is OutcomeStatus.OK) == 1
        assert len(first) == len(second)
