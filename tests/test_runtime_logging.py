"""Structured logging: namespacing, run ids, deterministic fields."""

from __future__ import annotations

import io
import logging
import re

import pytest

import repro.runtime.logging as rlog
from repro.runtime.logging import (
    ROOT_LOGGER,
    configure_logging,
    current_run_id,
    format_fields,
    get_logger,
    log_event,
    set_run_id,
)


@pytest.fixture(autouse=True)
def _reset_logging_state():
    """Leave the process-wide logging config as we found it."""
    yield
    root = logging.getLogger(ROOT_LOGGER)
    if rlog._configured_handler is not None:
        root.removeHandler(rlog._configured_handler)
        rlog._configured_handler = None
    root.setLevel(logging.NOTSET)
    set_run_id("-")


class TestNamespacing:
    def test_loggers_live_under_cellspot(self):
        assert get_logger("stream.engine").name == "cellspot.stream.engine"
        assert get_logger("cellspot.x").name == "cellspot.x"

    def test_silent_by_default(self, capsys):
        get_logger("quiet").warning("nobody hears this")
        captured = capsys.readouterr()
        assert captured.err == "" and captured.out == ""


class TestConfigure:
    def test_lines_are_structured(self):
        sink = io.StringIO()
        configure_logging("info", stream=sink)
        set_run_id("abc123")
        log_event(get_logger("serve"), logging.INFO, "window.advance",
                  windows=3, subnets=10)
        line = sink.getvalue().strip()
        assert re.match(
            r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z info serve "
            r"run=abc123 window\.advance subnets=10 windows=3$",
            line,
        ), line

    def test_reconfigure_does_not_stack_handlers(self):
        sink = io.StringIO()
        configure_logging("info", stream=sink)
        configure_logging("info", stream=sink)
        get_logger("dup").info("once")
        assert sink.getvalue().count("once") == 1

    def test_level_gating(self):
        sink = io.StringIO()
        configure_logging("warning", stream=sink)
        logger = get_logger("gate")
        log_event(logger, logging.DEBUG, "invisible")
        log_event(logger, logging.ERROR, "visible")
        assert "invisible" not in sink.getvalue()
        assert "visible" in sink.getvalue()

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("loud")


class TestRunId:
    def test_generated_when_not_given(self):
        value = set_run_id()
        assert value == current_run_id()
        assert len(value) == 12

    def test_explicit_value_sticks(self):
        set_run_id("run-7")
        assert current_run_id() == "run-7"


class TestTraceContextInjection:
    """Records inside a span carry trace ids; outside they omit them."""

    def test_record_inside_a_span_carries_trace_and_span_ids(self):
        from repro.obs.trace import Tracer

        sink = io.StringIO()
        configure_logging("info", stream=sink)
        set_run_id("abc123")
        tracer = Tracer(trace_id="trace0001")
        with tracer.span("work") as sp:
            log_event(get_logger("traced"), logging.INFO, "step.done", n=1)
        line = sink.getvalue().strip()
        assert f"trace_id=trace0001 span_id={sp.span_id} " in line
        assert line.endswith("step.done n=1")

    def test_record_outside_any_span_omits_the_fields(self):
        sink = io.StringIO()
        configure_logging("info", stream=sink)
        log_event(get_logger("plain"), logging.INFO, "step.done")
        line = sink.getvalue().strip()
        assert "trace_id=" not in line
        assert "span_id=" not in line

    def test_nested_spans_stamp_the_innermost_span_id(self):
        from repro.obs.trace import Tracer

        sink = io.StringIO()
        configure_logging("info", stream=sink)
        tracer = Tracer()
        logger = get_logger("nested")
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                log_event(logger, logging.INFO, "deep")
            log_event(logger, logging.INFO, "shallow")
        deep, shallow = sink.getvalue().strip().splitlines()
        assert f"span_id={inner.span_id}" in deep
        assert f"span_id={outer.span_id}" in shallow

    def test_set_and_reset_are_balanced(self):
        token = rlog.set_trace_context("t", "s")
        assert rlog.current_trace_context() == ("t", "s")
        rlog.reset_trace_context(token)
        assert rlog.current_trace_context() is None
        rlog.reset_trace_context(None)  # tolerated no-op


class TestFormatFields:
    def test_sorted_and_deterministic(self):
        assert format_fields(b=1, a=2) == "a=2 b=1"

    def test_floats_are_compact(self):
        assert format_fields(rate=0.3333333333) == "rate=0.333333"

    def test_values_with_spaces_are_quoted(self):
        assert format_fields(msg="two words") == "msg='two words'"

    def test_empty_fields_is_empty_string(self):
        assert format_fields() == ""
