"""Unit and property tests for the samplers in repro.stats.sampling."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.sampling import (
    binomial,
    bounded_pareto,
    dirichlet_like,
    lognormal_weights,
    poisson,
    split_integer,
    zipf_weights,
)


class TestZipf:
    def test_normalized(self):
        weights = zipf_weights(10, exponent=1.2)
        assert sum(weights) == pytest.approx(1.0)
        assert all(w > 0 for w in weights)

    def test_descending(self):
        weights = zipf_weights(20, exponent=1.0)
        assert weights == sorted(weights, reverse=True)

    def test_exponent_zero_is_uniform(self):
        weights = zipf_weights(4, exponent=0.0)
        assert weights == pytest.approx([0.25] * 4)

    def test_rank_ratio(self):
        weights = zipf_weights(5, exponent=1.0)
        assert weights[0] / weights[4] == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(3, exponent=-1)


class TestLognormal:
    def test_normalized(self, rng):
        weights = lognormal_weights(rng, 50, sigma=1.5)
        assert sum(weights) == pytest.approx(1.0)
        assert len(weights) == 50

    def test_higher_sigma_more_skew(self):
        rng_a, rng_b = random.Random(7), random.Random(7)
        flat = lognormal_weights(rng_a, 500, sigma=0.1)
        skewed = lognormal_weights(rng_b, 500, sigma=2.5)
        assert max(skewed) > max(flat)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            lognormal_weights(rng, 0)
        with pytest.raises(ValueError):
            lognormal_weights(rng, 3, sigma=-0.1)


class TestBoundedPareto:
    def test_stays_in_bounds(self, rng):
        for _ in range(500):
            draw = bounded_pareto(rng, alpha=1.2, low=1.0, high=100.0)
            assert 1.0 <= draw <= 100.0 + 1e-9

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bounded_pareto(rng, 1.0, 0, 10)
        with pytest.raises(ValueError):
            bounded_pareto(rng, 1.0, 10, 5)
        with pytest.raises(ValueError):
            bounded_pareto(rng, 0, 1, 5)


class TestBinomial:
    def test_edges(self, rng):
        assert binomial(rng, 0, 0.5) == 0
        assert binomial(rng, 10, 0.0) == 0
        assert binomial(rng, 10, 1.0) == 10

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            binomial(rng, -1, 0.5)
        with pytest.raises(ValueError):
            binomial(rng, 1, 1.5)

    @pytest.mark.parametrize("n,p", [(30, 0.4), (5000, 0.001), (5000, 0.5),
                                     (5000, 0.999), (200, 0.1)])
    def test_mean_is_sane(self, n, p):
        # Covers all three internal regimes (exact, Poisson, normal).
        rng = random.Random(42)
        draws = [binomial(rng, n, p) for _ in range(800)]
        assert all(0 <= d <= n for d in draws)
        mean = sum(draws) / len(draws)
        std = math.sqrt(n * p * (1 - p)) + 1e-9
        assert abs(mean - n * p) < 5 * std / math.sqrt(len(draws)) + 0.5


class TestPoisson:
    def test_zero_mean(self, rng):
        assert poisson(rng, 0) == 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            poisson(rng, -1)

    @pytest.mark.parametrize("mean", [0.5, 5.0, 200.0])
    def test_mean_is_sane(self, mean):
        rng = random.Random(7)
        draws = [poisson(rng, mean) for _ in range(600)]
        average = sum(draws) / len(draws)
        assert abs(average - mean) < 5 * math.sqrt(mean / len(draws)) + 0.3


class TestSplitInteger:
    def test_sums_exactly(self, rng):
        parts = split_integer(rng, 100, [1, 2, 3, 4])
        assert sum(parts) == 100
        assert len(parts) == 4

    def test_proportionality(self, rng):
        parts = split_integer(rng, 1000, [1, 9])
        assert parts[0] == pytest.approx(100, abs=2)

    def test_zero_total(self, rng):
        assert split_integer(rng, 0, [1, 2]) == [0, 0]

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            split_integer(rng, -1, [1])
        with pytest.raises(ValueError):
            split_integer(rng, 10, [])
        with pytest.raises(ValueError):
            split_integer(rng, 10, [0, 0])

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.lists(st.floats(min_value=0.001, max_value=100), min_size=1, max_size=20),
    )
    def test_always_sums_and_nonnegative(self, total, weights):
        parts = split_integer(random.Random(1), total, weights)
        assert sum(parts) == total
        assert all(part >= 0 for part in parts)


class TestDirichletLike:
    def test_normalized(self, rng):
        base = [0.5, 0.3, 0.2]
        draw = dirichlet_like(rng, base)
        assert sum(draw) == pytest.approx(1.0)
        assert len(draw) == 3

    def test_concentration_tightens(self):
        base = [0.5, 0.5]
        loose = [dirichlet_like(random.Random(i), base, 2.0)[0] for i in range(200)]
        tight = [dirichlet_like(random.Random(i), base, 500.0)[0] for i in range(200)]
        spread = lambda xs: max(xs) - min(xs)
        assert spread(tight) < spread(loose)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            dirichlet_like(rng, [])
        with pytest.raises(ValueError):
            dirichlet_like(rng, [1.0], concentration=0)
        with pytest.raises(ValueError):
            dirichlet_like(rng, [0.0, 0.0])
