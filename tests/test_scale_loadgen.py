"""Heavy-tailed load synthesis + the loadgen client (repro.scale.loadgen)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.ratios import RatioRecord, RatioTable
from repro.net.prefix import Prefix
from repro.scale.loadgen import (
    PhaseReport,
    heavy_tail_queries,
    queries_from_catalog,
    run_loadgen,
    write_report,
)
from repro.scale.snapshot import SnapshotCatalog


def make_records(hit_profile):
    """Synthetic /24 ratio records with the given hit volumes."""
    records = []
    for index, hits in enumerate(hit_profile):
        subnet = Prefix.parse(f"198.18.{index}.0/24")
        records.append(
            RatioRecord(
                subnet=subnet,
                asn=64500 + index,
                country="US",
                api_hits=max(hits // 2, 1),
                cellular_hits=max(hits // 4, 0),
                hits=hits,
            )
        )
    return records


class TestHeavyTailQueries:
    def test_concentrates_on_hot_subnets(self):
        # One scorching subnet, many cold ones: the hot /24 must
        # dominate the sampled traffic (the paper's demand shape).
        records = make_records([100_000] + [10] * 49)
        queries = heavy_tail_queries(
            records, 2_000, seed=7, miss_fraction=0.0, cidr_fraction=0.0
        )
        hot = sum(1 for query in queries if query.startswith("198.18.0."))
        assert hot / len(queries) > 0.9

    def test_deterministic_under_seed(self):
        records = make_records([1000, 100, 10])
        first = heavy_tail_queries(records, 500, seed=3)
        second = heavy_tail_queries(records, 500, seed=3)
        different = heavy_tail_queries(records, 500, seed=4)
        assert first == second
        assert first != different

    def test_miss_and_cidr_fractions(self):
        records = make_records([100, 100, 100])
        queries = heavy_tail_queries(
            records, 5_000, seed=1, miss_fraction=0.1, cidr_fraction=0.05
        )
        misses = sum(1 for q in queries if q.startswith("203.0.113."))
        cidrs = sum(1 for q in queries if "/" in q)
        assert 0.05 < misses / len(queries) < 0.15
        assert 0.02 < cidrs / len(queries) < 0.09
        # All CIDR queries cover real table subnets.
        subnets = {str(record.subnet) for record in records}
        assert all(q in subnets for q in queries if "/" in q)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            heavy_tail_queries([], 10)
        with pytest.raises(ValueError):
            heavy_tail_queries(make_records([10]), 0)


class TestQueriesFromCatalog:
    def test_samples_latest_generation(self, tmp_path):
        catalog = SnapshotCatalog(tmp_path / "cat")
        catalog.publish(RatioTable(make_records([500, 50, 5])))
        queries = queries_from_catalog(tmp_path / "cat", 200, seed=2)
        assert len(queries) == 200
        assert queries == queries_from_catalog(tmp_path / "cat", 200, seed=2)

    def test_empty_catalog_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="no snapshot generation"):
            queries_from_catalog(tmp_path / "empty", 10)


class TestPhaseReport:
    def test_percentiles_and_rates(self):
        report = PhaseReport("throughput")
        report.requests = 10
        report.queries = 100
        report.shed = 20
        report.elapsed_s = 2.0
        report.latencies_s = [0.001 * (i + 1) for i in range(100)]
        payload = report.as_dict()
        assert payload["queries_per_s"] == pytest.approx(40.0)  # answered
        assert payload["request_p50_s"] == pytest.approx(0.050)
        assert payload["request_p99_s"] == pytest.approx(0.099)

    def test_empty_phase(self):
        payload = PhaseReport("warmup").as_dict()
        assert payload["queries_per_s"] == 0.0
        assert payload["request_p50_s"] is None
        assert payload["request_p99_s"] is None


class TestRunLoadgen:
    """Drive the client against a tiny in-test asyncio server."""

    def test_counts_answers_and_sheds(self, tmp_path):
        socket_path = tmp_path / "stub.sock"
        served = {"queries": 0}

        async def handler(reader, writer):
            while True:
                line = await reader.readline()
                if not line:
                    break
                request = json.loads(line)
                queries = request.get("qs") or [request.get("q")]
                served["queries"] += len(queries)
                # Shed every query for the covering-CIDR /24 blocks,
                # answer everything else.
                if any("/" in str(q) for q in queries):
                    payload = {
                        "ok": False, "error": "overloaded",
                        "overloaded": True,
                    }
                elif "qs" in request:
                    payload = {
                        "ok": True,
                        "results": [{"matched": False} for _ in queries],
                    }
                else:
                    payload = {"ok": True, "result": {"matched": False}}
                writer.write(
                    (json.dumps(payload, separators=(",", ":")) + "\n")
                    .encode()
                )
                await writer.drain()
            writer.close()

        async def scenario():
            server = await asyncio.start_unix_server(
                handler, path=str(socket_path)
            )
            try:
                queries = ["198.18.0.1"] * 90 + ["198.18.0.0/24"] * 10
                return await run_loadgen(
                    queries,
                    socket_path=socket_path,
                    concurrency=4,
                    batch=1,
                    warmup=8,
                    overload_queries=16,
                    overload_concurrency=8,
                )
            finally:
                server.close()
                await server.wait_closed()

        report = asyncio.run(scenario())
        assert report["ok"] is True
        names = [phase["name"] for phase in report["phases"]]
        assert names == ["warmup", "throughput", "overload"]
        throughput = report["phases"][1]
        assert throughput["queries"] == 100
        assert throughput["shed"] == 10
        assert throughput["queries_per_s"] > 0
        assert report["totals"]["queries"] == served["queries"]
        assert report["totals"]["errors"] == 0
        assert report["throughput_queries_per_s"] == pytest.approx(
            throughput["queries_per_s"]
        )

    def test_connection_refused_counts_errors(self, tmp_path):
        report = asyncio.run(
            run_loadgen(
                ["198.18.0.1"],
                socket_path=tmp_path / "nobody-home.sock",
                concurrency=2,
                batch=1,
                warmup=0,
            )
        )
        assert report["ok"] is False
        assert report["totals"]["errors"] == 2

    def test_validates_knobs(self):
        with pytest.raises(ValueError):
            asyncio.run(run_loadgen(["x"], socket_path="s", concurrency=0))
        with pytest.raises(ValueError):
            asyncio.run(run_loadgen(["x"]))  # no socket, no port


class TestWriteReport:
    def test_atomic_pretty_json(self, tmp_path):
        path = write_report(
            {"ok": True, "totals": {"queries": 5}},
            tmp_path / "reports" / "loadgen.json",
        )
        payload = json.loads(path.read_text())
        assert payload == {"ok": True, "totals": {"queries": 5}}
        assert not path.with_name(path.name + ".tmp").exists()
