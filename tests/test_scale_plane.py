"""Serving plane: worker protocol, front hardening, differential suite.

The two satellite regressions from the issue live here:

- *differential byte-identity*: multi-worker answers relayed by the
  front must be byte-for-byte what the single-process
  :class:`~repro.serve.service.CellSpotService` emits for the same
  table (modulo explicit ``overloaded`` sheds);
- *worker-kill -> respawn -> identical-answers*: a SIGKILLed worker is
  detected, respawned, and the plane keeps answering identically.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
import time
from pathlib import Path

import pytest

from repro.cdn.beacon import BeaconConfig
from repro.obs.metrics import MetricsRegistry
from repro.scale.plane import (
    PlaneConfig,
    SHED_RESPONSE,
    ServingPlane,
    merge_histogram_dicts,
    plane_metrics,
)
from repro.scale.snapshot import SnapshotCatalog
from repro.scale.worker import QueryWorker
from repro.serve.service import CellSpotService
from repro.stream.engine import StreamEngine
from repro.stream.sources import generated_events
from repro.stream.windows import WindowPolicy


@pytest.fixture(scope="module")
def engine(lab):
    engine = StreamEngine(policy=WindowPolicy(window_events=5_000))
    engine.ingest_many(
        generated_events(
            lab.world, BeaconConfig(demand_hits=40_000, base_hits=5)
        )
    )
    return engine


@pytest.fixture(scope="module")
def probes(engine):
    """Hits, covered addresses, and guaranteed misses."""
    subnets = [str(r.subnet) for r in engine.ratio_table(1).records()[:10]]
    addresses = [cidr.split("/")[0] for cidr in subnets[:4]]
    return subnets + addresses + ["203.0.113.9", "not an ip", "10.0.0.0/8"]


def service_bytes(service: CellSpotService, request: dict) -> bytes:
    """What the single-process service puts on the wire."""
    response = service.handle_request(request)
    return (json.dumps(response, separators=(",", ":")) + "\n").encode()


# ---- protocol-level units (no processes) --------------------------------


class TestPlaneConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"max_pending": 0},
            {"deadline_s": 0.0},
            {"deadline_s": -1.0},
            {"startup_timeout_s": 0.0},
            {"worker_reply_cap_s": 0.0},
            {"dispatch_retries": -1},
            {"stats_timeout_s": 0.0},
            {"obs_scrape_interval_s": 0.0},
            {"flight_records": 0},
            {"drill_slow_worker": (4, 0.01)},  # slot out of range
            {"drill_slow_worker": (0, 0.0)},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            PlaneConfig(**kwargs)

    def test_no_deadline_is_allowed(self):
        assert PlaneConfig(deadline_s=None).deadline_s is None

    def test_drill_on_a_valid_slot(self):
        config = PlaneConfig(workers=2, drill_slow_worker=(1, 0.005))
        assert config.drill_slow_worker == (1, 0.005)


class TestMergeHistogramDicts:
    def test_merges_counts_and_quantiles(self):
        registries = [MetricsRegistry(), MetricsRegistry()]
        for registry in registries:
            registry.histogram(
                "h", "test", bounds=(0.001, 0.01, 0.1)
            )
        for _ in range(98):
            registries[0].get("h").observe(0.0005)
        registries[0].get("h").observe(0.05)
        registries[1].get("h").observe(0.5)  # overflow bucket
        merged = merge_histogram_dicts(
            [registry.get("h").as_dict() for registry in registries]
        )
        assert merged["count"] == 100
        assert merged["buckets"]["0.001"] == 98
        assert merged["overflow"] == 1
        assert merged["p50"] == 0.001
        assert merged["p99"] == 0.1
        assert merged["sum"] == pytest.approx(98 * 0.0005 + 0.05 + 0.5)

    def test_empty_inputs(self):
        merged = merge_histogram_dicts([{}, {}])
        assert merged["count"] == 0
        assert merged["p99"] is None

    def test_no_inputs_at_all(self):
        merged = merge_histogram_dicts([])
        assert merged["count"] == 0
        assert merged["sum"] == 0.0
        assert merged["mean"] == 0.0
        assert merged["p50"] is None and merged["p99"] is None
        assert merged["buckets"] == {}

    def test_mismatched_bucket_edges_union(self):
        # Two workers whose histograms disagree on bounds: the merge
        # must union the edges instead of dropping either side.
        a = {"buckets": {"0.001": 5, "0.01": 1}, "overflow": 0,
             "count": 6, "sum": 0.008}
        b = {"buckets": {"0.005": 3, "0.05": 1}, "overflow": 2,
             "count": 6, "sum": 0.4}
        merged = merge_histogram_dicts([a, b])
        assert merged["count"] == 12
        assert merged["buckets"] == {
            "0.001": 5, "0.005": 3, "0.01": 1, "0.05": 1,
        }
        assert merged["overflow"] == 2
        assert merged["sum"] == pytest.approx(0.408)
        # Quantiles walk the *sorted* union of edges.
        assert merged["p50"] == 0.005

    def test_missing_and_empty_worker_payloads_are_skipped(self):
        real = {"buckets": {"0.01": 4}, "overflow": 0,
                "count": 4, "sum": 0.02}
        merged = merge_histogram_dicts([{}, real, {}])
        assert merged["count"] == 4
        assert merged["buckets"] == {"0.01": 4}

    def test_single_worker_passthrough(self):
        registry = MetricsRegistry()
        registry.histogram("h", "test", bounds=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 0.5):
            registry.get("h").observe(value)
        original = registry.get("h").as_dict()
        merged = merge_histogram_dicts([original])
        assert merged["count"] == original["count"]
        assert merged["sum"] == pytest.approx(original["sum"])
        assert merged["buckets"] == original["buckets"]
        assert merged["overflow"] == original["overflow"]
        assert merged["p50"] == original["p50"]
        assert merged["p99"] == original["p99"]

    def test_merged_quantiles_are_monotone(self):
        # p50 <= p99 must hold across lopsided merges too.
        payloads = [
            {"buckets": {"0.001": 90, "0.1": 1}, "overflow": 0,
             "count": 91, "sum": 0.2},
            {"buckets": {"0.01": 5}, "overflow": 3, "count": 8,
             "sum": 30.0},
        ]
        merged = merge_histogram_dicts(payloads)
        assert merged["p50"] <= merged["p99"]
        assert merged["p50"] == 0.001
        assert merged["p99"] == float("inf")  # overflow tail


class TestQueryWorkerProtocol:
    def test_protocol_errors(self, tmp_path):
        worker = QueryWorker(SnapshotCatalog(tmp_path / "cat"), 0.5, 1)
        bad = json.loads(worker.handle_line(b"{not json"))
        assert bad["ok"] is False and "bad JSON" in bad["error"]
        not_object = json.loads(worker.handle_line(b"[1,2]"))
        assert not_object["ok"] is False
        unknown = json.loads(worker.handle_line(b'{"op":"nope"}'))
        assert unknown["ok"] is False and "unknown op" in unknown["error"]
        missing = json.loads(worker.handle_line(b'{"op":"query"}'))
        assert "'q' or 'qs'" in missing["error"]
        bad_batch = json.loads(
            worker.handle_line(b'{"op":"query","qs":"x"}')
        )
        assert "'qs' must be a list" in bad_batch["error"]

    def test_query_before_any_generation(self, tmp_path):
        worker = QueryWorker(SnapshotCatalog(tmp_path / "cat"), 0.5, 1)
        response = json.loads(
            worker.handle_line(b'{"op":"query","q":"192.0.2.1"}')
        )
        assert response["ok"] is False
        assert "no snapshot generation" in response["error"]

    def test_ping_refresh_stats(self, engine, tmp_path):
        catalog = SnapshotCatalog(tmp_path / "cat")
        catalog.publish(engine.ratio_table(1))
        worker = QueryWorker(catalog, 0.5, 1)
        pong = json.loads(worker.handle_line(b'{"op":"ping"}'))
        assert pong == {"ok": True, "pong": True, "pid": os.getpid()}
        refreshed = json.loads(worker.handle_line(b'{"op":"refresh"}'))
        assert refreshed == {"ok": True, "generation": 1}
        worker.handle_line(b'{"op":"query","q":"192.0.2.1"}')
        stats = json.loads(worker.handle_line(b'{"op":"stats"}'))
        assert stats["ok"] is True
        assert stats["worker"]["generation"] == 1
        assert stats["worker"]["queries"] == 1
        assert stats["worker"]["index_entries"] > 0
        assert "scale_worker_query_latency_seconds" in stats["metrics"]

    def test_worker_matches_service_bytes(self, engine, probes, tmp_path):
        """Inline differential: worker output == service output."""
        catalog = SnapshotCatalog(tmp_path / "cat")
        catalog.publish(engine.ratio_table(1))
        worker = QueryWorker(catalog, 0.5, 1)
        service = CellSpotService(engine, demand=None)
        for query in probes:
            request = {"op": "query", "q": query}
            line = (json.dumps(request) + "\n").encode()
            assert worker.handle_line(line) == service_bytes(
                service, request
            ), query
        batch = {"op": "query", "qs": probes}
        line = (json.dumps(batch) + "\n").encode()
        assert worker.handle_line(line) == service_bytes(service, batch)


class TestFrontHardening:
    """Admission / deadline behaviour, exercised without processes."""

    def make_plane(self, tmp_path, **overrides) -> ServingPlane:
        defaults = dict(workers=1, max_pending=2, deadline_s=0.05)
        defaults.update(overrides)
        return ServingPlane(
            tmp_path / "cat",
            config=PlaneConfig(**defaults),
            registry=MetricsRegistry(),
        )

    def run(self, coroutine):
        return asyncio.run(coroutine)

    def test_bad_json_and_unknown_op(self, tmp_path):
        plane = self.make_plane(tmp_path)
        response = json.loads(self.run(plane.handle_line(b"{oops")))
        assert response["ok"] is False and "bad JSON" in response["error"]
        response = json.loads(self.run(plane.handle_line(b"[]")))
        assert response["ok"] is False
        response = json.loads(self.run(plane.handle_line(b'{"op":"x"}')))
        assert "unknown op" in response["error"]

    def test_admission_control_sheds_beyond_max_pending(self, tmp_path):
        plane = self.make_plane(tmp_path)
        plane._pending = plane.config.max_pending
        response = self.run(
            plane.handle_line(b'{"op":"query","q":"192.0.2.1"}')
        )
        assert response == SHED_RESPONSE
        assert plane.metrics.get("scale_shed_total").value == 1
        assert plane._pending == plane.config.max_pending  # untouched

    def test_draining_plane_sheds_queries(self, tmp_path):
        plane = self.make_plane(tmp_path)
        plane.request_shutdown()
        response = self.run(
            plane.handle_line(b'{"op":"query","q":"192.0.2.1"}')
        )
        assert response == SHED_RESPONSE

    def test_deadline_sheds_when_no_worker_frees_up(self, tmp_path):
        plane = self.make_plane(tmp_path, deadline_s=0.05)

        async def scenario():
            started = time.perf_counter()
            # Idle queue is empty (no workers started): the request
            # must shed at its deadline instead of waiting forever.
            response = await plane.handle_line(
                b'{"op":"query","q":"192.0.2.1"}'
            )
            return response, time.perf_counter() - started

        response, elapsed = self.run(scenario())
        assert response == SHED_RESPONSE
        assert elapsed < 5.0
        assert plane.metrics.get("scale_shed_total").value == 1
        assert plane.metrics.get("scale_request_latency_seconds").count == 1

    def test_expired_deadline_sheds_immediately(self, tmp_path):
        plane = self.make_plane(tmp_path)

        async def scenario():
            return await plane._dispatch(
                b'{"op":"query","q":"x"}', time.perf_counter() - 1.0
            )

        assert self.run(scenario()) == SHED_RESPONSE

    def test_shed_response_is_the_service_shape(self):
        assert json.loads(SHED_RESPONSE) == {
            "ok": False, "error": "overloaded", "overloaded": True,
        }

    def test_plane_metrics_registers_idempotently(self):
        registry = MetricsRegistry()
        assert plane_metrics(registry) is registry
        plane_metrics(registry)  # second call must not raise
        assert registry.get("scale_shed_total").value == 0

    def test_stats_timeout_is_counted_and_logged(self, tmp_path):
        plane = self.make_plane(tmp_path, stats_timeout_s=0.05)

        class HangingHandle:
            slot = 3
            alive = True

            async def request(self, _line):
                await asyncio.sleep(30.0)

        plane._workers.append(HangingHandle())
        # Capture at the source logger: configure_logging() (run by any
        # earlier in-process CLI test) sets propagate=False on the
        # "cellspot" root, so records never reach pytest's root handler.
        records = []
        handler = logging.Handler()
        handler.emit = records.append
        source = logging.getLogger("cellspot.scale.plane")
        previous_level = source.level
        source.addHandler(handler)
        source.setLevel(logging.WARNING)
        try:
            payloads = self.run(plane._worker_stats())
        finally:
            source.removeHandler(handler)
            source.setLevel(previous_level)
        assert payloads == []
        assert plane.metrics.get("scale_stats_timeouts_total").value == 1
        assert any(
            "scale.stats.timeout" in record.getMessage()
            and "slot=3" in record.getMessage()
            for record in records
        )
        summary = plane._plane_summary()
        assert summary["stats_timeouts"] == 1

    def test_stats_connection_error_is_not_a_timeout(self, tmp_path):
        plane = self.make_plane(tmp_path)

        class DeadHandle:
            slot = 0
            alive = True

            async def request(self, _line):
                raise ConnectionResetError("worker closed the connection")

        plane._workers.append(DeadHandle())
        assert self.run(plane._worker_stats()) == []
        assert plane.metrics.get("scale_stats_timeouts_total").value == 0


# ---- full plane over real worker processes ------------------------------


async def _plane_scenario(catalog_dir, socket_path, service, probes):
    """Differential + kill/respawn + stats + drain, one plane lifetime."""
    plane = ServingPlane(
        catalog_dir,
        config=PlaneConfig(
            workers=2, max_pending=32, deadline_s=5.0,
            startup_timeout_s=60.0,
        ),
        registry=MetricsRegistry(),
    )
    ready = asyncio.Event()
    server_task = asyncio.create_task(
        plane.serve(
            socket_path=socket_path,
            ready_callback=lambda _plane: ready.set(),
        )
    )
    await asyncio.wait_for(ready.wait(), 90.0)

    reader, writer = await asyncio.open_unix_connection(str(socket_path))

    async def roundtrip(payload: dict) -> bytes:
        writer.write((json.dumps(payload) + "\n").encode())
        await writer.drain()
        return await asyncio.wait_for(reader.readline(), 30.0)

    async def differential_pass() -> None:
        for query in probes:
            request = {"op": "query", "q": query}
            assert await roundtrip(request) == service_bytes(
                service, request
            ), query
        batch = {"op": "query", "qs": list(probes)}
        assert await roundtrip(batch) == service_bytes(service, batch)

    # 1. Both workers up and answering.
    pong = json.loads(await roundtrip({"op": "ping"}))
    assert pong["ok"] and pong["workers"] == 2

    # 2. Differential byte-identity against the single-process service.
    await differential_pass()

    # 3. SIGKILL one worker; the reaper must respawn it.
    pid_file = plane.pid_file()
    pids_before = [
        int(token) for token in pid_file.read_text().split()
    ]
    assert len(pids_before) == 2
    os.kill(pids_before[0], signal.SIGKILL)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        stats = json.loads(await roundtrip({"op": "stats"}))
        plane_stats = stats["plane"]
        if (
            plane_stats["worker_respawns"] >= 1
            and plane_stats["workers"] == 2
        ):
            break
        await asyncio.sleep(0.1)
    else:
        raise AssertionError("killed worker was never respawned")
    assert plane_stats["worker_deaths"] >= 1
    pids_after = [int(token) for token in pid_file.read_text().split()]
    assert len(pids_after) == 2
    assert pids_before[0] not in pids_after  # dead pid dropped
    assert pids_before[1] in pids_after  # survivor kept

    # 4. ...and answers are still byte-identical after the respawn.
    await differential_pass()

    # 5. Merged stats expose worker latency + the front summary.
    stats = json.loads(await roundtrip({"op": "stats"}))
    assert stats["ok"] is True
    assert stats["query_latency"]["count"] > 0
    assert len(stats["workers"]) == 2
    assert stats["plane"]["generation"] == 1
    assert stats["plane"]["shed"] == 0

    # 6. Graceful drain via the shutdown op.
    done = json.loads(await roundtrip({"op": "shutdown"}))
    assert done == {"ok": True, "shutdown": True}
    writer.close()
    handled = await asyncio.wait_for(server_task, 30.0)
    assert handled > 0
    assert not any(handle.process.is_alive() for handle in plane._workers)


def test_plane_differential_and_respawn(engine, probes, tmp_path):
    catalog = SnapshotCatalog(tmp_path / "cat")
    catalog.publish(engine.ratio_table(1))
    service = CellSpotService(engine, demand=None)
    asyncio.run(
        _plane_scenario(
            tmp_path / "cat", tmp_path / "front.sock", service, probes
        )
    )


# ---- distributed observability over real worker processes ----------------


async def _plane_obs_scenario(catalog_dir, obs_dir, socket_path, service, probes):
    """Traced differential + kill harvest + federation, one plane lifetime."""
    plane = ServingPlane(
        catalog_dir,
        config=PlaneConfig(
            workers=2, max_pending=32, deadline_s=5.0,
            startup_timeout_s=60.0, obs_dir=obs_dir,
            obs_scrape_interval_s=0.1, flight_records=32,
        ),
        registry=MetricsRegistry(),
    )
    ready = asyncio.Event()
    server_task = asyncio.create_task(
        plane.serve(
            socket_path=socket_path,
            ready_callback=lambda _plane: ready.set(),
        )
    )
    await asyncio.wait_for(ready.wait(), 90.0)
    reader, writer = await asyncio.open_unix_connection(str(socket_path))

    async def roundtrip(payload: dict) -> bytes:
        writer.write((json.dumps(payload) + "\n").encode())
        await writer.drain()
        return await asyncio.wait_for(reader.readline(), 30.0)

    async def differential_pass() -> None:
        for query in probes:
            request = {"op": "query", "q": query}
            assert await roundtrip(request) == service_bytes(
                service, request
            ), query
        batch = {"op": "query", "qs": list(probes)}
        assert await roundtrip(batch) == service_bytes(service, batch)

    # 1. Tracing on, answers still byte-identical to the single-process
    #    service: the _trace envelope must never leak into a response.
    await differential_pass()

    # 2. Federation: the workers' exported series appear worker-tagged.
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        federated = plane.federation_metrics()
        tagged = [
            key for key in federated
            if key.startswith('scale_worker_query_latency_seconds{worker="')
        ]
        if len(tagged) == 2:
            break
        await asyncio.sleep(0.05)
    else:
        raise AssertionError("per-worker federated series never appeared")
    assert federated[tagged[0]][0] == "h"

    # 3. The health op exposes the rollup and the run trace id.
    health = json.loads(await roundtrip({"op": "health"}))
    assert health["trace_id"] == plane._obs.trace_id
    assert {row["worker"] for row in health["workers"]} == {"0", "1"}

    # 4. SIGKILL one worker: the front must harvest its flight ring
    #    into a death artifact naming a request before respawning.
    pids_before = [
        int(token) for token in plane.pid_file().read_text().split()
    ]
    os.kill(pids_before[0], signal.SIGKILL)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        stats = json.loads(await roundtrip({"op": "stats"}))
        if (
            stats["plane"]["worker_respawns"] >= 1
            and stats["plane"]["workers"] == 2
        ):
            break
        await asyncio.sleep(0.1)
    else:
        raise AssertionError("killed worker was never respawned")
    artifacts = sorted(Path(obs_dir).glob("postmortem-worker0-*.json"))
    assert artifacts, "worker death left no postmortem artifact"
    artifact = json.loads(artifacts[0].read_text())
    assert artifact["kind"] == "worker-death"
    assert artifact["slot"] == 0
    assert artifact["trace_id"] == plane._obs.trace_id
    assert artifact["dying_request"] is not None
    assert artifact["dying_request"]["rid"].startswith("req-")

    # 5. Still byte-identical after the respawn, tracing still on.
    await differential_pass()
    assert stats["plane"]["stats_timeouts"] == 0

    # 6. Drain.
    done = json.loads(await roundtrip({"op": "shutdown"}))
    assert done == {"ok": True, "shutdown": True}
    writer.close()
    await asyncio.wait_for(server_task, 30.0)
    return plane


def test_plane_obs_end_to_end(engine, probes, tmp_path):
    from repro.obs.postmortem import build_postmortem
    from repro.obs.timeseries import TimeSeriesReader

    catalog = SnapshotCatalog(tmp_path / "cat")
    catalog.publish(engine.ratio_table(1))
    service = CellSpotService(engine, demand=None)
    obs_dir = tmp_path / "obs"
    plane = asyncio.run(
        _plane_obs_scenario(
            tmp_path / "cat", obs_dir, tmp_path / "front.sock",
            service, probes,
        )
    )
    trace_id = plane._obs.trace_id

    # Offline join: front + worker spans share the run trace id.
    postmortem = build_postmortem(obs_dir)
    assert postmortem["trace_id"] == trace_id
    assert "front" in postmortem["sources"]
    assert any(src.startswith("worker-") for src in postmortem["sources"])
    names = {span["name"] for span in postmortem["spans"]}
    assert {"front.request", "worker.request", "worker.decode",
            "worker.lpm", "worker.enrich"} <= names
    front_sids = {
        span["sid"] for span in postmortem["spans"]
        if span["name"] == "front.request"
    }
    joined = [
        span for span in postmortem["spans"]
        if span["name"] == "worker.request" and span.get("pid") in front_sids
    ]
    assert joined, "no worker span joined to a front span"
    assert postmortem["artifacts"]

    # Offline per-worker series: readable with the stock reader.
    for slot in (0, 1):
        reader = TimeSeriesReader(obs_dir / f"worker-{slot}")
        points = reader.series("scale_worker_query_latency_seconds")
        assert points, f"worker {slot} exported no samples"
        assert points[-1][1]["count"] > 0
        assert points[-1][1]["p99"] is not None
