"""Serving plane: worker protocol, front hardening, differential suite.

The two satellite regressions from the issue live here:

- *differential byte-identity*: multi-worker answers relayed by the
  front must be byte-for-byte what the single-process
  :class:`~repro.serve.service.CellSpotService` emits for the same
  table (modulo explicit ``overloaded`` sheds);
- *worker-kill -> respawn -> identical-answers*: a SIGKILLed worker is
  detected, respawned, and the plane keeps answering identically.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

import pytest

from repro.cdn.beacon import BeaconConfig
from repro.obs.metrics import MetricsRegistry
from repro.scale.plane import (
    PlaneConfig,
    SHED_RESPONSE,
    ServingPlane,
    merge_histogram_dicts,
    plane_metrics,
)
from repro.scale.snapshot import SnapshotCatalog
from repro.scale.worker import QueryWorker
from repro.serve.service import CellSpotService
from repro.stream.engine import StreamEngine
from repro.stream.sources import generated_events
from repro.stream.windows import WindowPolicy


@pytest.fixture(scope="module")
def engine(lab):
    engine = StreamEngine(policy=WindowPolicy(window_events=5_000))
    engine.ingest_many(
        generated_events(
            lab.world, BeaconConfig(demand_hits=40_000, base_hits=5)
        )
    )
    return engine


@pytest.fixture(scope="module")
def probes(engine):
    """Hits, covered addresses, and guaranteed misses."""
    subnets = [str(r.subnet) for r in engine.ratio_table(1).records()[:10]]
    addresses = [cidr.split("/")[0] for cidr in subnets[:4]]
    return subnets + addresses + ["203.0.113.9", "not an ip", "10.0.0.0/8"]


def service_bytes(service: CellSpotService, request: dict) -> bytes:
    """What the single-process service puts on the wire."""
    response = service.handle_request(request)
    return (json.dumps(response, separators=(",", ":")) + "\n").encode()


# ---- protocol-level units (no processes) --------------------------------


class TestPlaneConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"max_pending": 0},
            {"deadline_s": 0.0},
            {"deadline_s": -1.0},
            {"startup_timeout_s": 0.0},
            {"worker_reply_cap_s": 0.0},
            {"dispatch_retries": -1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            PlaneConfig(**kwargs)

    def test_no_deadline_is_allowed(self):
        assert PlaneConfig(deadline_s=None).deadline_s is None


class TestMergeHistogramDicts:
    def test_merges_counts_and_quantiles(self):
        registries = [MetricsRegistry(), MetricsRegistry()]
        for registry in registries:
            registry.histogram(
                "h", "test", bounds=(0.001, 0.01, 0.1)
            )
        for _ in range(98):
            registries[0].get("h").observe(0.0005)
        registries[0].get("h").observe(0.05)
        registries[1].get("h").observe(0.5)  # overflow bucket
        merged = merge_histogram_dicts(
            [registry.get("h").as_dict() for registry in registries]
        )
        assert merged["count"] == 100
        assert merged["buckets"]["0.001"] == 98
        assert merged["overflow"] == 1
        assert merged["p50"] == 0.001
        assert merged["p99"] == 0.1
        assert merged["sum"] == pytest.approx(98 * 0.0005 + 0.05 + 0.5)

    def test_empty_inputs(self):
        merged = merge_histogram_dicts([{}, {}])
        assert merged["count"] == 0
        assert merged["p99"] is None


class TestQueryWorkerProtocol:
    def test_protocol_errors(self, tmp_path):
        worker = QueryWorker(SnapshotCatalog(tmp_path / "cat"), 0.5, 1)
        bad = json.loads(worker.handle_line(b"{not json"))
        assert bad["ok"] is False and "bad JSON" in bad["error"]
        not_object = json.loads(worker.handle_line(b"[1,2]"))
        assert not_object["ok"] is False
        unknown = json.loads(worker.handle_line(b'{"op":"nope"}'))
        assert unknown["ok"] is False and "unknown op" in unknown["error"]
        missing = json.loads(worker.handle_line(b'{"op":"query"}'))
        assert "'q' or 'qs'" in missing["error"]
        bad_batch = json.loads(
            worker.handle_line(b'{"op":"query","qs":"x"}')
        )
        assert "'qs' must be a list" in bad_batch["error"]

    def test_query_before_any_generation(self, tmp_path):
        worker = QueryWorker(SnapshotCatalog(tmp_path / "cat"), 0.5, 1)
        response = json.loads(
            worker.handle_line(b'{"op":"query","q":"192.0.2.1"}')
        )
        assert response["ok"] is False
        assert "no snapshot generation" in response["error"]

    def test_ping_refresh_stats(self, engine, tmp_path):
        catalog = SnapshotCatalog(tmp_path / "cat")
        catalog.publish(engine.ratio_table(1))
        worker = QueryWorker(catalog, 0.5, 1)
        pong = json.loads(worker.handle_line(b'{"op":"ping"}'))
        assert pong == {"ok": True, "pong": True, "pid": os.getpid()}
        refreshed = json.loads(worker.handle_line(b'{"op":"refresh"}'))
        assert refreshed == {"ok": True, "generation": 1}
        worker.handle_line(b'{"op":"query","q":"192.0.2.1"}')
        stats = json.loads(worker.handle_line(b'{"op":"stats"}'))
        assert stats["ok"] is True
        assert stats["worker"]["generation"] == 1
        assert stats["worker"]["queries"] == 1
        assert stats["worker"]["index_entries"] > 0
        assert "scale_worker_query_latency_seconds" in stats["metrics"]

    def test_worker_matches_service_bytes(self, engine, probes, tmp_path):
        """Inline differential: worker output == service output."""
        catalog = SnapshotCatalog(tmp_path / "cat")
        catalog.publish(engine.ratio_table(1))
        worker = QueryWorker(catalog, 0.5, 1)
        service = CellSpotService(engine, demand=None)
        for query in probes:
            request = {"op": "query", "q": query}
            line = (json.dumps(request) + "\n").encode()
            assert worker.handle_line(line) == service_bytes(
                service, request
            ), query
        batch = {"op": "query", "qs": probes}
        line = (json.dumps(batch) + "\n").encode()
        assert worker.handle_line(line) == service_bytes(service, batch)


class TestFrontHardening:
    """Admission / deadline behaviour, exercised without processes."""

    def make_plane(self, tmp_path, **overrides) -> ServingPlane:
        defaults = dict(workers=1, max_pending=2, deadline_s=0.05)
        defaults.update(overrides)
        return ServingPlane(
            tmp_path / "cat",
            config=PlaneConfig(**defaults),
            registry=MetricsRegistry(),
        )

    def run(self, coroutine):
        return asyncio.run(coroutine)

    def test_bad_json_and_unknown_op(self, tmp_path):
        plane = self.make_plane(tmp_path)
        response = json.loads(self.run(plane.handle_line(b"{oops")))
        assert response["ok"] is False and "bad JSON" in response["error"]
        response = json.loads(self.run(plane.handle_line(b"[]")))
        assert response["ok"] is False
        response = json.loads(self.run(plane.handle_line(b'{"op":"x"}')))
        assert "unknown op" in response["error"]

    def test_admission_control_sheds_beyond_max_pending(self, tmp_path):
        plane = self.make_plane(tmp_path)
        plane._pending = plane.config.max_pending
        response = self.run(
            plane.handle_line(b'{"op":"query","q":"192.0.2.1"}')
        )
        assert response == SHED_RESPONSE
        assert plane.metrics.get("scale_shed_total").value == 1
        assert plane._pending == plane.config.max_pending  # untouched

    def test_draining_plane_sheds_queries(self, tmp_path):
        plane = self.make_plane(tmp_path)
        plane.request_shutdown()
        response = self.run(
            plane.handle_line(b'{"op":"query","q":"192.0.2.1"}')
        )
        assert response == SHED_RESPONSE

    def test_deadline_sheds_when_no_worker_frees_up(self, tmp_path):
        plane = self.make_plane(tmp_path, deadline_s=0.05)

        async def scenario():
            started = time.perf_counter()
            # Idle queue is empty (no workers started): the request
            # must shed at its deadline instead of waiting forever.
            response = await plane.handle_line(
                b'{"op":"query","q":"192.0.2.1"}'
            )
            return response, time.perf_counter() - started

        response, elapsed = self.run(scenario())
        assert response == SHED_RESPONSE
        assert elapsed < 5.0
        assert plane.metrics.get("scale_shed_total").value == 1
        assert plane.metrics.get("scale_request_latency_seconds").count == 1

    def test_expired_deadline_sheds_immediately(self, tmp_path):
        plane = self.make_plane(tmp_path)

        async def scenario():
            return await plane._dispatch(
                b'{"op":"query","q":"x"}', time.perf_counter() - 1.0
            )

        assert self.run(scenario()) == SHED_RESPONSE

    def test_shed_response_is_the_service_shape(self):
        assert json.loads(SHED_RESPONSE) == {
            "ok": False, "error": "overloaded", "overloaded": True,
        }

    def test_plane_metrics_registers_idempotently(self):
        registry = MetricsRegistry()
        assert plane_metrics(registry) is registry
        plane_metrics(registry)  # second call must not raise
        assert registry.get("scale_shed_total").value == 0


# ---- full plane over real worker processes ------------------------------


async def _plane_scenario(catalog_dir, socket_path, service, probes):
    """Differential + kill/respawn + stats + drain, one plane lifetime."""
    plane = ServingPlane(
        catalog_dir,
        config=PlaneConfig(
            workers=2, max_pending=32, deadline_s=5.0,
            startup_timeout_s=60.0,
        ),
        registry=MetricsRegistry(),
    )
    ready = asyncio.Event()
    server_task = asyncio.create_task(
        plane.serve(
            socket_path=socket_path,
            ready_callback=lambda _plane: ready.set(),
        )
    )
    await asyncio.wait_for(ready.wait(), 90.0)

    reader, writer = await asyncio.open_unix_connection(str(socket_path))

    async def roundtrip(payload: dict) -> bytes:
        writer.write((json.dumps(payload) + "\n").encode())
        await writer.drain()
        return await asyncio.wait_for(reader.readline(), 30.0)

    async def differential_pass() -> None:
        for query in probes:
            request = {"op": "query", "q": query}
            assert await roundtrip(request) == service_bytes(
                service, request
            ), query
        batch = {"op": "query", "qs": list(probes)}
        assert await roundtrip(batch) == service_bytes(service, batch)

    # 1. Both workers up and answering.
    pong = json.loads(await roundtrip({"op": "ping"}))
    assert pong["ok"] and pong["workers"] == 2

    # 2. Differential byte-identity against the single-process service.
    await differential_pass()

    # 3. SIGKILL one worker; the reaper must respawn it.
    pid_file = plane.pid_file()
    pids_before = [
        int(token) for token in pid_file.read_text().split()
    ]
    assert len(pids_before) == 2
    os.kill(pids_before[0], signal.SIGKILL)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        stats = json.loads(await roundtrip({"op": "stats"}))
        plane_stats = stats["plane"]
        if (
            plane_stats["worker_respawns"] >= 1
            and plane_stats["workers"] == 2
        ):
            break
        await asyncio.sleep(0.1)
    else:
        raise AssertionError("killed worker was never respawned")
    assert plane_stats["worker_deaths"] >= 1
    pids_after = [int(token) for token in pid_file.read_text().split()]
    assert len(pids_after) == 2
    assert pids_before[0] not in pids_after  # dead pid dropped
    assert pids_before[1] in pids_after  # survivor kept

    # 4. ...and answers are still byte-identical after the respawn.
    await differential_pass()

    # 5. Merged stats expose worker latency + the front summary.
    stats = json.loads(await roundtrip({"op": "stats"}))
    assert stats["ok"] is True
    assert stats["query_latency"]["count"] > 0
    assert len(stats["workers"]) == 2
    assert stats["plane"]["generation"] == 1
    assert stats["plane"]["shed"] == 0

    # 6. Graceful drain via the shutdown op.
    done = json.loads(await roundtrip({"op": "shutdown"}))
    assert done == {"ok": True, "shutdown": True}
    writer.close()
    handled = await asyncio.wait_for(server_task, 30.0)
    assert handled > 0
    assert not any(handle.process.is_alive() for handle in plane._workers)


def test_plane_differential_and_respawn(engine, probes, tmp_path):
    catalog = SnapshotCatalog(tmp_path / "cat")
    catalog.publish(engine.ratio_table(1))
    service = CellSpotService(engine, demand=None)
    asyncio.run(
        _plane_scenario(
            tmp_path / "cat", tmp_path / "front.sock", service, probes
        )
    )
