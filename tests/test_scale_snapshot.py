"""Snapshot catalog + swap-safe index holder (repro.scale.snapshot).

The critical property under test: a reader hammering queries across a
generation swap never observes a torn index or a freed mmap page --
every answer it sees is exactly the complete answer of *some*
published generation.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cdn.beacon import BeaconConfig
from repro.scale.snapshot import (
    CatalogError,
    IndexHolder,
    SnapshotCatalog,
)
from repro.stream.engine import StreamEngine
from repro.stream.sources import generated_events
from repro.stream.windows import WindowPolicy


@pytest.fixture(scope="module")
def engines(lab):
    """Two engines at different ingest depths (distinct tables)."""
    first = StreamEngine(policy=WindowPolicy(window_events=5_000))
    events = generated_events(
        lab.world, BeaconConfig(demand_hits=30_000, base_hits=5)
    )
    first.ingest_many(events)
    second = StreamEngine(policy=WindowPolicy(window_events=5_000))
    events = generated_events(
        lab.world, BeaconConfig(demand_hits=60_000, base_hits=10)
    )
    second.ingest_many(events)
    return first, second


class TestSnapshotCatalog:
    def test_publish_latest_roundtrip(self, engines, tmp_path):
        catalog = SnapshotCatalog(tmp_path / "cat")
        assert catalog.latest() is None
        table = engines[0].ratio_table(1)
        info = catalog.publish(table, meta={"events": 123})
        assert info.number == 1
        assert info.meta == {"events": 123}
        seen = catalog.latest()
        assert seen.number == 1
        assert seen.table_path.exists()
        from repro.columnar.mmaptable import open_mmap

        mapped = open_mmap(seen.table_path)
        try:
            assert len(mapped) == len(table)
        finally:
            mapped.close()

    def test_generations_increment_and_prune(self, engines, tmp_path):
        catalog = SnapshotCatalog(tmp_path / "cat")
        table = engines[0].ratio_table(1)
        for _ in range(4):
            catalog.publish(table)
        assert catalog.generations() == [1, 2, 3, 4]
        removed = catalog.prune(keep=2)
        assert [path.name for path in removed] == [
            "gen-000001.rt", "gen-000002.rt",
        ]
        assert catalog.generations() == [3, 4]
        assert catalog.latest().number == 4

    def test_corrupt_pointer_raises_catalog_error(self, engines, tmp_path):
        catalog = SnapshotCatalog(tmp_path / "cat")
        catalog.publish(engines[0].ratio_table(1))
        (tmp_path / "cat" / "CURRENT").write_text('{"generation": 2')
        with pytest.raises(CatalogError):
            catalog.latest()
        # Publish heals: next generation number comes from disk scan
        # failing -> latest(missing_ok=True) also raises, so a torn
        # pointer must be surfaced to the *publisher* too.
        with pytest.raises(CatalogError):
            catalog.publish(engines[0].ratio_table(1))

    def test_pointer_naming_missing_snapshot(self, engines, tmp_path):
        catalog = SnapshotCatalog(tmp_path / "cat")
        info = catalog.publish(engines[0].ratio_table(1))
        info.table_path.unlink()
        with pytest.raises(CatalogError):
            catalog.latest()
        assert catalog.latest(missing_ok=True) is None

    def test_wait_for_generation_times_out(self, tmp_path):
        catalog = SnapshotCatalog(tmp_path / "cat")
        with pytest.raises(TimeoutError):
            catalog.wait_for_generation(timeout_s=0.2, poll_interval_s=0.02)


class TestIndexHolder:
    def test_refresh_swaps_only_on_new_generation(self, engines, tmp_path):
        catalog = SnapshotCatalog(tmp_path / "cat")
        holder = IndexHolder(catalog)
        assert holder.refresh() is False  # nothing published yet
        assert holder.current() is None
        catalog.publish(engines[0].ratio_table(1))
        assert holder.refresh() is True
        assert holder.generation == 1
        assert holder.refresh() is False  # same generation: no rebuild
        catalog.publish(engines[1].ratio_table(1))
        assert holder.refresh() is True
        assert holder.generation == 2

    def test_poll_survives_corrupt_pointer(self, engines, tmp_path):
        catalog = SnapshotCatalog(tmp_path / "cat")
        holder = IndexHolder(catalog)
        catalog.publish(engines[0].ratio_table(1))
        assert holder.poll() is True
        before = holder.current()
        (tmp_path / "cat" / "CURRENT").write_text("not json at all")
        assert holder.poll() is False  # keeps serving the old triple
        assert holder.current() is before

    def test_index_matches_table(self, engines, tmp_path):
        catalog = SnapshotCatalog(tmp_path / "cat")
        catalog.publish(engines[0].ratio_table(1))
        holder = IndexHolder(catalog)
        holder.refresh()
        _info, table, index = holder.current()
        assert len(index) == len(table)
        record = table.records()[0]
        result = index.query(str(record.subnet))
        assert result.matched
        assert result.entry.subnet == record.subnet

    def test_swap_hammer_readers_never_torn(self, engines, tmp_path):
        """Satellite: hammer queries across swaps; every answer must be
        byte-identical to one of the two complete generations."""
        catalog = SnapshotCatalog(tmp_path / "cat")
        tables = [engines[0].ratio_table(1), engines[1].ratio_table(1)]
        catalog.publish(tables[0])

        # Probe queries with known per-generation answers.
        probes = [str(r.subnet) for r in tables[1].records()[:12]]
        probes.append("203.0.113.9")  # a guaranteed miss
        from repro.serve.index import ClassificationIndex

        expected = []
        for table in tables:
            index = ClassificationIndex.build(table, demand=None)
            expected.append(
                {q: json.dumps(index.query(q).to_dict()) for q in probes}
            )
        allowed = {
            q: {expected[0][q], expected[1][q]} for q in probes
        }

        holder = IndexHolder(catalog)
        holder.refresh()
        stop = threading.Event()
        failures = []
        queries_run = [0] * 4

        def reader(slot: int) -> None:
            while not stop.is_set():
                triple = holder.current()
                if triple is None:
                    continue
                _info, _table, index = triple
                for query in probes:
                    got = json.dumps(index.query(query).to_dict())
                    if got not in allowed[query]:
                        failures.append((query, got))
                        stop.set()
                        return
                    queries_run[slot] += 1

        threads = [
            threading.Thread(target=reader, args=(slot,), daemon=True)
            for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        # Swap back and forth while readers hammer.
        swaps = 0
        for round_number in range(10):
            catalog.publish(tables[round_number % 2])
            if holder.refresh():
                swaps += 1
            catalog.prune(keep=2)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not failures, f"torn answers observed: {failures[:3]}"
        assert swaps == 10
        assert sum(queries_run) > 0
        # The holder ends on the last published generation.
        assert holder.generation == 11
