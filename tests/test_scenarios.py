"""Tests for the what-if scenario transforms."""

import pytest

from repro.world.profiles import default_profiles
from repro.world.scenarios import (
    demand_shift,
    ipv6_everywhere,
    mobile_first_world,
)


class TestMobileFirst:
    def test_fractions_only_rise(self):
        base = default_profiles()
        shifted = mobile_first_world()
        for iso2, profile in shifted.items():
            assert profile.cellular_fraction >= base[iso2].cellular_fraction
            assert profile.cellular_fraction <= 0.99

    def test_developing_markets_jump(self):
        shifted = mobile_first_world(floor=0.5, developing_floor=0.8)
        assert shifted["NG"].cellular_fraction >= 0.8  # already 0.5
        assert shifted["FR"].cellular_fraction == pytest.approx(0.5)

    def test_anchors_keep_higher_values(self):
        shifted = mobile_first_world()
        assert shifted["GH"].cellular_fraction == pytest.approx(0.959)

    def test_validation(self):
        with pytest.raises(ValueError):
            mobile_first_world(floor=0)


class TestIPv6Everywhere:
    def test_every_carrier_deploys(self):
        for profile in ipv6_everywhere().values():
            assert profile.ipv6_as_count == profile.cellular_as_count

    def test_other_fields_untouched(self):
        base = default_profiles()
        shifted = ipv6_everywhere()
        for iso2 in base:
            assert shifted[iso2].demand_share == base[iso2].demand_share
            assert shifted[iso2].cellular_fraction == (
                base[iso2].cellular_fraction
            )


class TestDemandShift:
    def test_scaling(self):
        base = default_profiles()
        shifted = demand_shift("IN", 3.0)
        assert shifted["IN"].demand_share == pytest.approx(
            3 * base["IN"].demand_share
        )
        assert shifted["US"].demand_share == base["US"].demand_share

    def test_validation(self):
        with pytest.raises(ValueError):
            demand_shift("IN", 0)
        with pytest.raises(KeyError):
            demand_shift("ZZ", 2.0)


class TestScenarioWorldsBuild:
    def test_mobile_first_builds_and_shifts_demand(self):
        from repro.world.build import WorldParams, build_world

        params = WorldParams(seed=3, scale=0.0015, background_as_count=50)
        base = build_world(params)
        shifted = build_world(params, profiles=mobile_first_world())

        def cellular_demand_share(world):
            subnets = [s for s in world.subnets() if s.country != "CN"]
            total = sum(s.demand_weight for s in subnets)
            return sum(
                s.demand_weight for s in subnets if s.is_cellular
            ) / total

        assert cellular_demand_share(shifted) > cellular_demand_share(base) + 0.15
