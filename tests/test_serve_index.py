"""The LPM query engine: lookups, query parsing, AS enrichment."""

from __future__ import annotations

import pytest

from repro.core.confidence import Verdict
from repro.core.ratios import RatioRecord, RatioTable
from repro.net.addr import parse_ip
from repro.net.prefix import Prefix
from repro.serve.index import ClassificationIndex


def _table() -> RatioTable:
    return RatioTable(
        [
            RatioRecord(
                subnet=Prefix.parse("10.1.2.0/24"), asn=100, country="DE",
                api_hits=80, cellular_hits=76, hits=120,
            ),
            RatioRecord(
                subnet=Prefix.parse("10.1.3.0/24"), asn=100, country="DE",
                api_hits=50, cellular_hits=2, hits=90,
            ),
            RatioRecord(
                subnet=Prefix.parse("2001:db8:1::/48"), asn=200, country="JP",
                api_hits=40, cellular_hits=30, hits=60,
            ),
        ]
    )


@pytest.fixture()
def index() -> ClassificationIndex:
    return ClassificationIndex.build(_table())


class TestLookups:
    def test_address_longest_prefix_match(self, index):
        family, address = parse_ip("10.1.2.77")
        entry = index.lookup_address(family, address)
        assert str(entry.subnet) == "10.1.2.0/24"
        assert entry.cellular is True
        assert entry.ratio == pytest.approx(76 / 80)

    def test_ipv6_lookup(self, index):
        family, address = parse_ip("2001:db8:1::42")
        entry = index.lookup_address(family, address)
        assert str(entry.subnet) == "2001:db8:1::/48"
        assert entry.asn == 200

    def test_unknown_address_is_a_miss(self, index):
        family, address = parse_ip("192.0.2.1")
        assert index.lookup_address(family, address) is None

    def test_prefix_query_uses_covering_entry(self, index):
        entry = index.lookup_prefix(Prefix.parse("10.1.2.128/25"))
        assert str(entry.subnet) == "10.1.2.0/24"

    def test_prefix_query_not_answered_by_fragment(self, index):
        # /16 is only partially covered by stored /24s: no answer.
        assert index.lookup_prefix(Prefix.parse("10.1.0.0/16")) is None

    def test_len_counts_entries(self, index):
        assert len(index) == 3


class TestTextQueries:
    def test_address_query(self, index):
        result = index.query("10.1.3.9")
        assert result.matched and result.error is None
        assert result.entry.cellular is False

    def test_cidr_query(self, index):
        result = index.query("10.1.2.0/24")
        assert result.matched
        assert result.entry.confidence in set(Verdict)

    def test_malformed_query_reports_error(self, index):
        result = index.query("not-an-address")
        assert not result.matched
        assert result.error

    def test_empty_query(self, index):
        assert index.query("   ").error == "empty query"

    def test_batch_preserves_order(self, index):
        answers = index.batch(["10.1.2.1", "garbage", "10.1.3.1"])
        assert [a.matched for a in answers] == [True, False, True]

    def test_to_dict_carries_the_paper_facts(self, index):
        payload = index.query("10.1.2.1").to_dict()
        assert payload["ok"] and payload["matched"]
        assert payload["subnet"] == "10.1.2.0/24"
        assert payload["asn"] == 100
        assert payload["cellular"] is True
        assert payload["confidence"] == "cellular"
        low, high = payload["interval"]
        assert 0 <= low <= payload["ratio"] <= high <= 1

    def test_to_dict_for_error(self, index):
        payload = index.query("zzz").to_dict()
        assert payload["ok"] is False and "error" in payload


class TestEnrichment:
    """With demand + AS context, entries carry the paper's AS verdicts."""

    @pytest.fixture(scope="class")
    def rich_index(self, tiny_world, beacon_hits):
        from repro.cdn.demand import DemandGenerator
        from repro.datasets.caida import ASClassificationDataset
        from repro.stream import StreamEngine, WindowPolicy

        engine = StreamEngine(policy=WindowPolicy(window_events=4096))
        engine.ingest_many(beacon_hits)
        demand = DemandGenerator(tiny_world).build_dataset()
        return ClassificationIndex.build(
            engine.ratio_table(),
            demand=demand,
            as_classes=ASClassificationDataset.from_world(tiny_world),
            hits_by_asn=engine.hits_by_asn(),
        )

    def test_some_entries_carry_as_verdicts(self, rich_index):
        verdicts = {
            entry.as_verdict
            for _, entry in self._entries(rich_index)
            if entry.as_verdict is not None
        }
        assert verdicts, "AS pipeline attached no verdicts at all"
        assert verdicts <= {
            "dedicated", "mixed",
            "excluded:rule1_low_cellular_demand",
            "excluded:rule2_low_beacon_hits",
            "excluded:rule3_non_access_class",
        }

    def test_demand_share_serialized(self, rich_index):
        for _, entry in self._entries(rich_index):
            if entry.demand_du:
                payload = rich_index.query(str(entry.subnet)).to_dict()
                assert payload["demand_du"] > 0
                assert 0 < payload["demand_share"] < 1
                return
        pytest.fail("no entry carried demand")

    @staticmethod
    def _entries(index):
        for family in (4, 6):
            yield from index._tries[family].items()
