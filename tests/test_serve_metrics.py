"""Metrics layer: counters, gauges, conservative histograms."""

from __future__ import annotations

import json

import pytest

from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    service_metrics,
)


class TestObsShim:
    """serve.metrics is a compatibility façade over repro.obs.metrics."""

    def test_classes_are_the_obs_classes(self):
        import repro.obs.metrics as obs

        assert Counter is obs.Counter
        assert Gauge is obs.Gauge
        assert Histogram is obs.Histogram
        assert MetricsRegistry is obs.MetricsRegistry

    def test_import_emits_one_deprecation_warning(self):
        """Pin the shim's warning: category, message, single shot.

        Module execution happens once per process, so the warning is
        raised at first import only; a reload re-executes the module
        body and must produce exactly one DeprecationWarning naming
        the canonical home.
        """
        import importlib
        import warnings

        import repro.serve.metrics as shim

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.reload(shim)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        assert "repro.obs.metrics" in message
        assert "service_metrics() remains canonical" in message

    def test_reimport_is_silent(self):
        """sys.modules hits never re-warn (no per-import spam)."""
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import repro.serve.metrics  # noqa: F401 -- cached import
        assert [w for w in caught
                if issubclass(w.category, DeprecationWarning)] == []


class TestCounter:
    def test_monotonic(self):
        counter = Counter("requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_never_decrements(self):
        with pytest.raises(ValueError):
            Counter("requests").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("depth")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_bounds_must_be_sorted(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(0.5, 0.1))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_observations_land_in_buckets(self):
        hist = Histogram("h", bounds=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.bucket_counts == [1, 1, 1, 1]
        assert hist.count == 4
        assert hist.mean == pytest.approx((0.005 + 0.05 + 0.5 + 5.0) / 4)

    def test_quantile_is_conservative_upper_bound(self):
        hist = Histogram("h", bounds=(0.01, 0.1, 1.0))
        for _ in range(99):
            hist.observe(0.005)
        hist.observe(0.5)
        assert hist.quantile(0.5) == 0.01  # never interpolated downward
        assert hist.quantile(0.99) == 0.01
        assert hist.quantile(1.0) == 1.0

    def test_quantile_edge_cases(self):
        hist = Histogram("h", bounds=(0.01,))
        assert hist.quantile(0.5) is None  # empty
        hist.observe(9.0)
        assert hist.quantile(0.5) == float("inf")  # overflow bucket
        with pytest.raises(ValueError):
            hist.quantile(0.0)

    def test_as_dict_shape(self):
        hist = Histogram("h", bounds=(0.1, 1.0))
        hist.observe(0.05)
        payload = hist.as_dict()
        assert payload["count"] == 1
        assert payload["buckets"] == {"0.1": 1, "1.0": 0}
        assert payload["overflow"] == 0


class TestRegistry:
    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="duplicate"):
            registry.gauge("x")

    def test_rate_uses_the_injected_clock(self):
        ticks = iter([100.0, 110.0, 110.0])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        counter = registry.counter("events")
        counter.inc(50)
        assert registry.rate("events") == pytest.approx(5.0)
        assert registry.uptime_s == pytest.approx(10.0)

    def test_render_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.histogram("lat").observe(0.001)
        payload = json.loads(registry.render_json())
        assert payload["a"]["value"] == 2
        assert payload["lat"]["count"] == 1
        assert "_uptime_s" in payload


def test_service_metrics_registers_the_serving_set():
    registry = service_metrics()
    for name in (
        "events_ingested_total",
        "events_quarantined_total",
        "window_advances_total",
        "queries_total",
        "query_errors_total",
        "snapshots_written_total",
        "index_rebuilds_total",
        "tracked_subnets",
        "ingest_events_per_s",
        "query_latency_seconds",
        "ingest_batch_seconds",
    ):
        assert registry.get(name) is not None
