"""The serve path's mmap ratio spool (satellite of the scale plane).

``CellSpotService`` with ``ratio_spool_dir`` publishes each rebuilt
ratio table as a snapshot generation and compiles the index from the
mapped file instead of a second heap copy.  Answers must be identical
with and without the spool, generations must accumulate (pruned to 2),
and decayed window policies -- whose fractional counts the int64
snapshot format refuses -- must skip the spool entirely.
"""

from __future__ import annotations

import itertools

import pytest

from repro.cdn.beacon import BeaconConfig
from repro.columnar.mmaptable import MmapRatioTable
from repro.scale.snapshot import SnapshotCatalog
from repro.serve.service import CellSpotService
from repro.stream.engine import StreamEngine
from repro.stream.sources import generated_events
from repro.stream.windows import WindowPolicy


def build_engine(lab, decay: float = 1.0, demand_hits: int = 30_000):
    engine = StreamEngine(
        policy=WindowPolicy(window_events=5_000, decay=decay)
    )
    engine.ingest_many(
        generated_events(
            lab.world, BeaconConfig(demand_hits=demand_hits, base_hits=5)
        )
    )
    return engine


def test_spooled_answers_match_in_heap(lab, tmp_path):
    plain = CellSpotService(build_engine(lab), demand=None)
    spooled = CellSpotService(
        build_engine(lab),
        demand=None,
        ratio_spool_dir=tmp_path / "spool",
    )
    table = plain.engine.ratio_table(1)
    probes = [str(record.subnet) for record in table.records()[:20]]
    probes += ["203.0.113.1", "198.51.100.7/24"]
    for query in probes:
        request = {"op": "query", "q": query}
        assert spooled.handle_request(request) == plain.handle_request(
            request
        ), query
    # The spooled rebuild compiled from the mapped generation.
    assert isinstance(spooled._spool_table, MmapRatioTable)
    catalog = SnapshotCatalog(tmp_path / "spool")
    assert catalog.generations() == [1]
    assert catalog.latest().meta["events"] == (
        spooled.engine.events_consumed
    )


def test_spool_generations_accumulate_and_prune(lab, tmp_path):
    service = CellSpotService(
        build_engine(lab),
        demand=None,
        ratio_spool_dir=tmp_path / "spool",
    )
    events = generated_events(
        lab.world, BeaconConfig(demand_hits=40_000, base_hits=5)
    )
    for _ in range(3):
        service.engine.ingest_many(itertools.islice(events, 5_000))
        response = service.handle_request({"op": "refresh"})
        assert response["ok"] is True
    catalog = SnapshotCatalog(tmp_path / "spool")
    # Three forced rebuilds: pruned to the newest two generations,
    # pointer tracking the newest.
    assert catalog.generations() == [2, 3]
    assert catalog.latest().number == 3
    # The superseded mapping was closed after each swap.
    assert service._spool_table is not None
    response = service.handle_request(
        {"op": "query", "q": "203.0.113.1"}
    )
    assert response["ok"] is True


def test_decayed_policy_skips_spool(lab, tmp_path):
    service = CellSpotService(
        build_engine(lab, decay=0.5),
        demand=None,
        ratio_spool_dir=tmp_path / "spool",
    )
    response = service.handle_request({"op": "query", "q": "203.0.113.1"})
    assert response["ok"] is True
    assert service._spool_table is None
    assert SnapshotCatalog(tmp_path / "spool").generations() == []


def test_no_spool_dir_keeps_legacy_path(lab):
    service = CellSpotService(build_engine(lab), demand=None)
    assert service._ratio_spool is None
    response = service.handle_request({"op": "query", "q": "203.0.113.1"})
    assert response["ok"] is True
    assert service._spool_table is None
