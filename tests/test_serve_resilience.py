"""Serve-path hardening: admission, deadlines, breaker, degraded mode."""

from __future__ import annotations

import io
import json
import socket
import threading

import pytest

from repro.net.addr import format_ip
from repro.serve.service import (
    CellSpotService,
    CircuitBreaker,
    ServiceConfig,
    _socket_is_live,
)
from repro.runtime.faults import FaultPlan, FaultSpec, chaos
from repro.stream import StreamEngine, WindowPolicy

POLICY = WindowPolicy(window_events=4096, decay=1.0)


def _service(beacon_hits, tmp_path=None, drain=True, **config_kwargs):
    engine = StreamEngine(policy=POLICY)
    service = CellSpotService(
        engine=engine,
        config=ServiceConfig(**config_kwargs),
        snapshot_path=None if tmp_path is None else tmp_path / "snap.json",
    )
    if drain:
        service.drain(iter(beacon_hits))
    return service


def _known_address(beacon_hits) -> str:
    hit = beacon_hits[0]
    return format_ip(hit.family, hit.address)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_pending": 0},
            {"deadline_s": 0},
            {"deadline_s": -1.0},
            {"breaker_failures": 0},
            {"breaker_reset_s": -1.0},
        ],
    )
    def test_rejects_bad_resilience_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = [0.0]
        breaker = CircuitBreaker(failures=2, reset_s=10.0,
                                 clock=lambda: clock[0])
        assert breaker.allow()
        breaker.record_failure()
        assert not breaker.is_open and breaker.allow()
        breaker.record_failure()
        assert breaker.is_open and not breaker.allow()

    def test_probe_after_reset_window(self):
        clock = [0.0]
        breaker = CircuitBreaker(failures=1, reset_s=10.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        assert not breaker.allow()
        clock[0] = 10.0
        assert breaker.allow()  # single probe admitted

    def test_success_closes_and_resets_count(self):
        breaker = CircuitBreaker(failures=2, reset_s=0.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()  # streak restarted: still closed
        assert not breaker.is_open

    def test_interleaved_success_never_opens(self):
        breaker = CircuitBreaker(failures=3, reset_s=0.0)
        for _ in range(10):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
        assert not breaker.is_open


class TestDeadlines:
    def test_expired_deadline_sheds_batch_items(self, beacon_hits):
        service = _service(beacon_hits, deadline_s=1e-9)
        service.index()  # pre-build so shedding is purely deadline-driven
        address = _known_address(beacon_hits)
        response = service.handle_request(
            {"op": "query", "qs": [address, address, address]}
        )
        assert response["ok"]
        shed = [r for r in response["results"] if r.get("overloaded")]
        assert shed, "an expired deadline must shed trailing batch items"
        for item in shed:
            assert not item["ok"] and item["error"] == "overloaded"
        assert service.metrics.get("requests_shed_total").value >= len(shed)

    def test_generous_deadline_sheds_nothing(self, beacon_hits):
        service = _service(beacon_hits, deadline_s=60.0)
        response = service.handle_request(
            {"op": "query", "qs": [_known_address(beacon_hits)]}
        )
        assert response["results"][0]["ok"]


class TestAdmissionControl:
    def test_overflow_is_shed_in_order_with_explicit_refusal(
        self, beacon_hits
    ):
        """A stalled handler + bounded queue: extras refused, not queued."""
        service = _service(beacon_hits, max_pending=1)
        service.index()
        plan = FaultPlan(name="t", faults=[
            FaultSpec(name="stall", site="serve.request", kind="stall",
                      at=0, times=1, delay_s=0.3),
        ])
        address = _known_address(beacon_hits)
        lines = "".join(
            json.dumps({"op": "query", "q": address, "id": i}) + "\n"
            for i in range(8)
        )
        responses = io.StringIO()
        with chaos(plan):
            answered = service.serve_lines(io.StringIO(lines), responses)
        parsed = [json.loads(l) for l in responses.getvalue().splitlines()]
        assert len(parsed) == 8
        served = [r for r in parsed if r["ok"]]
        shed = [r for r in parsed if r.get("overloaded")]
        assert served and shed
        assert answered == 8  # refusals are answered, not dropped
        assert len(served) + len(shed) == 8
        for refusal in shed:
            assert refusal["error"] == "overloaded"
        assert service.metrics.get("requests_shed_total").value == len(shed)

    def test_unbounded_service_answers_everything(self, beacon_hits):
        service = _service(beacon_hits)
        address = _known_address(beacon_hits)
        lines = "".join(
            json.dumps({"op": "query", "q": address}) + "\n"
            for _ in range(8)
        )
        responses = io.StringIO()
        answered = service.serve_lines(io.StringIO(lines), responses)
        assert answered == 8


class TestDegradedMode:
    def _failing_rebuild_plan(self, times=10) -> FaultPlan:
        return FaultPlan(name="t", faults=[
            FaultSpec(name="fail-refresh", site="serve.refresh",
                      kind="error", times=times),
        ])

    def test_rebuild_failure_serves_stale_from_last_good_index(
        self, beacon_hits
    ):
        service = _service(beacon_hits, breaker_failures=2,
                           breaker_reset_s=60.0)
        service.index()  # last good index
        address = _known_address(beacon_hits)
        with chaos(self._failing_rebuild_plan()):
            for _ in range(2):  # trip the breaker
                response = service.handle_request({"op": "refresh"})
                assert response["ok"]  # degraded, not dead
            assert service.degraded
            answer = service.handle_request({"op": "query", "q": address})
        assert answer["ok"] and answer["result"]["matched"]
        assert answer["stale"] is True
        assert service.metrics.get("degraded_answers_total").value >= 1
        assert service.metrics.get("breaker_open").value == 1.0
        assert (
            service.metrics.get("index_rebuild_failures_total").value >= 2
        )

    def test_recovery_clears_degraded_and_stale(self, beacon_hits):
        service = _service(beacon_hits, breaker_failures=1,
                           breaker_reset_s=0.0)
        service.index()
        address = _known_address(beacon_hits)
        with chaos(self._failing_rebuild_plan(times=1)):
            service.handle_request({"op": "refresh"})
            assert service.degraded
        # Fault budget spent: the next rebuild (breaker probe) succeeds.
        response = service.handle_request({"op": "refresh"})
        assert response["ok"] and not service.degraded
        answer = service.handle_request({"op": "query", "q": address})
        assert "stale" not in answer
        assert service.metrics.get("breaker_open").value == 0.0

    def test_failure_without_prior_index_propagates(self, beacon_hits):
        service = _service(beacon_hits)
        with chaos(self._failing_rebuild_plan()):
            response = service.handle_request(
                {"op": "query", "q": _known_address(beacon_hits)}
            )
        assert not response["ok"]  # nothing stale to answer from


class TestSnapshotFailurePolicy:
    @staticmethod
    def _unwritable_path(tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        return blocker / "snap.json"

    def test_raise_errors_false_degrades_and_counts(self, beacon_hits,
                                                    tmp_path):
        service = _service(beacon_hits)
        service.snapshot_path = self._unwritable_path(tmp_path)
        assert service.write_snapshot(raise_errors=False) is None
        assert service.metrics.get("snapshot_failures_total").value == 1

    def test_raise_errors_true_propagates(self, beacon_hits, tmp_path):
        service = _service(beacon_hits)
        service.snapshot_path = self._unwritable_path(tmp_path)
        with pytest.raises(OSError):
            service.write_snapshot(raise_errors=True)


class TestSocketProbe:
    def test_stale_socket_file_is_evicted_and_rebound(
        self, beacon_hits, tmp_path
    ):
        """A dead server's leftover socket must not block a restart."""
        socket_path = tmp_path / "svc.sock"
        corpse = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        corpse.bind(str(socket_path))
        corpse.close()  # no unlink: simulates a crashed server
        assert socket_path.exists()
        assert not _socket_is_live(socket_path)

        service = _service(beacon_hits)
        worker = threading.Thread(
            target=service.serve_socket,
            args=(socket_path,),
            kwargs={"max_connections": 1},
            daemon=True,
        )
        worker.start()
        client = _connect_when_ready(socket_path)
        stream = client.makefile("rw")
        stream.write(json.dumps({"op": "shutdown"}) + "\n")
        stream.flush()
        response = json.loads(stream.readline())
        stream.close()
        client.close()
        worker.join(timeout=10)
        assert not worker.is_alive()
        assert response["ok"]
        assert not socket_path.exists()

    def test_live_socket_is_not_evicted(self, beacon_hits, tmp_path):
        socket_path = tmp_path / "svc.sock"
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(socket_path))
        listener.listen(1)
        try:
            assert _socket_is_live(socket_path)
            service = _service(beacon_hits)
            with pytest.raises(OSError, match="live server"):
                service.serve_socket(socket_path)
            assert socket_path.exists()  # the live owner keeps its file
        finally:
            listener.close()


def _connect_when_ready(socket_path, attempts=500):
    """Connect with retry; must not probe first -- a probe connection
    would consume the server's only ``max_connections=1`` slot."""
    for _ in range(attempts):
        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            client.connect(str(socket_path))
        except OSError:
            client.close()
            threading.Event().wait(0.01)
        else:
            return client
    raise AssertionError("server socket never came up")
