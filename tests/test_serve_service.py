"""The serving front end: protocol, freshness, snapshots, sockets."""

from __future__ import annotations

import io
import json
import os
import socket
import threading

import pytest

from repro.net.addr import format_ip
from repro.serve.service import (
    CellSpotService,
    ServiceConfig,
    install_sigusr1_stats,
)
from repro.stream import StreamEngine, WindowPolicy

POLICY = WindowPolicy(window_events=4096, decay=1.0)


def _service(beacon_hits, tmp_path=None, drain=True, **config_kwargs):
    engine = StreamEngine(policy=POLICY)
    service = CellSpotService(
        engine=engine,
        config=ServiceConfig(**config_kwargs),
        snapshot_path=None if tmp_path is None else tmp_path / "snap.json",
    )
    if drain:
        service.drain(iter(beacon_hits))
    return service


def _known_address(beacon_hits) -> str:
    hit = beacon_hits[0]
    return format_ip(hit.family, hit.address)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"snapshot_every_events": 0},
            {"ingest_batch": 0},
            {"rebuild_every_windows": 0},
        ],
    )
    def test_rejects_nonpositive_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)


class TestProtocol:
    def test_single_query(self, beacon_hits):
        service = _service(beacon_hits)
        response = service.handle_line(
            json.dumps({"op": "query", "q": _known_address(beacon_hits)})
        )
        assert response["ok"]
        assert response["result"]["matched"]
        assert "confidence" in response["result"]

    def test_batch_query_keeps_order(self, beacon_hits):
        service = _service(beacon_hits)
        response = service.handle_request(
            {"op": "query", "qs": [_known_address(beacon_hits), "junk"]}
        )
        assert response["ok"]
        assert [r["ok"] for r in response["results"]] == [True, False]

    @pytest.mark.parametrize(
        "line,fragment",
        [
            ("", "empty"),
            ("{bad", "bad JSON"),
            ("[1,2]", "JSON object"),
            ('{"op": "frobnicate"}', "unknown op"),
            ('{"op": "query"}', "'q' or 'qs'"),
            ('{"op": "query", "qs": "x"}', "must be a list"),
        ],
    )
    def test_malformed_requests_answered_not_raised(
        self, beacon_hits, line, fragment
    ):
        service = _service(beacon_hits[:100])
        response = service.handle_line(line)
        assert response["ok"] is False
        assert fragment in response["error"]
        assert service.metrics.get("query_errors_total").value == 1

    def test_stats_reports_engine_and_metrics(self, beacon_hits):
        service = _service(beacon_hits)
        stats = service.handle_request({"op": "stats"})
        assert stats["ok"]
        assert stats["engine"]["events_consumed"] == len(beacon_hits)
        assert stats["engine"]["policy"]["window_events"] == 4096
        assert stats["metrics"]["events_ingested_total"]["value"] == len(
            beacon_hits
        )

    def test_refresh_forces_rebuild(self, beacon_hits):
        service = _service(beacon_hits[:100])
        service.index()
        rebuilds = service.metrics.get("index_rebuilds_total").value
        response = service.handle_request({"op": "refresh"})
        assert response["ok"] and response["index_entries"] == len(
            service.index()
        )
        assert service.metrics.get("index_rebuilds_total").value == rebuilds + 1

    def test_snapshot_op_without_path_is_a_clean_error(self, beacon_hits):
        service = _service(beacon_hits[:100])
        response = service.handle_request({"op": "snapshot"})
        assert response == {"ok": False, "error": "no snapshot path configured"}

    def test_snapshot_op_writes_file(self, beacon_hits, tmp_path):
        service = _service(beacon_hits[:100], tmp_path)
        response = service.handle_request({"op": "snapshot"})
        assert response["ok"]
        assert (tmp_path / "snap.json").exists()

    def test_shutdown_sets_flag_and_snapshots(self, beacon_hits, tmp_path):
        service = _service(beacon_hits[:100], tmp_path)
        response = service.handle_request({"op": "shutdown"})
        assert response["ok"] and response["shutdown"]
        assert service.shutdown_requested
        assert (tmp_path / "snap.json").exists()


class TestFreshness:
    def test_index_not_rebuilt_per_query(self, beacon_hits):
        service = _service(beacon_hits)
        address = _known_address(beacon_hits)
        for _ in range(5):
            service.handle_request({"op": "query", "q": address})
        assert service.metrics.get("index_rebuilds_total").value == 1

    def test_new_window_triggers_rebuild_on_next_query(self, beacon_hits):
        service = _service(beacon_hits[:100], drain=False, ingest_batch=100)
        service.ingest_from(iter(beacon_hits[:100]))
        address = _known_address(beacon_hits)
        service.handle_request({"op": "query", "q": address})
        assert service.metrics.get("index_rebuilds_total").value == 1
        # Push a full window through: the next query must see fresh state.
        service.ingest_from(iter(beacon_hits), max_events=POLICY.window_events)
        service.handle_request({"op": "query", "q": address})
        assert service.metrics.get("index_rebuilds_total").value == 2


class TestIngestLoop:
    def test_periodic_snapshots_every_n_events(self, beacon_hits, tmp_path):
        service = _service(
            beacon_hits, tmp_path, drain=False,
            snapshot_every_events=5000, ingest_batch=1000,
        )
        service.drain(iter(beacon_hits[:12_000]))
        assert service.metrics.get("snapshots_written_total").value == 2

    def test_ingest_metrics_updated(self, beacon_hits):
        service = _service(beacon_hits[:6000])
        metrics = service.metrics
        assert metrics.get("events_ingested_total").value == 6000
        assert metrics.get("tracked_subnets").value > 0
        assert metrics.get("ingest_batch_seconds").count >= 1
        assert metrics.get("window_advances_total").value == 6000 // 4096


class TestServeLines:
    def test_requests_answered_in_order(self, beacon_hits):
        service = _service(beacon_hits)
        address = _known_address(beacon_hits)
        requests = io.StringIO(
            json.dumps({"op": "query", "q": address}) + "\n"
            + "{oops\n"
            + json.dumps({"op": "stats"}) + "\n"
        )
        responses = io.StringIO()
        answered = service.serve_lines(requests, responses)
        assert answered == 3
        lines = [json.loads(l) for l in responses.getvalue().splitlines()]
        assert [l["ok"] for l in lines] == [True, False, True]

    def test_eof_drains_source_and_snapshots(self, beacon_hits, tmp_path):
        service = _service(beacon_hits, tmp_path, drain=False)
        answered = service.serve_lines(
            io.StringIO(""), io.StringIO(), events=iter(beacon_hits)
        )
        assert answered == 0
        assert service.engine.events_consumed == len(beacon_hits)
        assert (tmp_path / "snap.json").exists()

    def test_shutdown_op_stops_the_loop(self, beacon_hits):
        service = _service(beacon_hits[:100])
        requests = io.StringIO(
            '{"op": "shutdown"}\n{"op": "stats"}\n'
        )
        responses = io.StringIO()
        answered = service.serve_lines(requests, responses)
        assert answered == 1  # the stats line was never reached

    def test_ingest_interleaves_with_requests(self, beacon_hits):
        service = _service(beacon_hits, drain=False, ingest_batch=2000)
        requests = io.StringIO('{"op": "stats"}\n{"op": "stats"}\n')
        service.serve_lines(
            requests, io.StringIO(), events=iter(beacon_hits)
        )
        # startup batch + one per request, then EOF drain finishes it.
        assert service.engine.events_consumed == len(beacon_hits)


class TestServeSocket:
    def test_round_trip_over_unix_socket(self, beacon_hits, tmp_path):
        service = _service(beacon_hits)
        socket_path = tmp_path / "svc.sock"
        worker = threading.Thread(
            target=service.serve_socket,
            args=(socket_path,),
            kwargs={"max_connections": 1},
            daemon=True,
        )
        worker.start()
        for _ in range(200):
            if socket_path.exists():
                break
            threading.Event().wait(0.01)
        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        client.connect(str(socket_path))
        stream = client.makefile("rw")
        stream.write(
            json.dumps({"op": "query", "q": _known_address(beacon_hits)})
            + "\n"
        )
        stream.flush()
        response = json.loads(stream.readline())
        stream.close()
        client.close()
        worker.join(timeout=10)
        assert not worker.is_alive()
        assert response["ok"] and response["result"]["matched"]
        assert not socket_path.exists()  # cleaned up on exit


class TestSigusr1:
    def test_dump_writes_metrics_json(self, beacon_hits):
        import signal

        service = _service(beacon_hits[:100])
        sink = io.StringIO()
        assert install_sigusr1_stats(service, stream=sink)
        try:
            os.kill(os.getpid(), signal.SIGUSR1)
            payload = json.loads(sink.getvalue())
            assert "events_ingested_total" in payload
        finally:
            signal.signal(signal.SIGUSR1, signal.SIG_DFL)
