"""SIGTERM graceful shutdown of ``cellspot serve`` (both transports).

Real subprocesses, real signals: the server must answer what it
already accepted, write a final snapshot, and exit 0 -- on both the
stdin/stdout and AF_UNIX socket transports.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGTERM"), reason="needs SIGTERM"
)


def _spawn(extra_args, tmp_path):
    snapshot = tmp_path / "final.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--generate", "--scale", "0.002", "--hit-volume", "3000",
            "--window-events", "1000", "--snapshot", str(snapshot),
            *extra_args,
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    return process, snapshot


def _assert_clean_exit(process, snapshot, stderr):
    assert process.returncode == 0, f"exit {process.returncode}: {stderr}"
    assert snapshot.exists(), "final snapshot missing after SIGTERM"
    payload = json.loads(snapshot.read_text())
    assert payload  # parseable, non-empty engine state
    assert "served" in stderr  # the summary line still prints


class TestStdinTransport:
    def test_sigterm_drains_then_snapshots_and_exits_zero(self, tmp_path):
        process, snapshot = _spawn([], tmp_path)
        try:
            # One answered request proves the server is up...
            process.stdin.write(json.dumps({"op": "stats"}) + "\n")
            process.stdin.flush()
            first = json.loads(process.stdout.readline())
            assert first["ok"]
            # ...then queue more work and SIGTERM before reading it.
            for _ in range(3):
                process.stdin.write(json.dumps({"op": "stats"}) + "\n")
            process.stdin.flush()
            time.sleep(0.3)  # let the reader thread enqueue the lines
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        responses = [json.loads(line) for line in stdout.splitlines()]
        assert len(responses) == 3, "queued requests must be drained"
        assert all(r["ok"] for r in responses)
        _assert_clean_exit(process, snapshot, stderr)


class TestSocketTransport:
    def test_sigterm_snapshots_removes_socket_and_exits_zero(
        self, tmp_path
    ):
        socket_path = tmp_path / "svc.sock"
        process, snapshot = _spawn(["--socket", str(socket_path)], tmp_path)
        client = None
        try:
            client = _connect_with_retry(process, socket_path)
            stream = client.makefile("rw")
            stream.write(json.dumps({"op": "stats"}) + "\n")
            stream.flush()
            response = json.loads(stream.readline())
            assert response["ok"]
            process.send_signal(signal.SIGTERM)
            stream.close()
            client.close()
            client = None
            _stdout, stderr = process.communicate(timeout=60)
        finally:
            if client is not None:
                client.close()
            if process.poll() is None:
                process.kill()
                process.communicate()
        _assert_clean_exit(process, snapshot, stderr)
        assert not socket_path.exists(), "socket file must be unlinked"


def _connect_with_retry(process, socket_path, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if process.poll() is not None:
            _stdout, stderr = process.communicate()
            raise AssertionError(f"server died during startup: {stderr}")
        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            client.connect(str(socket_path))
        except OSError:
            client.close()
            time.sleep(0.05)
        else:
            return client
    raise AssertionError("server socket never came up")
