"""Stream == batch: the online engine's central correctness claim.

Under an exact window policy (``decay == 1``) a drained event stream
must leave *bit-identical* state to the batch pipeline run over the
same events -- same RatioTable, same classification, same per-AS hit
totals.  Pinned here for seeds {0, 1}, across window sizes, and
independent of arrival order.
"""

from __future__ import annotations

import random

import pytest

from repro.cdn.beacon import BeaconConfig, BeaconGenerator
from repro.core.ratios import RatioTable
from repro.datasets.beacon_dataset import BeaconDataset
from repro.stream import StreamEngine, WindowPolicy
from repro.world.build import WorldParams, build_world

MONTH = "2017-01"


def _hits_for_seed(seed: int):
    world = build_world(
        WorldParams(seed=seed, scale=0.002, background_as_count=400)
    )
    config = BeaconConfig(month=MONTH, demand_hits=5000, base_hits=2.0)
    return list(BeaconGenerator(world, config).iter_hits())


def _batch_table(hits, min_api_hits: int = 1) -> RatioTable:
    return RatioTable.from_beacons(
        BeaconDataset.from_hits(MONTH, hits), min_api_hits=min_api_hits
    )


@pytest.mark.parametrize("seed", [0, 1])
def test_drained_stream_equals_batch(seed):
    hits = _hits_for_seed(seed)
    engine = StreamEngine(policy=WindowPolicy(window_events=4096, decay=1.0))
    engine.ingest_many(hits)
    assert engine.ratio_table() == _batch_table(hits)


@pytest.mark.parametrize("window_events", [1, 97, 10_000, 10_000_000])
def test_window_size_never_changes_the_drained_total(window_events):
    hits = _hits_for_seed(0)
    engine = StreamEngine(
        policy=WindowPolicy(window_events=window_events, decay=1.0)
    )
    engine.ingest_many(hits)
    assert engine.ratio_table() == _batch_table(hits)


def test_arrival_order_is_irrelevant():
    hits = _hits_for_seed(1)
    shuffled = list(hits)
    random.Random(99).shuffle(shuffled)
    left = StreamEngine(policy=WindowPolicy(window_events=512))
    right = StreamEngine(policy=WindowPolicy(window_events=2048))
    left.ingest_many(hits)
    right.ingest_many(shuffled)
    assert left.ratio_table() == right.ratio_table()


def test_min_api_hits_filter_matches_batch():
    hits = _hits_for_seed(0)
    engine = StreamEngine(policy=WindowPolicy(window_events=4096))
    engine.ingest_many(hits)
    assert engine.ratio_table(min_api_hits=3) == _batch_table(
        hits, min_api_hits=3
    )


def test_classification_matches_batch_labels():
    from repro.core.classifier import SubnetClassifier

    hits = _hits_for_seed(1)
    engine = StreamEngine(policy=WindowPolicy(window_events=4096))
    engine.ingest_many(hits)
    live = engine.classification()
    batch = SubnetClassifier().classify(_batch_table(hits))
    assert live.cellular_set() == batch.cellular_set()
    assert live.asns_with_cellular() == batch.asns_with_cellular()
    assert dict(live.labels) == dict(batch.labels)


def test_hits_by_asn_matches_batch_totals():
    hits = _hits_for_seed(0)
    engine = StreamEngine(policy=WindowPolicy(window_events=4096))
    engine.ingest_many(hits)
    expected: dict = {}
    for hit in hits:
        expected[hit.asn] = expected.get(hit.asn, 0) + 1
    assert engine.hits_by_asn() == expected


def test_decayed_policy_is_visibly_not_batch():
    """decay < 1 must actually fade history (not silently stay exact)."""
    hits = _hits_for_seed(0)
    engine = StreamEngine(policy=WindowPolicy(window_events=1024, decay=0.5))
    engine.ingest_many(hits)
    assert engine.ratio_table() != _batch_table(hits)
