"""Engine lifecycle: ingestion guards, snapshots, crash-resume.

The crash-resume contract is the paper-facing one: a server killed at
an arbitrary point resumes from its last atomic snapshot plus
``skip_events`` and ends with *exactly* the state of an uninterrupted
run -- no window count duplicated, none lost.
"""

from __future__ import annotations

import json

import pytest

from repro.stream import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    StreamEngine,
    WindowPolicy,
    skip_events,
)

POLICY = WindowPolicy(window_events=4096, decay=1.0)


def _drained(hits, policy=POLICY) -> StreamEngine:
    engine = StreamEngine(policy=policy)
    engine.ingest_many(hits)
    return engine


class TestIngestion:
    def test_month_is_pinned_by_first_event(self, beacon_hits):
        engine = StreamEngine(policy=POLICY)
        engine.ingest(beacon_hits[0])
        assert engine.month == beacon_hits[0].month

    def test_cross_month_event_is_rejected(self, beacon_hits):
        from dataclasses import replace

        engine = StreamEngine(policy=POLICY)
        engine.ingest(beacon_hits[0])
        alien = replace(beacon_hits[1], month="2019-09")
        with pytest.raises(ValueError, match="2019-09"):
            engine.ingest(alien)

    def test_events_consumed_counts_every_event(self, beacon_hits):
        engine = _drained(beacon_hits)
        assert engine.events_consumed == len(beacon_hits)
        assert engine.windows_advanced == len(beacon_hits) // 4096

    def test_ratio_table_rejects_bad_min_api_hits(self, beacon_hits):
        engine = _drained(beacon_hits[:100])
        with pytest.raises(ValueError):
            engine.ratio_table(min_api_hits=0)


class TestSnapshots:
    def test_round_trip_preserves_state(self, beacon_hits, tmp_path):
        engine = _drained(beacon_hits[:10_000])
        path = engine.save_snapshot(tmp_path / "snap.json")
        restored = StreamEngine.load_snapshot(path)
        assert restored.month == engine.month
        assert restored.events_consumed == engine.events_consumed
        assert restored.ratio_table() == engine.ratio_table()
        assert restored.hits_by_asn() == engine.hits_by_asn()

    def test_snapshot_counts_stay_integers(self, beacon_hits, tmp_path):
        engine = _drained(beacon_hits[:5000])
        path = engine.save_snapshot(tmp_path / "snap.json")
        raw = json.loads(path.read_text())
        rows = raw["state"]["aggregate"] + raw["state"]["window"]
        assert rows and all(
            isinstance(value, int) for row in rows for value in row[5:]
        )

    def test_version_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"format_version": SNAPSHOT_FORMAT_VERSION + 1}))
        with pytest.raises(SnapshotError, match="format"):
            StreamEngine.load_snapshot(path)

    @pytest.mark.parametrize("payload", ["{not json", "[]", '{"format_version": 1}'])
    def test_garbage_snapshots_raise_snapshot_error(self, tmp_path, payload):
        path = tmp_path / "snap.json"
        path.write_text(payload)
        with pytest.raises(SnapshotError):
            StreamEngine.load_snapshot(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="unreadable"):
            StreamEngine.load_snapshot(tmp_path / "absent.json")


class TestResumeOrStart:
    def test_fresh_engine_when_no_snapshot(self, tmp_path):
        engine = StreamEngine.resume_or_start(
            tmp_path / "none.json", policy=POLICY
        )
        assert engine.events_consumed == 0
        assert engine.policy == POLICY

    def test_resume_keeps_snapshot_policy(self, beacon_hits, tmp_path):
        path = _drained(beacon_hits[:2000]).save_snapshot(tmp_path / "s.json")
        engine = StreamEngine.resume_or_start(path)
        assert engine.policy == POLICY
        assert engine.events_consumed == 2000

    def test_conflicting_policy_refuses_to_resume(self, beacon_hits, tmp_path):
        path = _drained(beacon_hits[:2000]).save_snapshot(tmp_path / "s.json")
        with pytest.raises(SnapshotError, match="window policy"):
            StreamEngine.resume_or_start(
                path, policy=WindowPolicy(window_events=7)
            )


class TestCrashResume:
    @pytest.mark.parametrize("kill_at", [1, 4096, 5000, 17_777])
    def test_resume_equals_uninterrupted_run(
        self, beacon_hits, tmp_path, kill_at
    ):
        """Snapshot at an arbitrary event, 'crash', resume, drain.

        The resumed engine must end bit-identical to one that never
        crashed: same table, same event count, same window count.
        """
        first = StreamEngine(policy=POLICY)
        first.ingest_many(beacon_hits[:kill_at])
        path = first.save_snapshot(tmp_path / "snap.json")
        del first  # the kill -9

        resumed = StreamEngine.resume_or_start(path)
        remaining = skip_events(iter(beacon_hits), resumed.events_consumed)
        resumed.ingest_many(remaining)

        uninterrupted = _drained(beacon_hits)
        assert resumed.events_consumed == uninterrupted.events_consumed
        assert resumed.windows_advanced == uninterrupted.windows_advanced
        assert resumed.ratio_table() == uninterrupted.ratio_table()

    def test_double_resume_still_exact(self, beacon_hits, tmp_path):
        """Two crashes at different points: still no drift."""
        path = tmp_path / "snap.json"
        engine = StreamEngine(policy=POLICY)
        engine.ingest_many(beacon_hits[:3000])
        engine.save_snapshot(path)

        engine = StreamEngine.resume_or_start(path)
        engine.ingest_many(beacon_hits[3000:9000])
        engine.save_snapshot(path)

        engine = StreamEngine.resume_or_start(path)
        engine.ingest_many(
            skip_events(iter(beacon_hits), engine.events_consumed)
        )
        assert engine.ratio_table() == _drained(beacon_hits).ratio_table()

    def test_snapshot_is_atomic_no_tmp_left_behind(
        self, beacon_hits, tmp_path
    ):
        engine = _drained(beacon_hits[:1000])
        engine.save_snapshot(tmp_path / "snap.json")
        engine.save_snapshot(tmp_path / "snap.json")  # overwrite path too
        assert [p.name for p in tmp_path.iterdir()] == ["snap.json"]
