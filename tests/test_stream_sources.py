"""Event sources: JSONL parsing under policy, tailing, resume skips."""

from __future__ import annotations

import io

import pytest

from repro.runtime.policies import IngestFault, IngestPolicy
from repro.stream.sources import (
    follow_jsonl,
    jsonl_events,
    skip_events,
)


def _good_line(hit) -> str:
    return hit.to_json()


class TestJsonlEvents:
    def test_round_trips_hits(self, beacon_hits):
        sample = beacon_hits[:50]
        stream = io.StringIO("\n".join(h.to_json() for h in sample) + "\n")
        assert list(jsonl_events(stream)) == sample

    def test_strict_policy_raises_on_garbage(self, beacon_hits):
        stream = io.StringIO(beacon_hits[0].to_json() + "\n{broken\n")
        with pytest.raises(ValueError):
            list(jsonl_events(stream, policy=IngestPolicy.strict()))

    def test_skip_policy_drops_and_counts(self, beacon_hits):
        sample = beacon_hits[:5]
        lines = [h.to_json() for h in sample]
        lines.insert(2, '{"month": "2017-01"}')  # missing fields
        policy = IngestPolicy.skip()
        parsed = list(
            jsonl_events(io.StringIO("\n".join(lines) + "\n"), policy=policy)
        )
        assert parsed == sample
        assert policy.stats.rejected_lines == 1
        assert policy.stats.ok_lines == 5


class TestFollowJsonl:
    def test_tails_appended_lines(self, beacon_hits, tmp_path):
        path = tmp_path / "hits.jsonl"
        first, second = beacon_hits[0], beacon_hits[1]
        path.write_text(first.to_json() + "\n")
        events = follow_jsonl(path, poll_interval_s=0.001, idle_polls=50)
        assert next(events) == first
        # Append while the follower is mid-stream: it must pick it up.
        with path.open("a") as stream:
            stream.write(second.to_json() + "\n")
        assert next(events) == second

    def test_partial_trailing_line_is_not_parsed_early(
        self, beacon_hits, tmp_path
    ):
        path = tmp_path / "hits.jsonl"
        line = beacon_hits[0].to_json()
        path.write_text(line + "\n" + line[: len(line) // 2])
        events = follow_jsonl(path, poll_interval_s=0.001, idle_polls=3)
        assert next(events) == beacon_hits[0]
        with path.open("a") as stream:  # writer finishes the line
            stream.write(line[len(line) // 2:] + "\n")
        assert next(events) == beacon_hits[0]

    def test_stops_after_idle_budget(self, beacon_hits, tmp_path):
        path = tmp_path / "hits.jsonl"
        path.write_text(beacon_hits[0].to_json() + "\n")
        events = follow_jsonl(path, poll_interval_s=0.001, idle_polls=2)
        assert list(events) == [beacon_hits[0]]

    def test_malformed_line_honours_policy(self, beacon_hits, tmp_path):
        path = tmp_path / "hits.jsonl"
        path.write_text("{junk}\n" + beacon_hits[0].to_json() + "\n")
        policy = IngestPolicy.skip()
        events = follow_jsonl(
            path, policy=policy, poll_interval_s=0.001, idle_polls=2
        )
        assert list(events) == [beacon_hits[0]]
        assert policy.stats.rejected_lines == 1

    def test_strict_policy_raises_while_tailing(self, tmp_path):
        path = tmp_path / "hits.jsonl"
        path.write_text("total garbage\n")
        events = follow_jsonl(path, poll_interval_s=0.001, idle_polls=2)
        with pytest.raises(IngestFault):
            list(events)


class TestSkipEvents:
    def test_skips_exactly_count(self, beacon_hits):
        rest = list(skip_events(iter(beacon_hits[:10]), 4))
        assert rest == beacon_hits[4:10]

    def test_zero_skip_is_identity(self, beacon_hits):
        assert list(skip_events(iter(beacon_hits[:3]), 0)) == beacon_hits[:3]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            skip_events(iter([]), -1)

    def test_short_stream_is_an_error_not_silence(self, beacon_hits):
        """Resuming past the end means the source changed: fail loudly."""
        with pytest.raises(ValueError, match="cannot resume"):
            skip_events(iter(beacon_hits[:3]), 10)
