"""Windowed counter state: the streaming engine's foundation.

Window semantics are event-count-driven and deterministic; these
tests pin the exact advance points, the decay algebra, canonical
ordering, metadata pinning, and the snapshot round-trip.
"""

from __future__ import annotations

import pytest

from repro.net.prefix import Prefix
from repro.stream.windows import (
    SubnetWindowCounts,
    WindowedSubnetState,
    WindowPolicy,
)

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")
P6 = Prefix.parse("2001:db8::/48")


class TestSubnetWindowCounts:
    def test_observe_counts_api_and_cellular(self):
        counts = SubnetWindowCounts(asn=1, country="DE")
        counts.observe(api_enabled=False, cellular_labeled=False)
        counts.observe(api_enabled=True, cellular_labeled=False)
        counts.observe(api_enabled=True, cellular_labeled=True)
        assert (counts.hits, counts.api_hits, counts.cellular_hits) == (3, 2, 1)

    def test_cellular_without_api_is_rejected(self):
        counts = SubnetWindowCounts(asn=1, country="DE")
        with pytest.raises(ValueError, match="cellular label without API"):
            counts.observe(api_enabled=False, cellular_labeled=True)

    def test_add_requires_matching_metadata(self):
        counts = SubnetWindowCounts(asn=1, country="DE", hits=2)
        other = SubnetWindowCounts(asn=2, country="DE", hits=1)
        with pytest.raises(ValueError, match="conflicting subnet metadata"):
            counts.add(other)

    def test_scaled_preserves_metadata(self):
        counts = SubnetWindowCounts(
            asn=9, country="US", hits=10, api_hits=4, cellular_hits=2
        )
        half = counts.scaled(0.5)
        assert (half.asn, half.country) == (9, "US")
        assert (half.hits, half.api_hits, half.cellular_hits) == (5, 2, 1)


class TestWindowPolicy:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            WindowPolicy(window_events=0)
        with pytest.raises(ValueError):
            WindowPolicy(decay=0.0)
        with pytest.raises(ValueError):
            WindowPolicy(decay=1.5)

    def test_is_exact(self):
        assert WindowPolicy(decay=1.0).is_exact
        assert not WindowPolicy(decay=0.5).is_exact


class TestWindowAdvancement:
    def test_window_closes_exactly_on_event_count(self):
        state = WindowedSubnetState(WindowPolicy(window_events=3))
        closes = [
            state.observe(P1, 1, "DE", api_enabled=False, cellular_labeled=False)
            for _ in range(7)
        ]
        assert closes == [False, False, True, False, False, True, False]
        assert state.windows_closed == 2
        assert state.window_fill == 1

    def test_tumbling_accumulation_is_exact_integers(self):
        state = WindowedSubnetState(WindowPolicy(window_events=2, decay=1.0))
        for _ in range(5):
            state.observe(P1, 1, "DE", api_enabled=True, cellular_labeled=True)
        rows = dict(state.combined())
        counts = rows[P1]
        assert counts.hits == 5 and isinstance(counts.hits, int)
        assert counts.api_hits == 5 and counts.cellular_hits == 5

    def test_decay_fades_history_per_advance(self):
        state = WindowedSubnetState(WindowPolicy(window_events=1, decay=0.5))
        state.observe(P1, 1, "DE", api_enabled=True, cellular_labeled=False)
        state.observe(P1, 1, "DE", api_enabled=True, cellular_labeled=False)
        # After two closes: first hit decayed once (0.5), second fresh (1.0).
        rows = dict(state.combined())
        assert rows[P1].hits == pytest.approx(1.5)
        state.observe(P1, 1, "DE", api_enabled=True, cellular_labeled=False)
        rows = dict(state.combined())
        assert rows[P1].hits == pytest.approx(0.25 + 0.5 + 1.0)

    def test_combined_merges_open_window_with_aggregate(self):
        state = WindowedSubnetState(WindowPolicy(window_events=2))
        state.observe(P1, 1, "DE", api_enabled=False, cellular_labeled=False)
        state.observe(P1, 1, "DE", api_enabled=False, cellular_labeled=False)
        state.observe(P1, 1, "DE", api_enabled=False, cellular_labeled=False)
        rows = dict(state.combined())
        assert rows[P1].hits == 3  # 2 closed + 1 open

    def test_combined_order_is_canonical(self):
        state = WindowedSubnetState(WindowPolicy(window_events=100))
        for prefix in (P6, P2, P1):
            state.observe(prefix, 1, "DE", api_enabled=False,
                          cellular_labeled=False)
        assert [p for p, _ in state.combined()] == [P1, P2, P6]

    def test_subnet_count_spans_window_and_aggregate(self):
        state = WindowedSubnetState(WindowPolicy(window_events=2))
        state.observe(P1, 1, "DE", api_enabled=False, cellular_labeled=False)
        state.observe(P1, 1, "DE", api_enabled=False, cellular_labeled=False)
        state.observe(P2, 2, "US", api_enabled=False, cellular_labeled=False)
        assert state.subnet_count() == 2

    def test_hits_by_asn_totals(self):
        state = WindowedSubnetState(WindowPolicy(window_events=100))
        for _ in range(3):
            state.observe(P1, 1, "DE", api_enabled=False,
                          cellular_labeled=False)
        state.observe(P2, 1, "DE", api_enabled=False, cellular_labeled=False)
        state.observe(P6, 2, "US", api_enabled=False, cellular_labeled=False)
        assert state.hits_by_asn() == {1: 4, 2: 1}


class TestSnapshotRoundTrip:
    def test_round_trip_preserves_everything(self):
        state = WindowedSubnetState(WindowPolicy(window_events=3, decay=0.5))
        for prefix, n in ((P1, 4), (P2, 3), (P6, 2)):
            for _ in range(n):
                state.observe(prefix, 7, "JP", api_enabled=True,
                              cellular_labeled=True)
        restored = WindowedSubnetState.from_snapshot(state.to_snapshot())
        assert restored.policy == state.policy
        assert restored.window_fill == state.window_fill
        assert restored.windows_closed == state.windows_closed
        assert list(restored.combined()) == list(state.combined())

    def test_snapshot_is_json_shaped(self):
        import json

        state = WindowedSubnetState(WindowPolicy(window_events=2))
        state.observe(P1, 1, "DE", api_enabled=True, cellular_labeled=False)
        raw = json.loads(json.dumps(state.to_snapshot()))
        assert WindowedSubnetState.from_snapshot(raw).subnet_count() == 1
