"""Unit tests for threshold sensitivity sweeps (Figure 3 machinery)."""

import pytest

from repro.core.ratios import RatioRecord, RatioTable
from repro.core.thresholds import (
    ThresholdSweep,
    default_threshold_grid,
    sweep_many,
    sweep_thresholds,
)
from repro.datasets.groundtruth import CarrierGroundTruth
from repro.net.prefix import Prefix


def p(text):
    return Prefix.parse(text)


@pytest.fixture()
def ratios():
    # Cellular subnets at various ratios; fixed subnets clean.
    return RatioTable(
        [
            RatioRecord(p("10.0.0.0/24"), 1, "US", 100, 85, 100),
            RatioRecord(p("10.0.1.0/24"), 1, "US", 100, 92, 100),
            RatioRecord(p("10.0.2.0/24"), 1, "US", 100, 70, 100),
            RatioRecord(p("10.1.0.0/24"), 1, "US", 100, 1, 100),
            RatioRecord(p("10.1.1.0/24"), 1, "US", 100, 0, 100),
        ]
    )


@pytest.fixture()
def truth():
    return CarrierGroundTruth(
        label="Carrier T",
        asn=1,
        country="US",
        mixed=False,
        cellular=(p("10.0.0.0/24"), p("10.0.1.0/24"), p("10.0.2.0/24")),
        fixed=(p("10.1.0.0/24"), p("10.1.1.0/24")),
    )


class TestGrid:
    def test_default_grid_spans(self):
        grid = default_threshold_grid()
        assert grid[0] > 0
        assert grid[-1] == 1.0
        assert grid == sorted(grid)

    def test_validation(self):
        with pytest.raises(ValueError):
            default_threshold_grid(step=0)
        with pytest.raises(ValueError):
            default_threshold_grid(step=0.7)


class TestSweep:
    def test_plateau_then_drop(self, ratios, truth):
        sweep = sweep_thresholds(ratios, truth, weighted=False)
        # Below 0.7 everything cellular is caught, no false positives.
        assert sweep.score_at(0.1) == pytest.approx(1.0)
        assert sweep.score_at(0.5) == pytest.approx(1.0)
        assert sweep.score_at(0.69) == pytest.approx(1.0)
        # Above the lowest cellular ratio, recall decays.
        assert sweep.score_at(0.8) < 1.0
        assert sweep.score_at(1.0) < sweep.score_at(0.8)

    def test_stable_range(self, ratios, truth):
        sweep = sweep_thresholds(ratios, truth, weighted=False)
        low, high = sweep.stable_range(tolerance=0.01)
        assert low <= 0.1
        assert 0.65 <= high <= 0.75

    def test_best(self, ratios, truth):
        sweep = sweep_thresholds(ratios, truth, weighted=False)
        _, best_f1 = sweep.best()
        assert best_f1 == pytest.approx(1.0)

    def test_custom_grid(self, ratios, truth):
        sweep = sweep_thresholds(
            ratios, truth, thresholds=[0.25, 0.75], weighted=False
        )
        assert sweep.thresholds == (0.25, 0.75)
        with pytest.raises(ValueError):
            sweep_thresholds(ratios, truth, thresholds=[])

    def test_sweep_many(self, ratios, truth):
        sweeps = sweep_many(ratios, {"Carrier T": truth}, weighted=False)
        assert set(sweeps) == {"Carrier T"}
        assert isinstance(sweeps["Carrier T"], ThresholdSweep)


class TestStableRangeEdge:
    def test_no_thresholds_in_tolerance_impossible(self):
        sweep = ThresholdSweep("x", (0.5,), (0.9,), weighted=False)
        low, high = sweep.stable_range()
        assert (low, high) == (0.5, 0.5)
