"""Unit tests for AS topology generation."""

import pytest

from repro.net.asn import ASType
from repro.world.geo import Continent, default_geography
from repro.world.profiles import default_profiles
from repro.world.topology import build_topology


@pytest.fixture(scope="module")
def topology():
    return build_topology(
        default_geography(), default_profiles(), seed=5, background_as_count=300
    )


class TestCarrierCounts:
    def test_cellular_count_matches_profiles(self, topology):
        profiles = default_profiles()
        expected = sum(p.cellular_as_count for p in profiles.values())
        assert len(topology.cellular_plans()) == expected

    def test_per_country_counts(self, topology):
        profiles = default_profiles()
        for iso2 in ("US", "JP", "GH", "FJ"):
            cellular = [
                p for p in topology.plans_in_country(iso2) if p.record.is_cellular
            ]
            assert len(cellular) == profiles[iso2].cellular_as_count

    def test_unique_asns(self, topology):
        asns = [plan.record.asn for plan in topology.plans.values()]
        assert len(asns) == len(set(asns))


class TestDemandPlan:
    def test_demand_roughly_normalized(self, topology):
        total = sum(plan.total_demand for plan in topology.plans.values())
        # Country shares sum to 1; a little slack for background ASes.
        assert 0.9 <= total <= 1.1

    def test_country_cellular_fraction_respected(self, topology):
        profiles = default_profiles()
        for iso2 in ("US", "GH", "FR"):
            plans = topology.plans_in_country(iso2)
            cellular = sum(p.cellular_demand for p in plans)
            total = sum(p.total_demand for p in plans)
            expected = profiles[iso2].cellular_fraction
            assert cellular / total == pytest.approx(expected, rel=0.25)

    def test_pinned_us_top_carriers_are_dedicated(self, topology):
        us = sorted(
            (p for p in topology.plans_in_country("US") if p.record.is_cellular),
            key=lambda p: p.cellular_demand,
            reverse=True,
        )
        for plan in us[:3]:
            assert plan.record.as_type is ASType.CELLULAR_DEDICATED

    def test_mixed_carriers_have_low_cfd(self, topology):
        for plan in topology.cellular_plans():
            if plan.record.as_type is ASType.CELLULAR_MIXED:
                assert plan.cellular_fraction_of_demand < 0.9
            elif plan.cellular_demand > 0:
                assert plan.cellular_fraction_of_demand >= 0.9

    def test_mixed_fraction_near_continent_targets(self, topology):
        geo = default_geography()
        mixed = sum(
            1
            for p in topology.cellular_plans()
            if p.record.as_type is ASType.CELLULAR_MIXED
        )
        total = len(topology.cellular_plans())
        # Global target ~0.55-0.60 (paper: 58.6% detected as mixed).
        assert 0.45 <= mixed / total <= 0.70


class TestSpecialAndBackground:
    def test_special_ases_exist(self, topology):
        proxies = [
            p for p in topology.plans.values()
            if p.record.as_type is ASType.PROXY
        ]
        clouds = [
            p for p in topology.plans.values()
            if p.record.as_type is ASType.CLOUD
        ]
        assert len(proxies) >= 2 and len(clouds) >= 2
        assert all(p.emits_cellular_beacons for p in proxies)

    def test_background_count(self, topology):
        # Background filler spans enterprise, transit, and hosting ASes.
        background = [
            p
            for p in topology.plans.values()
            if p.record.as_type in (ASType.ENTERPRISE, ASType.TRANSIT)
            or p.record.name.startswith("Hosting Platform")
        ]
        assert len(background) == 300
        enterprise = [
            p for p in background if p.record.as_type is ASType.ENTERPRISE
        ]
        assert len(enterprise) > 0.6 * len(background)

    def test_ipv6_deployment_counts(self, topology):
        profiles = default_profiles()
        for iso2 in ("US", "BR", "MM"):
            deployed = [
                p
                for p in topology.plans_in_country(iso2)
                if p.record.is_cellular and p.ipv6_deployed
            ]
            assert len(deployed) == profiles[iso2].ipv6_as_count


class TestDeterminism:
    def test_same_seed_same_topology(self):
        geo, profiles = default_geography(), default_profiles()
        a = build_topology(geo, profiles, seed=9, background_as_count=50)
        b = build_topology(geo, profiles, seed=9, background_as_count=50)
        assert set(a.plans) == set(b.plans)
        for asn in a.plans:
            assert a.plans[asn].cellular_demand == b.plans[asn].cellular_demand
            assert a.plans[asn].record.as_type == b.plans[asn].record.as_type

    def test_different_seed_differs(self):
        # Zipf demand *shares* are deterministic by design; what a new
        # seed reshuffles is which carrier gets which share and the
        # mixed/dedicated draws, so fixed-demand multisets differ.
        geo, profiles = default_geography(), default_profiles()
        a = build_topology(geo, profiles, seed=9, background_as_count=50)
        b = build_topology(geo, profiles, seed=10, background_as_count=50)
        fixed_a = sorted(p.fixed_demand for p in a.cellular_plans())
        fixed_b = sorted(p.fixed_demand for p in b.cellular_plans())
        assert fixed_a != fixed_b
