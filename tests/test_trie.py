"""Unit and property tests for the prefix radix trie."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie


def p(text):
    return Prefix.parse(text)


class TestBasics:
    def test_insert_get(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.0.0.0/8"), "a")
        assert trie.get(p("10.0.0.0/8")) == "a"
        assert trie.get(p("10.0.0.0/16")) is None
        assert len(trie) == 1

    def test_insert_replaces(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.0.0.0/8"), "a")
        trie.insert(p("10.0.0.0/8"), "b")
        assert trie.get(p("10.0.0.0/8")) == "b"
        assert len(trie) == 1

    def test_contains(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.0.0.0/8"), None)  # value None still counts
        assert p("10.0.0.0/8") in trie
        assert p("11.0.0.0/8") not in trie

    def test_family_mismatch_raises(self):
        trie = PrefixTrie(4)
        with pytest.raises(ValueError):
            trie.insert(p("2001:db8::/48"), "x")
        with pytest.raises(ValueError):
            trie.longest_match(6, 0)

    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            PrefixTrie(5)

    def test_remove(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.0.0.0/8"), "a")
        trie.insert(p("10.1.0.0/16"), "b")
        assert trie.remove(p("10.0.0.0/8"))
        assert len(trie) == 1
        assert trie.get(p("10.0.0.0/8")) is None
        assert trie.get(p("10.1.0.0/16")) == "b"
        assert not trie.remove(p("10.0.0.0/8"))
        assert not trie.remove(p("99.0.0.0/8"))

    def test_root_prefix(self):
        trie = PrefixTrie(4)
        trie.insert(p("0.0.0.0/0"), "default")
        found = trie.longest_match(4, 12345)
        assert found == (p("0.0.0.0/0"), "default")


class TestLongestMatch:
    def test_prefers_most_specific(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.0.0.0/8"), "coarse")
        trie.insert(p("10.1.0.0/16"), "fine")
        addr = p("10.1.2.3/32").value
        assert trie.longest_match(4, addr) == (p("10.1.0.0/16"), "fine")
        other = p("10.2.0.0/32").value
        assert trie.longest_match(4, other) == (p("10.0.0.0/8"), "coarse")

    def test_no_match(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.0.0.0/8"), "a")
        assert trie.longest_match(4, p("11.0.0.0/32").value) is None

    def test_ipv6(self):
        trie = PrefixTrie(6)
        trie.insert(p("2001:db8::/32"), "isp")
        trie.insert(p("2001:db8:1::/48"), "customer")
        inside = Prefix.parse("2001:db8:1::42").value
        assert trie.longest_match(6, inside)[1] == "customer"

    def test_match_prefix_requires_full_cover(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.1.0.0/16"), "a")
        # /8 query is only partially covered by the stored /16.
        assert trie.match_prefix(p("10.0.0.0/8")) is None
        assert trie.match_prefix(p("10.1.2.0/24")) == (p("10.1.0.0/16"), "a")

    def test_match_prefix_falls_back_to_shorter(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.0.0.0/8"), "outer")
        trie.insert(p("10.1.2.0/24"), "inner")
        # /16 query: the /24 matches its first address but does not
        # cover it; the /8 does.
        assert trie.match_prefix(p("10.1.0.0/16")) == (p("10.0.0.0/8"), "outer")


class TestIteration:
    def test_items_returns_everything(self):
        trie = PrefixTrie(4)
        prefixes = [p("10.0.0.0/8"), p("10.1.0.0/16"), p("192.0.2.0/24")]
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        assert {prefix for prefix, _ in trie.items()} == set(prefixes)

    def test_covered_by(self):
        trie = PrefixTrie(4)
        trie.insert(p("10.0.0.0/8"), "a")
        trie.insert(p("10.1.0.0/16"), "b")
        trie.insert(p("11.0.0.0/8"), "c")
        covered = {prefix for prefix, _ in trie.covered_by(p("10.0.0.0/8"))}
        assert covered == {p("10.0.0.0/8"), p("10.1.0.0/16")}
        assert list(trie.covered_by(p("12.0.0.0/8"))) == []


@st.composite
def prefix_sets(draw):
    count = draw(st.integers(min_value=1, max_value=25))
    prefixes = []
    for _ in range(count):
        length = draw(st.integers(min_value=4, max_value=28))
        value = draw(st.integers(min_value=0, max_value=(1 << 32) - 1))
        prefixes.append(Prefix.make(4, value, length))
    return prefixes


@settings(max_examples=50, deadline=None)
@given(prefix_sets(), st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_longest_match_agrees_with_brute_force(prefixes, address):
    trie = PrefixTrie(4)
    model = {}
    for index, prefix in enumerate(prefixes):
        trie.insert(prefix, index)
        model[prefix] = index
    expected = None
    for prefix, value in model.items():
        if prefix.contains_address(4, address):
            if expected is None or prefix.length > expected[0].length:
                expected = (prefix, value)
    assert trie.longest_match(4, address) == expected


@settings(max_examples=50, deadline=None)
@given(prefix_sets())
def test_items_round_trip(prefixes):
    trie = PrefixTrie(4)
    model = {}
    for index, prefix in enumerate(prefixes):
        trie.insert(prefix, index)
        model[prefix] = index
    assert dict(trie.items()) == model
    assert len(trie) == len(model)


@settings(max_examples=50, deadline=None)
@given(prefix_sets())
def test_remove_everything_empties_trie(prefixes):
    trie = PrefixTrie(4)
    for prefix in prefixes:
        trie.insert(prefix, "x")
    for prefix in set(prefixes):
        assert trie.remove(prefix)
    assert len(trie) == 0
    assert list(trie.items()) == []
