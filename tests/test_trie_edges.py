"""PrefixTrie edge cases the serving index leans on.

The LPM index answers production-shaped queries, so the corners
matter: default routes, exact-vs-longest ties, ``None`` payloads,
cross-family misuse, and LPM fallback after deletions.
"""

from __future__ import annotations

import pytest

from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie


def _p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestDefaultRoute:
    def test_slash_zero_matches_every_address(self):
        trie = PrefixTrie(4)
        trie.insert(_p("0.0.0.0/0"), "default")
        for address in (0, 1, 0xFFFFFFFF, 0x0A000001):
            assert trie.longest_match(4, address) == (
                _p("0.0.0.0/0"), "default"
            )

    def test_specific_beats_default(self):
        trie = PrefixTrie(4)
        trie.insert(_p("0.0.0.0/0"), "default")
        trie.insert(_p("10.0.0.0/8"), "ten")
        assert trie.longest_match(4, 0x0A000001)[1] == "ten"
        assert trie.longest_match(4, 0x0B000001)[1] == "default"

    def test_default_route_covers_any_prefix_query(self):
        trie = PrefixTrie(4)
        trie.insert(_p("0.0.0.0/0"), "default")
        assert trie.match_prefix(_p("203.0.113.0/24"))[1] == "default"

    def test_ipv6_default_route(self):
        trie = PrefixTrie(6)
        trie.insert(_p("::/0"), "default6")
        assert trie.longest_match(6, 2**128 - 1)[1] == "default6"


class TestExactVersusLongest:
    def test_exact_entry_wins_over_shorter_ancestor(self):
        trie = PrefixTrie(4)
        trie.insert(_p("10.0.0.0/8"), "eight")
        trie.insert(_p("10.1.0.0/16"), "sixteen")
        trie.insert(_p("10.1.2.0/24"), "twentyfour")
        assert trie.match_prefix(_p("10.1.2.0/24"))[1] == "twentyfour"
        assert trie.match_prefix(_p("10.1.9.0/24"))[1] == "sixteen"
        assert trie.match_prefix(_p("10.9.9.0/24"))[1] == "eight"

    def test_address_on_prefix_boundary(self):
        trie = PrefixTrie(4)
        trie.insert(_p("10.1.2.0/24"), "subnet")
        assert trie.longest_match(4, _p("10.1.2.0/24").value)[1] == "subnet"
        # One below the subnet base falls outside it.
        assert trie.longest_match(4, _p("10.1.2.0/24").value - 1) is None


class TestNoneValues:
    """``None`` payloads are legal values, not missing entries."""

    def test_stored_none_is_found(self):
        trie = PrefixTrie(4)
        trie.insert(_p("10.0.0.0/8"), None)
        assert _p("10.0.0.0/8") in trie
        found = trie.longest_match(4, 0x0A000001)
        assert found == (_p("10.0.0.0/8"), None)

    def test_none_overwrite_and_get(self):
        trie = PrefixTrie(4)
        trie.insert(_p("10.0.0.0/8"), "x")
        trie.insert(_p("10.0.0.0/8"), None)
        assert trie.get(_p("10.0.0.0/8")) is None
        assert len(trie) == 1


class TestCrossFamily:
    def test_every_operation_rejects_the_wrong_family(self):
        trie = PrefixTrie(4)
        v6 = _p("2001:db8::/48")
        with pytest.raises(ValueError):
            trie.insert(v6, "x")
        with pytest.raises(ValueError):
            trie.get(v6)
        with pytest.raises(ValueError):
            trie.remove(v6)
        with pytest.raises(ValueError):
            trie.longest_match(6, 1)
        with pytest.raises(ValueError):
            trie.match_prefix(v6)


class TestDeleteThenLPM:
    def test_lpm_falls_back_to_ancestor_after_delete(self):
        trie = PrefixTrie(4)
        trie.insert(_p("10.0.0.0/8"), "eight")
        trie.insert(_p("10.1.0.0/16"), "sixteen")
        trie.insert(_p("10.1.2.0/24"), "twentyfour")
        address = _p("10.1.2.0/24").value + 5

        assert trie.longest_match(4, address)[1] == "twentyfour"
        trie.remove(_p("10.1.2.0/24"))
        assert trie.longest_match(4, address)[1] == "sixteen"
        trie.remove(_p("10.1.0.0/16"))
        assert trie.longest_match(4, address)[1] == "eight"
        trie.remove(_p("10.0.0.0/8"))
        assert trie.longest_match(4, address) is None

    def test_deleting_ancestor_keeps_descendant(self):
        trie = PrefixTrie(4)
        trie.insert(_p("10.0.0.0/8"), "eight")
        trie.insert(_p("10.1.2.0/24"), "twentyfour")
        trie.remove(_p("10.0.0.0/8"))
        assert trie.longest_match(4, _p("10.1.2.0/24").value)[1] == (
            "twentyfour"
        )
        assert trie.longest_match(4, 0x0A000001) is None
