"""Unit tests for carrier ground-truth validation (Table 3 machinery)."""

import pytest

from repro.core.classifier import SubnetClassifier
from repro.core.ratios import RatioRecord, RatioTable
from repro.core.validation import validate_against_carrier, validate_many
from repro.datasets.demand_dataset import DemandDataset
from repro.datasets.groundtruth import CarrierGroundTruth
from repro.net.prefix import Prefix


def p(text):
    return Prefix.parse(text)


@pytest.fixture()
def classification():
    table = RatioTable(
        [
            RatioRecord(p("10.0.0.0/24"), 1, "US", 10, 10, 10),  # detected cell
            RatioRecord(p("10.0.1.0/24"), 1, "US", 10, 0, 10),   # detected fixed
            RatioRecord(p("10.0.3.0/24"), 1, "US", 10, 9, 10),   # false positive
        ]
    )
    return SubnetClassifier(0.5).classify(table)


@pytest.fixture()
def truth():
    return CarrierGroundTruth(
        label="Carrier T",
        asn=1,
        country="US",
        mixed=True,
        cellular=(p("10.0.0.0/24"), p("10.0.2.0/24")),  # 10.0.2.0 unobserved
        fixed=(p("10.0.1.0/24"), p("10.0.3.0/24")),
    )


class TestCIDRScope:
    def test_confusion_cells(self, classification, truth):
        validation = validate_against_carrier(classification, truth)
        confusion = validation.by_cidr
        assert confusion.tp == 1   # 10.0.0.0 detected cellular
        assert confusion.fn == 1   # 10.0.2.0 unobserved -> counted missed
        assert confusion.tn == 1   # 10.0.1.0 correctly fixed
        assert confusion.fp == 1   # 10.0.3.0 wrongly cellular

    def test_without_demand_scopes_match(self, classification, truth):
        validation = validate_against_carrier(classification, truth)
        assert validation.by_cidr.as_dict() == validation.by_demand.as_dict()


class TestDemandScope:
    def test_weights_applied(self, classification, truth):
        demand = DemandDataset.from_request_totals(
            [
                (p("10.0.0.0/24"), 1, "US", 800),
                (p("10.0.1.0/24"), 1, "US", 100),
                (p("10.0.3.0/24"), 1, "US", 100),
                # 10.0.2.0 has no demand: FN costs nothing by weight.
            ]
        )
        validation = validate_against_carrier(classification, truth, demand)
        confusion = validation.by_demand
        assert confusion.tp == pytest.approx(80_000)
        assert confusion.fn == 0.0
        assert confusion.recall == pytest.approx(1.0)
        # CIDR recall stays 0.5 -- the paper's lower-bound effect.
        assert validation.by_cidr.recall == pytest.approx(0.5)

    def test_as_row_flat(self, classification, truth):
        row = validate_against_carrier(classification, truth).as_row()
        assert row["carrier"] == "Carrier T"
        assert "cidr_precision" in row and "demand_recall" in row


class TestValidateMany:
    def test_keyed_by_label(self, classification, truth):
        result = validate_many(classification, [truth])
        assert set(result) == {"Carrier T"}
