"""World-level integration invariants.

These check the generated world as a whole -- the properties every
downstream dataset depends on -- and cross-process determinism.
"""

import collections

import pytest

from repro.world.build import WorldParams, build_world
from repro.world.geo import Continent


class TestWorldInvariants:
    def test_demand_roughly_conserved(self, world):
        total = world.allocation.total_demand()
        assert 0.85 <= total <= 1.05

    def test_planted_cellular_fractions(self, world):
        subnets = world.subnets()
        v4 = [s for s in subnets if s.family == 4]
        v6 = [s for s in subnets if s.family == 6]
        active_v4 = [s for s in v4 if s.beacon_coverage > 0 or s.demand_weight > 0]
        cell_v4 = sum(1 for s in active_v4 if s.is_cellular)
        # Paper: 7.3% of active IPv4 space is cellular.
        assert 0.04 <= cell_v4 / len(active_v4) <= 0.13
        cell_v6 = sum(1 for s in v6 if s.is_cellular)
        # Paper: 1.2% of active IPv6 space.
        assert 0.005 <= cell_v6 / len(v6) <= 0.03

    def test_planted_global_cellular_demand(self, world):
        subnets = [s for s in world.subnets() if s.country != "CN"]
        total = sum(s.demand_weight for s in subnets)
        cellular = sum(s.demand_weight for s in subnets if s.is_cellular)
        # Paper: 16.2%; the generator calibrates into a band around it.
        assert 0.12 <= cellular / total <= 0.24

    def test_continent_ordering_of_cellular_share(self, world):
        cellular = collections.Counter()
        for subnet in world.subnets():
            if subnet.is_cellular and subnet.country != "CN":
                continent = world.geography.get(subnet.country).continent
                cellular[continent] += subnet.demand_weight
        total = sum(cellular.values())
        shares = {c: cellular[c] / total for c in Continent}
        # Paper Table 8 ordering: Asia and NA dominate; AF/OC/SA small.
        assert shares[Continent.ASIA] > shares[Continent.EUROPE]
        assert shares[Continent.NORTH_AMERICA] > shares[Continent.EUROPE]
        for small in (Continent.AFRICA, Continent.OCEANIA,
                      Continent.SOUTH_AMERICA):
            assert shares[small] < 0.10

    def test_every_subnet_country_profiled(self, world):
        for subnet in world.subnets():
            assert subnet.country in world.profiles

    def test_truth_trie_covers_all_subnets(self, world):
        for family in (4, 6):
            trie = world.truth_trie(family)
            assert len(trie) == len(world.allocation.of_family(family))
        sample = world.subnets()[123]
        found = world.truth_trie(sample.family).longest_match(
            sample.family, sample.prefix.first_address
        )
        assert found is not None
        assert found[1].prefix == sample.prefix


class TestDeterminism:
    def test_same_params_same_world(self):
        params = WorldParams(seed=77, scale=0.002, background_as_count=100)
        a, b = build_world(params), build_world(params)
        assert len(a.subnets()) == len(b.subnets())
        for left, right in zip(a.subnets()[:500], b.subnets()[:500]):
            assert left.prefix == right.prefix
            assert left.demand_weight == right.demand_weight
            assert left.cellular_label_rate == right.cellular_label_rate

    def test_scale_preserves_fractions(self):
        small = build_world(WorldParams(seed=5, scale=0.002,
                                        background_as_count=100))
        larger = build_world(WorldParams(seed=5, scale=0.004,
                                         background_as_count=100))

        def cellular_fraction(world):
            v4 = [s for s in world.allocation.of_family(4)
                  if s.beacon_coverage > 0 or s.demand_weight > 0]
            return sum(1 for s in v4 if s.is_cellular) / len(v4)

        assert cellular_fraction(small) == pytest.approx(
            cellular_fraction(larger), abs=0.04
        )
        assert len(larger.subnets()) > len(small.subnets()) * 1.4

    def test_params_validation(self):
        with pytest.raises(ValueError):
            WorldParams(background_as_count=-1)
